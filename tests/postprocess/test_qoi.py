"""QoI certification tests: certificates must be theorems.

Every certificate is checked against adversarially constructed
perturbations *at* the allowed L2 radius, plus random perturbations via
hypothesis, plus an end-to-end check through the real
ErrorBoundCorrector payload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postprocess import (DerivativeQoI, ErrorBoundCorrector,
                               LinearQoI, QuadraticQoI, ResidualPCA,
                               evaluate_qois, mean_qoi, region_average_qoi,
                               temporal_mean_qoi)

SHAPE = (4, 8, 8)


def _perturb(x, tau, rng, worst_for=None):
    """Perturbation of L2 norm exactly tau (optionally aligned)."""
    if worst_for is not None:
        direction = worst_for
    else:
        direction = rng.standard_normal(x.shape)
    direction = direction / np.linalg.norm(direction)
    return x + tau * direction


class TestLinearQoI:
    def test_evaluate_mean(self):
        x = np.arange(np.prod(SHAPE), dtype=float).reshape(SHAPE)
        q = mean_qoi(SHAPE)
        assert np.isclose(q.evaluate(x), x.mean())

    def test_certificate_tight_for_aligned_perturbation(self):
        """Cauchy–Schwarz is met with equality at the aligned worst case."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(SHAPE)
        q = mean_qoi(SHAPE)
        tau = 0.37
        x_g = _perturb(x, tau, rng, worst_for=q.weights)
        err = abs(q.evaluate(x) - q.evaluate(x_g))
        cert = q.certified_bound(tau)
        assert err <= cert * (1 + 1e-9)
        assert err >= cert * (1 - 1e-9)  # tightness

    def test_region_average(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(SHAPE)
        mask = np.zeros(SHAPE, dtype=bool)
        mask[:, :4, :4] = True
        q = region_average_qoi(mask)
        assert np.isclose(q.evaluate(x), x[mask].mean())

    def test_region_average_empty_mask_raises(self):
        with pytest.raises(ValueError):
            region_average_qoi(np.zeros(SHAPE, dtype=bool))

    def test_temporal_mean_probe(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(SHAPE)
        q = temporal_mean_qoi(SHAPE, pixel=(3, 5))
        assert np.isclose(q.evaluate(x), x[:, 3, 5].mean())

    def test_shape_mismatch_raises(self):
        q = mean_qoi(SHAPE)
        with pytest.raises(ValueError):
            q.evaluate(np.zeros((2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9),
           tau=st.floats(1e-3, 10.0))
    def test_certificate_holds_random(self, seed, tau):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(SHAPE)
        q = mean_qoi(SHAPE)
        x_g = _perturb(x, tau, rng)
        err = abs(q.evaluate(x) - q.evaluate(x_g))
        assert err <= q.certified_bound(tau) * (1 + 1e-9)


class TestQuadraticQoI:
    def test_evaluate_energy(self):
        x = np.full(SHAPE, 2.0)
        assert np.isclose(QuadraticQoI().evaluate(x), 4.0 * x.size)

    def test_needs_reconstruction(self):
        with pytest.raises(ValueError):
            QuadraticQoI().certified_bound(0.1)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9),
           tau=st.floats(1e-3, 5.0))
    def test_certificate_holds_random(self, seed, tau):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(SHAPE)
        q = QuadraticQoI()
        x_g = _perturb(x, tau, rng)
        err = abs(q.evaluate(x) - q.evaluate(x_g))
        assert err <= q.certified_bound(tau, reconstruction=x_g) * (1 + 1e-9)

    def test_certificate_decoder_side_only(self):
        """Certificate computable from x_G alone covers the unseen x."""
        rng = np.random.default_rng(3)
        x_g = rng.standard_normal(SHAPE)
        tau = 0.5
        q = QuadraticQoI()
        cert = q.certified_bound(tau, reconstruction=x_g)
        # worst admissible original: aligned with x_g
        x = _perturb(x_g, tau, rng, worst_for=x_g)
        assert abs(q.evaluate(x) - q.evaluate(x_g)) <= cert * (1 + 1e-9)


class TestDerivativeQoI:
    def test_evaluate_matches_gradient(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(SHAPE)
        q = DerivativeQoI(axis=1, spacing=0.5)
        expect = np.linalg.norm(np.gradient(x, 0.5, axis=1))
        assert np.isclose(q.evaluate(x), expect)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            DerivativeQoI(axis=0, spacing=0.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), axis=st.integers(0, 2),
           tau=st.floats(1e-3, 5.0), spacing=st.floats(0.1, 2.0))
    def test_certificate_holds_random(self, seed, axis, tau, spacing):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(SHAPE)
        q = DerivativeQoI(axis=axis, spacing=spacing)
        x_g = _perturb(x, tau, rng)
        err = abs(q.evaluate(x) - q.evaluate(x_g))
        assert err <= q.certified_bound(tau) * (1 + 1e-9)

    def test_operator_norm_bound_not_wildly_loose(self):
        """The sqrt(3)/h <= 2/h certificate is within ~2x of achievable."""
        rng = np.random.default_rng(5)
        q = DerivativeQoI(axis=2, spacing=1.0)
        tau = 1.0
        worst = 0.0
        for _ in range(50):
            e = rng.standard_normal(SHAPE)
            e *= tau / np.linalg.norm(e)
            worst = max(worst, np.linalg.norm(np.gradient(e, axis=2)))
        assert worst > 0.25 * q.certified_bound(tau)


class TestEvaluateQoIs:
    def _qois(self):
        return [mean_qoi(SHAPE), QuadraticQoI(),
                DerivativeQoI(axis=1), DerivativeQoI(axis=2)]

    def test_report_records_all(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(SHAPE)
        x_g = _perturb(x, 0.2, rng)
        records = evaluate_qois(x, x_g, self._qois(), tau=0.2)
        assert len(records) == 4
        assert all(r.within_bound for r in records)
        names = [r.name for r in records]
        assert "global-mean" in names and "energy" in names

    def test_identity_reconstruction_zero_error(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(SHAPE)
        records = evaluate_qois(x, x.copy(), self._qois(), tau=1e-6)
        assert all(r.achieved_error == 0.0 for r in records)

    def test_rejects_bad_args(self):
        x = np.zeros(SHAPE)
        with pytest.raises(ValueError):
            evaluate_qois(x, np.zeros((2, 2)), self._qois(), tau=0.1)
        with pytest.raises(ValueError):
            evaluate_qois(x, x, self._qois(), tau=0.0)

    def test_end_to_end_with_corrector(self):
        """Certificates hold through the real PCA corrector payload."""
        rng = np.random.default_rng(8)
        x = rng.standard_normal(SHAPE).cumsum(axis=1)
        x_r = x + 0.3 * rng.standard_normal(SHAPE)
        pca = ResidualPCA(block=4, rank=8)
        pca.fit(x - x_r + 0.05 * rng.standard_normal(SHAPE))
        corrector = ErrorBoundCorrector(pca)
        tau = 0.5
        res = corrector.correct(x, x_r, tau)
        assert res.achieved_l2 <= tau * (1 + 1e-9)
        records = evaluate_qois(x, res.corrected, self._qois(), tau=tau)
        assert all(r.within_bound for r in records)
