"""Vectorized vs reference coefficient selection in the corrector.

The vectorized path is the paper's future-work "accelerated
post-processing"; it must preserve the guarantee and agree with the
per-block greedy loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postprocess import ErrorBoundCorrector, ResidualPCA


def _setup(seed=0, shape=(4, 16, 16), block=4, rank=8):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape).cumsum(axis=1)
    x_r = x + 0.3 * rng.standard_normal(shape)
    # structured + white training residual, as the pipeline produces
    train_res = (x - x_r) + 0.05 * rng.standard_normal(shape)
    pca = ResidualPCA(block=block, rank=rank).fit(train_res)
    return x, x_r, pca


class TestVectorizedSelection:
    @pytest.mark.parametrize("tau_frac", [0.8, 0.4, 0.15])
    def test_agrees_with_loop(self, tau_frac):
        x, x_r, pca = _setup()
        tau = tau_frac * float(np.linalg.norm(x - x_r))
        loop = ErrorBoundCorrector(pca, vectorized=False)
        fast = ErrorBoundCorrector(pca, vectorized=True)
        res_l = loop.correct(x, x_r, tau)
        res_v = fast.correct(x, x_r, tau)
        # identical selections -> identical payloads and outputs
        assert res_v.payload == res_l.payload
        np.testing.assert_allclose(res_v.corrected, res_l.corrected,
                                   atol=1e-12)
        assert res_v.n_escape_blocks == res_l.n_escape_blocks
        assert res_v.n_coefficients == res_l.n_coefficients

    def test_bound_holds_vectorized(self):
        x, x_r, pca = _setup(seed=1)
        fast = ErrorBoundCorrector(pca, vectorized=True)
        for frac in (0.9, 0.5, 0.2, 0.05):
            tau = frac * float(np.linalg.norm(x - x_r))
            res = fast.correct(x, x_r, tau)
            assert res.achieved_l2 <= tau * (1 + 1e-9)

    def test_apply_decodes_vectorized_payload(self):
        x, x_r, pca = _setup(seed=2)
        fast = ErrorBoundCorrector(pca, vectorized=True)
        tau = 0.3 * float(np.linalg.norm(x - x_r))
        res = fast.correct(x, x_r, tau)
        decoded = fast.apply(x_r, res.payload)
        np.testing.assert_allclose(decoded, res.corrected, atol=1e-12)

    def test_no_active_blocks_empty_payload_paths_agree(self):
        x, x_r, pca = _setup(seed=3)
        # bound looser than the existing error: nothing to fix
        tau = 2.0 * float(np.linalg.norm(x - x_r))
        for vec in (False, True):
            res = ErrorBoundCorrector(pca, vectorized=vec).correct(
                x, x_r, tau)
            assert res.n_coefficients == 0
            assert res.n_escape_blocks == 0
            np.testing.assert_allclose(res.corrected, x_r)

    def test_escape_blocks_agree(self):
        """Force escapes with a basis that cannot span the residual."""
        rng = np.random.default_rng(4)
        shape = (2, 8, 8)
        x_r = np.zeros(shape)
        x = rng.standard_normal(shape)  # white residual, rank-2 basis
        pca = ResidualPCA(block=4, rank=2).fit(
            np.ones(shape) + 0.01 * rng.standard_normal(shape))
        tau = 0.05 * float(np.linalg.norm(x))
        res_l = ErrorBoundCorrector(pca, vectorized=False).correct(
            x, x_r, tau)
        res_v = ErrorBoundCorrector(pca, vectorized=True).correct(
            x, x_r, tau)
        assert res_l.n_escape_blocks > 0
        assert res_v.n_escape_blocks == res_l.n_escape_blocks
        assert res_v.payload == res_l.payload

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           frac=st.sampled_from([0.6, 0.3, 0.1]))
    def test_agreement_property(self, seed, frac):
        x, x_r, pca = _setup(seed=seed)
        tau = frac * float(np.linalg.norm(x - x_r))
        res_l = ErrorBoundCorrector(pca, vectorized=False).correct(
            x, x_r, tau)
        res_v = ErrorBoundCorrector(pca, vectorized=True).correct(
            x, x_r, tau)
        assert res_v.payload == res_l.payload
        assert res_v.achieved_l2 <= tau * (1 + 1e-9)
