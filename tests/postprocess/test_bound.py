"""PCA error-bound guarantee tests (Sec. 3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postprocess import (BoundResult, ErrorBoundCorrector, ResidualPCA,
                               blockify, decode_ints, encode_ints,
                               unblockify)

RNG = np.random.default_rng(0)


def smooth_residuals(t=6, h=16, w=16, seed=1, scale=0.3):
    """Residual frames with low-rank spatial structure + noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(np.linspace(0, np.pi, h), np.linspace(0, np.pi, w),
                         indexing="ij")
    out = np.zeros((t, h, w))
    for i in range(t):
        out[i] = (np.sin(2 * yy + i) * np.cos(3 * xx)
                  + 0.5 * np.sin(5 * xx + 0.3 * i))
    out += rng.normal(0, 0.05, size=out.shape)
    return out * scale


class TestBlockify:
    def test_roundtrip_exact_division(self):
        x = RNG.normal(size=(3, 16, 16))
        rows, geom = blockify(x, 4)
        assert rows.shape == (3 * 16, 16)
        np.testing.assert_allclose(unblockify(rows, geom), x)

    def test_roundtrip_with_padding(self):
        x = RNG.normal(size=(2, 10, 13))
        rows, geom = blockify(x, 4)
        np.testing.assert_allclose(unblockify(rows, geom), x)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((4, 4)), 2)

    def test_block_content_layout(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        rows, _ = blockify(x, 2)
        np.testing.assert_array_equal(rows[0], [0, 1, 4, 5])


class TestResidualPCA:
    def test_fit_produces_orthonormal_basis(self):
        pca = ResidualPCA(block=4, rank=8).fit(smooth_residuals())
        gram = pca.basis.T @ pca.basis
        np.testing.assert_allclose(gram, np.eye(8), atol=1e-10)

    def test_project_reconstruct_consistency(self):
        pca = ResidualPCA(block=4, rank=16).fit(smooth_residuals())
        rows, _ = blockify(smooth_residuals(seed=2), 4)
        c = pca.project(rows)
        # full-rank (16 = 4*4): perfect reconstruction
        np.testing.assert_allclose(pca.reconstruct(c), rows, atol=1e-8)

    def test_truncation_reduces_energy(self):
        pca = ResidualPCA(block=4, rank=3).fit(smooth_residuals())
        rows, _ = blockify(smooth_residuals(seed=3), 4)
        approx = pca.reconstruct(pca.project(rows))
        assert np.linalg.norm(rows - approx) < np.linalg.norm(rows)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ResidualPCA().project(np.zeros((1, 64)))

    def test_state_roundtrip(self):
        pca = ResidualPCA(block=4, rank=5).fit(smooth_residuals())
        pca2 = ResidualPCA.from_state(pca.state())
        np.testing.assert_array_equal(pca.basis, pca2.basis)

    def test_degenerate_training_set_still_full_rank(self):
        """Rank-deficient residuals are completed to the requested rank."""
        flat = np.zeros((4, 8, 8))
        flat[:, 0, 0] = 1.0
        pca = ResidualPCA(block=4, rank=6).fit(flat)
        assert pca.basis.shape == (16, 6)
        gram = pca.basis.T @ pca.basis
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ResidualPCA(block=0)
        with pytest.raises(ValueError):
            ResidualPCA(rank=0)


class TestIntCodec:
    def test_roundtrip(self):
        vals = RNG.integers(-50, 50, size=300)
        data = encode_ints(vals)
        back, off = decode_ints(data)
        np.testing.assert_array_equal(back, vals)
        assert off == len(data)

    def test_empty(self):
        data = encode_ints(np.zeros(0, dtype=np.int64))
        back, _ = decode_ints(data)
        assert back.size == 0

    def test_constant(self):
        vals = np.full(40, 7)
        back, _ = decode_ints(encode_ints(vals))
        np.testing.assert_array_equal(back, vals)

    def test_concatenated_payloads(self):
        a = RNG.integers(-5, 5, size=20)
        b = RNG.integers(100, 120, size=7)
        blob = encode_ints(a) + encode_ints(b)
        av, off = decode_ints(blob)
        bv, off2 = decode_ints(blob, off)
        np.testing.assert_array_equal(av, a)
        np.testing.assert_array_equal(bv, b)
        assert off2 == len(blob)

    def test_huge_range_falls_back_to_varints(self):
        vals = np.array([0, 10_000_000, -123456, 42])
        data = encode_ints(vals)
        back, off = decode_ints(data)
        np.testing.assert_array_equal(back, vals)
        assert off == len(data)

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            decode_ints(b"XX" + b"\x00" * 30)

    def test_skewed_compresses(self):
        vals = np.zeros(2000, dtype=np.int64)
        vals[::50] = 3
        data = encode_ints(vals)
        assert len(data) < 2000  # far below 1 byte per symbol


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-2000, 2000), min_size=0, max_size=200))
def test_int_codec_roundtrip_property(vals):
    arr = np.array(vals, dtype=np.int64)
    back, _ = decode_ints(encode_ints(arr))
    np.testing.assert_array_equal(back, arr)


class TestErrorBoundCorrector:
    def make(self, rank=12, block=4):
        pca = ResidualPCA(block=block, rank=rank).fit(smooth_residuals())
        return ErrorBoundCorrector(pca)

    def test_bound_is_satisfied(self):
        corr = self.make()
        x = smooth_residuals(seed=5) + 2.0
        x_r = x + smooth_residuals(seed=6, scale=0.2)
        tau = 0.5 * np.linalg.norm(x - x_r)
        res = corr.correct(x, x_r, tau)
        assert res.achieved_l2 <= tau * (1 + 1e-9)

    def test_decoder_matches_encoder(self):
        corr = self.make()
        x = smooth_residuals(seed=7)
        x_r = x + smooth_residuals(seed=8, scale=0.15)
        res = corr.correct(x, x_r, tau=0.4 * np.linalg.norm(x - x_r))
        x_g = corr.apply(x_r, res.payload)
        np.testing.assert_allclose(x_g, res.corrected, atol=1e-12)

    def test_tighter_bound_costs_more_bytes(self):
        corr = self.make()
        x = smooth_residuals(seed=9)
        x_r = x + smooth_residuals(seed=10, scale=0.2)
        err = np.linalg.norm(x - x_r)
        loose = corr.correct(x, x_r, tau=0.8 * err)
        tight = corr.correct(x, x_r, tau=0.2 * err)
        assert tight.payload_bytes > loose.payload_bytes
        assert tight.achieved_l2 <= 0.2 * err * (1 + 1e-9)

    def test_no_correction_needed(self):
        corr = self.make()
        x = smooth_residuals(seed=11)
        res = corr.correct(x, x.copy(), tau=1.0)
        assert res.n_coefficients == 0
        assert res.n_escape_blocks == 0
        np.testing.assert_allclose(res.corrected, x)

    def test_escape_path_guarantees_bound(self):
        """Residuals orthogonal to a tiny basis still meet the bound."""
        pca = ResidualPCA(block=4, rank=1).fit(smooth_residuals())
        corr = ErrorBoundCorrector(pca)
        rng = np.random.default_rng(12)
        x = rng.normal(size=(3, 8, 8))          # white noise: PCA-hostile
        x_r = x + rng.normal(0, 0.5, size=x.shape)
        tau = 0.1 * np.linalg.norm(x - x_r)
        res = corr.correct(x, x_r, tau)
        assert res.achieved_l2 <= tau * (1 + 1e-9)
        assert res.n_escape_blocks > 0
        x_g = corr.apply(x_r, res.payload)
        np.testing.assert_allclose(x_g, res.corrected, atol=1e-12)

    def test_invalid_inputs(self):
        corr = self.make()
        x = smooth_residuals()
        with pytest.raises(ValueError):
            corr.correct(x, x[:, :8], tau=1.0)
        with pytest.raises(ValueError):
            corr.correct(x, x, tau=0.0)
        with pytest.raises(ValueError):
            ErrorBoundCorrector(ResidualPCA())  # unfitted
        with pytest.raises(ValueError):
            ErrorBoundCorrector(self.make().pca, coeff_quant_bits=1)

    def test_wrong_geometry_raises(self):
        corr = self.make()
        x = smooth_residuals(seed=13)
        x_r = x + smooth_residuals(seed=14, scale=0.1)
        res = corr.correct(x, x_r, tau=0.5 * np.linalg.norm(x - x_r))
        with pytest.raises(ValueError):
            corr.apply(x_r[:, :8], res.payload)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.05, 0.9))
def test_bound_guarantee_property(seed, frac):
    """For random data and random bound fractions the guarantee holds."""
    rng = np.random.default_rng(seed)
    pca = ResidualPCA(block=4, rank=6).fit(
        rng.normal(size=(4, 8, 8)))
    corr = ErrorBoundCorrector(pca)
    x = rng.normal(size=(2, 8, 8)) * rng.uniform(0.5, 3.0)
    x_r = x + rng.normal(size=x.shape) * rng.uniform(0.05, 0.5)
    tau = frac * np.linalg.norm(x - x_r)
    res = corr.correct(x, x_r, tau)
    assert res.achieved_l2 <= tau * (1 + 1e-9)
    back = corr.apply(x_r, res.payload)
    np.testing.assert_allclose(back, res.corrected, atol=1e-10)
