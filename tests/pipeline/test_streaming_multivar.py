"""Streaming and multi-variable pipeline tests (use the shared trained
tiny pipeline from conftest)."""

import numpy as np
import pytest

from repro.data import E3SMSynthetic
from repro.pipeline import (MultiVarArchive, MultiVariableCompressor,
                            StreamArchive, StreamingCompressor)

WINDOW = 6  # == tiny().pipeline.window


class TestCodecBackedContainers:
    """Streaming/multivar drive any registry codec, not just ours."""

    def _frames(self):
        ds = E3SMSynthetic(t=20, h=16, w=16, seed=9)
        return ds.normalized_frames(0) * 2.0

    def test_streaming_with_rule_based_codec(self):
        frames = self._frames()
        sc = StreamingCompressor("szlike", chunk_windows=6)
        archive = sc.compress(iter(frames), nrmse_bound=0.05)
        assert archive.num_frames == frames.shape[0]
        assert not archive.blobs and archive.envelopes
        restored = StreamArchive.from_bytes(archive.to_bytes())
        recon = sc.decompress_all(restored)
        assert recon.shape == frames.shape
        assert archive.accounting().ratio > 1.0
        # per-chunk NRMSE bound holds through the codec normalization
        from repro.metrics import nrmse
        assert nrmse(frames, recon) <= 0.05 * (1 + 1e-9)

    def test_streaming_codec_mismatch_rejected(self):
        frames = self._frames()
        archive = StreamingCompressor("szlike", chunk_windows=6).compress(
            iter(frames), nrmse_bound=0.05)
        other = StreamingCompressor("mgard", chunk_windows=6)
        with pytest.raises(ValueError, match="szlike"):
            other.decompress_all(archive)

    def test_multivar_with_codec_names(self):
        ds = E3SMSynthetic(t=12, h=16, w=16, seed=3, num_vars=2)
        stacks = {f"v{i}": ds.normalized_frames(i) * (2.0 + i)
                  for i in range(2)}
        mv = MultiVariableCompressor(
            {"v0": "szlike", "v1": "dpcm"}, max_workers=2)
        result = mv.compress(stacks, nrmse_bound=0.05)
        assert result.worst_nrmse() <= 0.05 * (1 + 1e-9)
        archive = result.archive()
        assert set(archive.envelopes) == {"v0", "v1"}
        restored = MultiVarArchive.from_bytes(archive.to_bytes())
        out = mv.decompress(restored)
        for name, stack in stacks.items():
            assert out[name].shape == stack.shape

    def test_multivar_parallel_matches_serial(self, trained):
        _, compressor, _, _ = trained
        ds = E3SMSynthetic(t=12, h=16, w=16, seed=3, num_vars=2)
        stacks = {f"v{i}": ds.normalized_frames(i) * (2.0 + i)
                  for i in range(2)}
        serial = MultiVariableCompressor(compressor, max_workers=1) \
            .compress(stacks, nrmse_bound=0.05)
        parallel = MultiVariableCompressor(compressor, max_workers=2) \
            .compress(stacks, nrmse_bound=0.05)
        for name in stacks:
            assert serial.results[name].payload == \
                parallel.results[name].payload


class TestStreamingCompressor:
    def test_roundtrip_matches_batch_chunks(self, trained):
        """Streamed decode equals per-chunk batch compression."""
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor, chunk_windows=2)
        archive = sc.compress(iter(frames))
        assert archive.num_frames == frames.shape[0]
        recon = sc.decompress_all(archive)
        assert recon.shape == frames.shape
        # each chunk is an independent blob; its decode must equal the
        # batch pipeline run on that chunk with the same seed
        blob0 = archive.blobs[0]
        direct = compressor.compress(
            frames[:blob0.shape[0]], noise_seed=blob0.noise_seed)
        np.testing.assert_allclose(recon[:blob0.shape[0]],
                                   direct.reconstruction, atol=1e-9)

    def test_chunk_partition_no_loss_no_overlap(self, trained):
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor, chunk_windows=1)
        results = list(sc.compress_iter(iter(frames)))
        starts = [r.start_frame for r in results]
        lengths = [r.num_frames for r in results]
        assert starts[0] == 0
        for s, prev_s, prev_n in zip(starts[1:], starts, lengths):
            assert s == prev_s + prev_n
        assert sum(lengths) == frames.shape[0]
        # every chunk holds at least one full window
        assert all(n >= WINDOW for n in lengths)

    def test_tail_shorter_than_chunk_is_absorbed(self, trained):
        """36 frames, chunk=12: tail rule keeps final chunk >= window."""
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor, chunk_windows=2)
        lengths = [r.num_frames for r in sc.compress_iter(iter(frames))]
        assert sum(lengths) == frames.shape[0]
        assert lengths[-1] >= WINDOW

    def test_stream_shorter_than_window_raises(self, trained):
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor)
        with pytest.raises(ValueError):
            list(sc.compress_iter(iter(frames[:WINDOW - 1])))

    def test_rejects_non_2d_frames(self, trained):
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor)
        with pytest.raises(ValueError):
            list(sc.compress_iter(iter([frames])))  # one 3-D "frame"

    def test_rejects_bad_chunk_windows(self, trained):
        _, compressor, _, _ = trained
        with pytest.raises(ValueError):
            StreamingCompressor(compressor, chunk_windows=0)

    def test_per_chunk_error_bound_holds(self, trained):
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor, chunk_windows=2)
        bound = 0.05
        recon_chunks = []
        taus = []
        pos = 0
        for res in sc.compress_iter(iter(frames), nrmse_bound=bound):
            chunk = frames[pos:pos + res.num_frames]
            pos += res.num_frames
            assert res.achieved_nrmse <= bound * (1 + 1e-9)
            rng_ = chunk.max() - chunk.min()
            taus.append(bound * rng_ * np.sqrt(chunk.size))
            recon_chunks.append(sc.compressor.decompress(res.blob))
        recon = np.concatenate(recon_chunks)
        global_l2 = float(np.linalg.norm(frames - recon))
        assert global_l2 <= np.sqrt(np.sum(np.square(taus))) * (1 + 1e-9)

    def test_archive_serialization_roundtrip(self, trained):
        _, compressor, frames, _ = trained
        sc = StreamingCompressor(compressor, chunk_windows=2)
        archive = sc.compress(iter(frames))
        wire = archive.to_bytes()
        restored = StreamArchive.from_bytes(wire)
        assert restored.num_chunks == archive.num_chunks
        np.testing.assert_allclose(sc.decompress_all(restored),
                                   sc.decompress_all(archive))
        # accounting denominator is the real wire size of the blobs
        acc = archive.accounting()
        assert acc.ratio > 1.0

    def test_archive_rejects_corruption(self):
        with pytest.raises(ValueError):
            StreamArchive.from_bytes(b"XXXX" + b"\x00" * 16)
        archive = StreamArchive()
        wire = archive.to_bytes()
        assert StreamArchive.from_bytes(wire).num_chunks == 0


class TestMultiVariableCompressor:
    def _stacks(self):
        ds = E3SMSynthetic(t=12, h=16, w=16, seed=3, num_vars=2)
        return {f"v{i}": ds.normalized_frames(i) * (2.0 + i)
                for i in range(2)}

    def test_compress_mapping_roundtrip(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        stacks = self._stacks()
        result = mv.compress(stacks)
        assert set(result.variables) == set(stacks)
        assert result.ratio > 1.0
        out = mv.decompress(result.archive())
        for name, stack in stacks.items():
            assert out[name].shape == stack.shape

    def test_compress_array_with_names(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        stacks = self._stacks()
        arr = np.stack(list(stacks.values()))
        result = mv.compress(arr, names=list(stacks))
        assert set(result.variables) == set(stacks)
        # aggregate accounting sums the parts
        acc = result.accounting()
        assert acc.original_bytes == sum(
            r.accounting.original_bytes for r in result.results.values())

    def test_default_names(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        arr = np.stack(list(self._stacks().values()))
        result = mv.compress(arr)
        assert result.variables == ["var0", "var1"]

    def test_per_variable_bound(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        result = mv.compress(self._stacks(), nrmse_bound=0.05)
        assert result.worst_nrmse() <= 0.05 * (1 + 1e-9)

    def test_archive_serialization(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        result = mv.compress(self._stacks())
        wire = result.archive().to_bytes()
        restored = MultiVarArchive.from_bytes(wire)
        out = mv.decompress(restored)
        assert set(out) == set(self._stacks())

    def test_per_variable_mapping_missing_raises(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor({"v0": compressor})
        with pytest.raises(KeyError):
            mv.compress(self._stacks())

    def test_rejects_bad_inputs(self, trained):
        _, compressor, _, _ = trained
        mv = MultiVariableCompressor(compressor)
        with pytest.raises(ValueError):
            mv.compress(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            mv.compress(np.zeros((1, 12, 16, 16)), names=["a", "b"])
        with pytest.raises(ValueError):
            mv.compress(self._stacks(), names=["a", "b"])
        with pytest.raises(ValueError):
            MultiVariableCompressor({})
        with pytest.raises(ValueError):
            MultiVarArchive.from_bytes(b"junkjunk")
