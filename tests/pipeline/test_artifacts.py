"""Codec-agnostic artifact layer: store, manifests, round-trips.

The acceptance bar: any trained codec persists to a content-addressed
``.npz`` artifact whose reload reproduces compression *byte-for-byte*,
with provenance (codec spec, training config, dataset spec, state
hash) riding along in the manifest.
"""

import os

import numpy as np
import pytest

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.codecs import Codec, get_codec
from repro.codecs.diffusion import LatentDiffusionCodec
from repro.config import VAEConfig
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.nn.serialization import state_digest
from repro.pipeline.artifacts import (ArtifactManifest, ArtifactStore,
                                      decode_params, encode_params,
                                      is_artifact, load_artifact,
                                      read_manifest, save_artifact)


def _trained_vae_sr(seed=0, **train_kwargs):
    codec = get_codec("vae-sr")
    rng = np.random.default_rng(seed)
    wins = [rng.normal(size=(4, 8, 8)).cumsum(axis=0) for _ in range(2)]
    codec.train(wins, vae_iters=train_kwargs.pop("vae_iters", 2),
                sr_iters=train_kwargs.pop("sr_iters", 2))
    return codec, wins


class TestSaveLoadArtifact:
    def test_roundtrip_byte_identical(self, tmp_path):
        codec, _ = _trained_vae_sr()
        path = str(tmp_path / "m.npz")
        manifest = save_artifact(path, codec)
        assert is_artifact(path)
        clone = load_artifact(path)
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        a = codec.compress(frames, None, seed=3)
        b = clone.compress(frames, None, seed=3)
        assert a.payload == b.payload
        assert manifest.state_hash == state_digest(codec.artifact_state())

    def test_corrector_survives(self, tmp_path):
        codec, wins = _trained_vae_sr(seed=1)
        codec.fit_corrector(wins)
        path = str(tmp_path / "m.npz")
        save_artifact(path, codec)
        clone = load_artifact(path)
        frames = wins[0] * 1.1
        a = codec.compress_bounded(frames, nrmse_bound=0.05, seed=2)
        b = clone.compress_bounded(frames, nrmse_bound=0.05, seed=2)
        assert a.payload == b.payload
        assert a.achieved_nrmse <= 0.05 * (1 + 1e-9)

    def test_save_makes_trained_codec_spec_portable(self, tmp_path):
        codec, _ = _trained_vae_sr()
        with pytest.raises(TypeError, match="trained"):
            codec.to_spec()
        save_artifact(str(tmp_path / "m.npz"), codec)
        spec = codec.to_spec()
        assert spec == {"codec": "vae-sr",
                        "artifact": str(tmp_path / "m.npz")}

    def test_retraining_invalidates_artifact_ref(self, tmp_path):
        codec, wins = _trained_vae_sr()
        save_artifact(str(tmp_path / "m.npz"), codec)
        codec.train(wins, vae_iters=1, sr_iters=1)
        with pytest.raises(TypeError):
            codec.to_spec()

    def test_corrupt_state_detected(self, tmp_path):
        codec, _ = _trained_vae_sr()
        path = str(tmp_path / "m.npz")
        save_artifact(path, codec)
        # tamper: re-save with one array zeroed but the old manifest
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        key = next(k for k in arrays if k.startswith("state/vae/"))
        arrays[key] = np.zeros_like(arrays[key])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="corrupt"):
            load_artifact(path)
        load_artifact(path, verify=False)  # explicit opt-out still works

    def test_suffixless_path_records_real_file(self, tmp_path):
        """np.savez appends .npz; the recorded artifact ref (and so
        to_spec / process workers) must point at the real file."""
        codec, _ = _trained_vae_sr()
        manifest = save_artifact(str(tmp_path / "model"), codec)
        real = str(tmp_path / "model.npz")
        assert os.path.exists(real)
        assert codec.to_spec()["artifact"] == real
        clone = Codec.from_spec(codec.to_spec())
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        assert clone.compress(frames, None, seed=1).payload == \
            codec.compress(frames, None, seed=1).payload
        assert manifest.state_hash == read_manifest(real).state_hash

    def test_non_artifact_rejected(self, tmp_path):
        path = str(tmp_path / "plain.npz")
        np.savez_compressed(path, x=np.arange(3))
        assert not is_artifact(path)
        with pytest.raises(ValueError, match="manifest"):
            load_artifact(path)
        with pytest.raises(ValueError, match="manifest"):
            read_manifest(path)

    def test_model_free_codec_refuses(self, tmp_path):
        with pytest.raises(TypeError, match="no trainable state"):
            save_artifact(str(tmp_path / "m.npz"), get_codec("szlike"))

    def test_provenance_recorded(self, tmp_path):
        codec, _ = _trained_vae_sr()
        path = str(tmp_path / "m.npz")
        save_artifact(path, codec,
                      training={"vae_iters": 2, "seed": 0},
                      dataset={"name": "e3sm", "t": 8})
        m = read_manifest(path)
        assert m.codec == "vae-sr"
        assert m.training == {"vae_iters": 2, "seed": 0}
        assert m.dataset == {"name": "e3sm", "t": 8}
        assert m.spec["codec"] == "vae-sr"
        assert m.key == f"vae-sr-{m.state_hash[:16]}"


class TestParamsCodec:
    def test_config_dataclass_roundtrip(self):
        params = {"vae_cfg": VAEConfig(in_channels=1, latent_channels=4,
                                       base_filters=8, num_down=2,
                                       hyper_filters=4, kernel_size=3),
                  "seed": 3}
        encoded = encode_params(params)
        assert encoded["vae_cfg"]["__config__"] == "VAEConfig"
        decoded = decode_params(encoded)
        assert decoded == params

    def test_plain_values_pass_through(self):
        params = {"a": 1, "b": "x", "c": [1, 2]}
        assert decode_params(encode_params(params)) == params


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        codec, _ = _trained_vae_sr()
        store = ArtifactStore(tmp_path / "store")
        key = store.put(codec, training={"vae_iters": 2})
        assert key in store
        assert store.keys() == [key]
        clone = store.get(key)
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        a = codec.compress(frames, None, seed=5)
        b = clone.compress(frames, None, seed=5)
        assert a.payload == b.payload

    def test_put_is_idempotent_and_content_addressed(self, tmp_path):
        codec, _ = _trained_vae_sr()
        store = ArtifactStore(tmp_path / "store")
        k1 = store.put(codec)
        k2 = store.put(codec)
        assert k1 == k2
        assert len(store) == 1
        assert codec.codec_id in k1
        # a differently-trained codec lands under a different key
        other, _ = _trained_vae_sr(seed=5)
        k3 = store.put(other)
        assert k3 != k1
        assert len(store) == 2

    def test_unknown_key_lists_stored(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(KeyError, match="empty store"):
            store.path_for("nope")
        codec, _ = _trained_vae_sr()
        key = store.put(codec)
        with pytest.raises(KeyError, match=key):
            store.path_for("nope")

    def test_index_records_provenance(self, tmp_path):
        import json
        codec, _ = _trained_vae_sr()
        store = ArtifactStore(tmp_path / "store")
        key = store.put(codec, dataset={"name": "toy"})
        with open(store.index_path) as fh:
            index = json.load(fh)
        assert index[key]["codec"] == "vae-sr"
        assert index[key]["dataset"] == {"name": "toy"}
        assert os.path.exists(os.path.join(store.root,
                                           index[key]["path"]))


class TestTrainerCheckpointToArtifact:
    """Satellite: TwoStageTrainer.save_checkpoint state reloaded
    through the ArtifactStore is bit-identical (compress output
    byte-equal before/after)."""

    @pytest.fixture(scope="class")
    def trained_trainer(self):
        frames = E3SMSynthetic(t=24, h=16, w=16, seed=4).frames(0)
        train = train_test_windows(frames, window=6, stride=3)[0]
        cfg = TrainingConfig(vae_iters=4, diffusion_iters=4,
                             finetune_iters=0, lam=1e-6)
        trainer = TwoStageTrainer(tiny(), cfg, seed=11)
        trainer.train_vae(train)
        trainer.train_diffusion(train)
        return trainer, train, frames

    def test_checkpoint_artifact_roundtrip_bit_identical(
            self, trained_trainer, tmp_path):
        trainer, train, frames = trained_trainer
        ckpt = str(tmp_path / "stage2.npz")
        trainer.save_checkpoint(ckpt)

        reference = trainer.build_compressor(train)
        res_ref = reference.compress(frames, nrmse_bound=0.05,
                                     noise_seed=3)

        # resume the checkpoint on a "different machine", export the
        # deployable codec into a store, reload, compress: byte-equal
        resumed = TwoStageTrainer.from_checkpoint(ckpt)
        store = ArtifactStore(tmp_path / "store")
        key = resumed.export_artifact(store, train,
                                      dataset={"name": "e3sm"})
        codec = store.get(key)
        res = codec.compressor.compress(frames, nrmse_bound=0.05,
                                        noise_seed=3)
        assert res.blob.to_bytes() == res_ref.blob.to_bytes()
        np.testing.assert_array_equal(res.reconstruction,
                                      res_ref.reconstruction)

    def test_export_manifest_carries_training_provenance(
            self, trained_trainer, tmp_path):
        trainer, train, _ = trained_trainer
        path = str(tmp_path / "ours.npz")
        manifest = trainer.export_artifact(path, train,
                                           dataset={"name": "e3sm"})
        assert manifest.codec == "ours"
        assert manifest.training["vae_iters"] == 4
        assert manifest.training["seed"] == 11
        assert manifest.dataset == {"name": "e3sm"}
        # and the exported codec is spec-portable / engine-shippable
        codec = Codec.load_artifact(path)
        assert isinstance(codec, LatentDiffusionCodec)
        assert codec.to_spec()["artifact"] == path
