"""Executor backends: equivalence, clamping and spec shipping.

The acceptance bar for the pluggable-backend refactor: serial, thread
and process execution must be *interchangeable* — byte-identical
payloads, identical per-window seeds and identical ``WindowReport``
accounting — across codecs and datasets.  The process backend
additionally proves the codec/dataset spec round-trip, since its
workers rebuild both from specs.
"""

import numpy as np
import pytest

from repro.codecs import Codec, codec_from_spec, get_codec
from repro.pipeline.engine import CodecEngine
from repro.pipeline.executors import (EXECUTORS, ProcessExecutor,
                                      SerialExecutor, ThreadExecutor,
                                      default_workers, get_executor,
                                      list_executors)
from repro.pipeline.plan import plan_shards

CODECS = ["szlike", "tthresh", "dpcm"]
DATASETS = ["e3sm", "s3d"]


@pytest.fixture(scope="module")
def process_executor():
    """One warm process pool shared by every parametrized case."""
    ex = ProcessExecutor(max_workers=2)
    yield ex
    ex.close()


def _plans():
    return {name: plan_shards(name, variables=[0], shards=2,
                              t=8, h=12, w=12, seed=3, base_seed=11)
            for name in DATASETS}


PLANS = _plans()


class TestExecutorEquivalence:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("codec", CODECS)
    def test_backends_bit_identical(self, codec, dataset,
                                    process_executor):
        plan = PLANS[dataset]
        batches = {}
        for executor in (SerialExecutor(), ThreadExecutor(2),
                         process_executor):
            engine = CodecEngine(codec, executor=executor)
            batches[executor.name] = engine.compress_plan(
                plan, nrmse_bound=0.05)

        ref = batches["serial"]
        for name in ("thread", "process"):
            got = batches[name]
            assert [r.seed for r in got.reports] == \
                [r.seed for r in ref.reports], name
            assert [r.shard_id for r in got.reports] == \
                [r.shard_id for r in ref.reports], name
            # byte-identical streams ...
            assert [r.payload for r in got.results] == \
                [r.payload for r in ref.results], name
            # ... and identical WindowReport accounting
            for a, b in zip(got.results, ref.results):
                assert a.accounting == b.accounting, name
                assert a.achieved_nrmse == b.achieved_nrmse, name
            assert got.worst_nrmse() == ref.worst_nrmse(), name

    def test_stack_batches_bit_identical(self, process_executor):
        rng = np.random.default_rng(0)
        stacks = [rng.normal(size=(5, 12, 12)).cumsum(axis=0)
                  for _ in range(3)]
        ref = CodecEngine("szlike", executor="serial",
                          base_seed=7).compress(stacks, nrmse_bound=0.05)
        got = CodecEngine("szlike", executor=process_executor,
                          base_seed=7).compress(stacks, nrmse_bound=0.05)
        assert [r.payload for r in got.results] == \
            [r.payload for r in ref.results]

    def test_decompress_equivalent_across_backends(self,
                                                   process_executor):
        plan = PLANS["e3sm"]
        batch = CodecEngine("szlike", executor="serial").compress_plan(
            plan, nrmse_bound=0.05)
        payloads = [r.payload for r in batch.results]
        ref = CodecEngine("szlike", executor="serial").decompress(payloads)
        got = CodecEngine("szlike",
                          executor=process_executor).decompress(payloads)
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)


class TestExecutorRegistry:
    def test_three_backends_registered(self):
        assert list_executors() == ["process", "serial", "thread"]
        assert set(EXECUTORS) == {"serial", "thread", "process"}

    def test_get_executor_by_name_and_instance(self):
        ex = get_executor("serial")
        assert isinstance(ex, SerialExecutor)
        assert get_executor(ex) is ex

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(KeyError, match="process, serial, thread"):
            get_executor("gpu")

    def test_default_workers_from_cpu_count(self):
        import os
        assert default_workers() == (os.cpu_count() or 4)
        assert SerialExecutor().max_workers == default_workers()
        assert CodecEngine("szlike").max_workers == default_workers()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=0)
        with pytest.raises(ValueError):
            CodecEngine("szlike", max_workers=0)

    def test_map_order_and_exceptions(self):
        for ex in (SerialExecutor(), ThreadExecutor(4)):
            assert ex.map(lambda x: x * x, range(10)) == \
                [x * x for x in range(10)]
            with pytest.raises(RuntimeError):
                ex.map(_boom, [1])

    def test_empty_batch_every_backend(self, process_executor):
        for executor in ("serial", "thread", process_executor):
            batch = CodecEngine("szlike",
                                executor=executor).compress([])
            assert batch.results == []


def _boom(_):
    raise RuntimeError("worker failure")


class TestCodecSpecs:
    @pytest.mark.parametrize("codec", CODECS + ["mgard", "zfplike",
                                                "fazlike"])
    def test_rule_based_spec_roundtrip(self, codec):
        original = get_codec(codec)
        clone = Codec.from_spec(original.to_spec())
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        a = original.compress(frames, 0.01, seed=2)
        b = clone.compress(frames, 0.01, seed=2)
        assert a.payload == b.payload

    def test_learned_spec_roundtrip_untrained(self):
        original = get_codec("vae-sr")
        clone = codec_from_spec(original.to_spec())
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        a = original.compress(frames, None, seed=1)
        b = clone.compress(frames, None, seed=1)
        assert a.payload == b.payload

    def test_trained_codec_refuses_spec(self):
        codec = get_codec("vae-sr")
        rng = np.random.default_rng(0)
        codec.train([rng.normal(size=(4, 8, 8))], vae_iters=1,
                    sr_iters=1)
        with pytest.raises(TypeError, match="trained"):
            codec.to_spec()

    def test_wrapped_codec_refuses_spec_and_process(self):
        from repro.codecs import SZCodec
        wrapped = SZCodec(impl=get_codec("szlike").impl)
        with pytest.raises(TypeError):
            wrapped.to_spec()
        engine = CodecEngine(wrapped, executor="process")
        with pytest.raises(TypeError, match="serial or thread"):
            engine.compress([np.zeros((4, 8, 8))], bound=0.1)

    def test_artifact_spec_roundtrip_trained(self, tmp_path):
        """A trained codec saved to an artifact is spec-portable."""
        codec = get_codec("vae-sr")
        rng = np.random.default_rng(0)
        codec.train([rng.normal(size=(4, 8, 8))], vae_iters=1,
                    sr_iters=1)
        codec.save_artifact(str(tmp_path / "m.npz"))
        spec = codec.to_spec()
        assert spec["artifact"] == str(tmp_path / "m.npz")
        clone = codec_from_spec(spec)
        frames = np.linspace(0, 1, 4 * 8 * 8).reshape(4, 8, 8)
        a = codec.compress(frames, None, seed=1)
        b = clone.compress(frames, None, seed=1)
        assert a.payload == b.payload


class TestTrainedCodecExecutorEquivalence:
    """Satellite of the artifact-store PR: serial/thread/process must
    stay byte-identical when the codec is *trained* and process
    workers rebuild it from an artifact."""

    @pytest.fixture(scope="class")
    def trained_artifact(self, tmp_path_factory):
        codec = get_codec("vae-sr")
        rng = np.random.default_rng(7)
        wins = [rng.normal(size=(4, 8, 8)).cumsum(axis=0)
                for _ in range(2)]
        codec.train(wins, vae_iters=2, sr_iters=2)
        codec.fit_corrector(wins)
        path = str(tmp_path_factory.mktemp("artifact") / "vae-sr.npz")
        codec.save_artifact(path)
        return codec, path

    def test_backends_bit_identical_from_artifact(self, trained_artifact,
                                                  process_executor):
        codec, path = trained_artifact
        rng = np.random.default_rng(5)
        stacks = [rng.normal(size=(4, 8, 8)).cumsum(axis=0)
                  for _ in range(3)]
        batches = {}
        for executor in (SerialExecutor(), ThreadExecutor(2),
                         process_executor):
            engine = CodecEngine(codec, executor=executor, base_seed=13)
            batches[executor.name] = engine.compress(
                stacks, nrmse_bound=0.05)
        ref = batches["serial"]
        for name in ("thread", "process"):
            got = batches[name]
            assert [r.payload for r in got.results] == \
                [r.payload for r in ref.results], name
            for a, b in zip(got.results, ref.results):
                assert a.accounting == b.accounting, name

    def test_loaded_artifact_equivalent_to_original(self,
                                                    trained_artifact):
        from repro.codecs import Codec
        codec, path = trained_artifact
        clone = Codec.load_artifact(path)
        frames = np.random.default_rng(9).normal(
            size=(4, 8, 8)).cumsum(axis=0)
        a = codec.compress_bounded(frames, nrmse_bound=0.05, seed=2)
        b = clone.compress_bounded(frames, nrmse_bound=0.05, seed=2)
        assert a.payload == b.payload
        np.testing.assert_array_equal(clone.decompress(a.payload),
                                      a.reconstruction)


class TestParallelShimRemoved:
    def test_module_is_gone(self):
        """PR 2 deprecated repro.pipeline.parallel; it is now removed."""
        with pytest.raises(ImportError):
            import repro.pipeline.parallel  # noqa: F401

    def test_symbol_not_exported(self):
        import repro
        import repro.pipeline
        assert not hasattr(repro.pipeline, "compress_windows_parallel")
        assert not hasattr(repro, "compress_windows_parallel")
