"""Shard planner determinism and shard archive container tests."""

import pickle

import numpy as np
import pytest

from repro.data import get_dataset, get_dataset_spec
from repro.pipeline.plan import (SEED_STRIDE, ShardEntry, assemble_shards,
                                 is_shard_archive, pack_shard_archive,
                                 plan_shards, time_slices,
                                 unpack_shard_archive)


def test_seed_stride_matches_engine():
    """plan.py keeps its own literal to avoid an import cycle; it must
    never drift from the engine's historical stride."""
    from repro.pipeline.engine import SEED_STRIDE as ENGINE_STRIDE
    assert SEED_STRIDE == ENGINE_STRIDE == 7919


class TestTimeSlices:
    def test_window_mode_covers_with_short_tail(self):
        assert time_slices(10, window=4) == [(0, 4), (4, 8), (8, 10)]

    def test_shards_mode_near_equal(self):
        slices = time_slices(10, shards=3)
        assert slices[0] == (0, 3)
        assert slices[-1][1] == 10
        assert all(a < b for a, b in slices)
        sizes = [b - a for a, b in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_clamped_to_frames(self):
        assert len(time_slices(3, shards=8)) == 3

    def test_default_whole_range(self):
        assert time_slices(7) == [(0, 7)]

    def test_window_and_shards_conflict(self):
        with pytest.raises(ValueError):
            time_slices(8, window=2, shards=2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            time_slices(0)
        with pytest.raises(ValueError):
            time_slices(8, window=0)
        with pytest.raises(ValueError):
            time_slices(8, shards=0)


class TestPlanShards:
    def test_grid_order_and_seeds(self):
        plan = plan_shards("e3sm", variables=[0, 2], shards=2,
                           base_seed=3, t=8, h=12, w=12)
        assert len(plan) == 4
        # variables outermost, time innermost, seeds follow plan order
        assert [(t.variable, t.t0) for t in plan] == \
            [(0, 0), (0, 4), (2, 0), (2, 4)]
        assert [t.seed for t in plan] == \
            [3 + SEED_STRIDE * i for i in range(4)]

    def test_stable_ids(self):
        plan = plan_shards("s3d", variables=[1], shards=2, t=8,
                           h=12, w=12, seed=4)
        assert [t.shard_id for t in plan] == \
            ["s3d/s4/v1/t0000-0004", "s3d/s4/v1/t0004-0008"]

    def test_replanning_is_deterministic(self):
        a = plan_shards("jhtdb", shards=3, t=9, h=12, w=12)
        b = plan_shards("jhtdb", shards=3, t=9, h=12, w=12)
        assert a.tasks == b.tasks

    def test_accepts_spec_and_instance(self):
        spec = get_dataset_spec("e3sm", t=8, h=12, w=12)
        from_spec = plan_shards(spec, variables=[0], shards=2)
        from_inst = plan_shards(get_dataset("e3sm", t=8, h=12, w=12),
                                variables=[0], shards=2)
        assert from_spec.tasks == from_inst.tasks

    def test_default_variables_cover_dataset(self):
        plan = plan_shards("jhtdb", t=6, h=12, w=12)
        assert plan.variables == (0, 1, 2)

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            plan_shards("e3sm", variables=[99], t=6, h=12, w=12)

    def test_materialize_matches_direct_generation(self):
        plan = plan_shards("s3d", variables=[1], shards=2, t=8,
                           h=12, w=12, seed=6)
        frames = get_dataset("s3d", t=8, h=12, w=12, seed=6).frames(1)
        for task in plan:
            np.testing.assert_array_equal(task.materialize(),
                                          frames[task.t0:task.t1])

    def test_tasks_are_picklable_and_small(self):
        plan = plan_shards("e3sm", shards=4, t=8, h=12, w=12)
        blob = pickle.dumps(plan.tasks)
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        np.testing.assert_array_equal(clone[0].materialize(),
                                      plan[0].materialize())

    def test_total_frames(self):
        plan = plan_shards("e3sm", variables=[0, 1], shards=3,
                           t=10, h=12, w=12)
        assert plan.total_frames() == 20


class TestShardArchive:
    def _entries(self):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=(3, 4, 4)), rng.normal(size=(2, 4, 4))]
        entries = [
            ShardEntry("d/s0/v0/t0000-0003", 0, 0, 3, b"payload-a"),
            ShardEntry("d/s0/v0/t0003-0005", 0, 3, 5, b"payload-bb"),
        ]
        return entries, arrays

    def test_pack_unpack_roundtrip(self):
        entries, _ = self._entries()
        data = pack_shard_archive(entries)
        assert is_shard_archive(data)
        assert unpack_shard_archive(data) == entries

    def test_assemble_single_variable(self):
        entries, arrays = self._entries()
        out = assemble_shards(entries, arrays)
        assert out.shape == (5, 4, 4)
        np.testing.assert_array_equal(out[:3], arrays[0])
        np.testing.assert_array_equal(out[3:], arrays[1])

    def test_assemble_multi_variable(self):
        rng = np.random.default_rng(1)
        arrays = [rng.normal(size=(2, 4, 4)) for _ in range(2)]
        entries = [ShardEntry("x/v0", 0, 0, 2, b""),
                   ShardEntry("x/v3", 3, 0, 2, b"")]
        out = assemble_shards(entries, arrays)
        assert out.shape == (2, 2, 4, 4)
        np.testing.assert_array_equal(out[1], arrays[1])

    def test_assemble_rejects_gaps_and_overlaps(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="gap"):
            assemble_shards([ShardEntry("x", 0, 1, 3, b"")],
                            [rng.normal(size=(2, 4, 4))])
        entries = [ShardEntry("a", 0, 0, 2, b""),
                   ShardEntry("b", 0, 1, 3, b"")]
        arrays = [rng.normal(size=(2, 4, 4))] * 2
        with pytest.raises(ValueError, match="overlap"):
            assemble_shards(entries, arrays)

    def test_truncated_archive_detected(self):
        entries, _ = self._entries()
        # v1: clipping the tail truncates the last member
        data = pack_shard_archive(entries, version=1)
        with pytest.raises(ValueError):
            unpack_shard_archive(data[:-3])
        # v2: clipping the tail eats the footer (the member scan is
        # unaffected); the index reader must notice
        from repro.pipeline.container import ArchiveIndexError
        from repro.pipeline.plan import read_shard_index
        indexed = pack_shard_archive(entries)
        assert unpack_shard_archive(indexed[:-3]) is not None
        with pytest.raises(ArchiveIndexError):
            read_shard_index(indexed[:-3])

    def test_not_an_archive(self):
        assert not is_shard_archive(b"CDX1whatever")
        with pytest.raises(ValueError):
            unpack_shard_archive(b"nope")
