"""Optimizer state and trainer checkpoint/resume tests."""

import numpy as np
import pytest

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.nn import Linear, Sequential, Tensor
from repro.nn.optim import SGD, Adam, CosineLR, StepLR


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 12, rng=rng), Linear(12, 3, rng=rng))


def _train_steps(model, opt, n, seed=0, sched=None):
    """Deterministic toy regression steps; returns final weights."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((8, 6))
    y = rng.standard_normal((8, 3))
    for _ in range(n):
        out = model(Tensor(x))
        loss = ((out - Tensor(y)) * (out - Tensor(y))).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        if sched is not None:
            sched.step()
    return {n: p.data.copy() for n, p in model.named_parameters()}


class TestOptimizerStateDict:
    @pytest.mark.parametrize("cls,kwargs", [
        (Adam, {"lr": 1e-2}),
        (SGD, {"lr": 1e-2, "momentum": 0.9}),
    ])
    def test_resume_matches_uninterrupted(self, cls, kwargs):
        """10 steps == 5 steps + checkpoint + 5 steps, exactly."""
        m_full = _model()
        opt_full = cls(m_full.parameters(), **kwargs)
        ref = _train_steps(m_full, opt_full, 10)

        m_a = _model()
        opt_a = cls(m_a.parameters(), **kwargs)
        _train_steps(m_a, opt_a, 5)
        weights = m_a.state_dict()
        opt_state = opt_a.state_dict()

        m_b = _model(seed=99)  # different init, fully overwritten
        m_b.load_state_dict(weights)
        opt_b = cls(m_b.parameters(), **kwargs)
        opt_b.load_state_dict(opt_state)
        resumed = _train_steps(m_b, opt_b, 5)

        for name in ref:
            np.testing.assert_array_equal(resumed[name], ref[name])

    def test_rejects_mismatched_buffers(self):
        m = _model()
        opt = Adam(m.parameters(), lr=1e-2)
        other = Adam(_model().parameters()[:1], lr=1e-2)
        with pytest.raises((KeyError, ValueError)):
            opt.load_state_dict(other.state_dict())

    @pytest.mark.parametrize("make", [
        lambda o: StepLR(o, step_size=3, gamma=0.5),
        lambda o: CosineLR(o, total_steps=10),
    ])
    def test_scheduler_state_roundtrip(self, make):
        m = _model()
        opt_full = Adam(m.parameters(), lr=1e-2)
        sched_full = make(opt_full)
        for _ in range(7):
            sched_full.step()
        lr_ref = opt_full.lr

        opt_res = Adam(_model().parameters(), lr=1e-2)
        sched_a = make(opt_res)
        for _ in range(4):
            sched_a.step()
        state = sched_a.state_dict()
        opt_b = Adam(_model().parameters(), lr=1e-2)
        sched_b = make(opt_b)
        sched_b.load_state_dict(state)
        for _ in range(3):
            sched_b.step()
        assert opt_b.lr == pytest.approx(lr_ref)


class TestTrainerCheckpoint:
    def _data(self):
        frames = E3SMSynthetic(t=24, h=16, w=16, seed=0).frames(0)
        return train_test_windows(frames, window=6, stride=3)[0]

    def _cfg(self):
        return TrainingConfig(vae_iters=5, diffusion_iters=5,
                              finetune_iters=0, lam=1e-6)

    def test_stage_boundary_resume_is_exact(self, tmp_path):
        """vae -> checkpoint -> diffusion == vae -> diffusion."""
        train = self._data()
        path = str(tmp_path / "stage1.npz")

        ref = TwoStageTrainer(tiny(), self._cfg(), seed=3)
        ref.train_vae(train)
        ref.save_checkpoint(path)
        ref.train_diffusion(train)

        resumed = TwoStageTrainer.from_checkpoint(path)
        resumed.train_diffusion(train)

        for (n0, a0), (n1, a1) in zip(
                sorted(ref.ddpm.state_dict().items()),
                sorted(resumed.ddpm.state_dict().items())):
            assert n0 == n1
            np.testing.assert_array_equal(a0, a1)

    def test_checkpoint_preserves_configs_and_history(self, tmp_path):
        train = self._data()
        path = str(tmp_path / "ck.npz")
        trainer = TwoStageTrainer(tiny(), self._cfg(), seed=1)
        trainer.train_vae(train)
        trainer.save_checkpoint(path)
        restored = TwoStageTrainer.from_checkpoint(path)
        assert restored.config == trainer.config
        assert restored.train_cfg == trainer.train_cfg
        assert restored.seed == trainer.seed
        np.testing.assert_allclose(restored.history.vae_losses,
                                   trainer.history.vae_losses)
        assert restored.history.diffusion_losses == []

    def test_checkpoint_after_finetune_keeps_schedule(self, tmp_path):
        train = self._data()
        cfg = TrainingConfig(vae_iters=3, diffusion_iters=3,
                             finetune_iters=2, lam=1e-6)
        trainer = TwoStageTrainer(tiny(), cfg, seed=2)
        trainer.train_vae(train)
        trainer.train_diffusion(train)
        trainer.finetune_diffusion(train)
        short = trainer.ddpm.schedule.steps
        path = str(tmp_path / "ft.npz")
        trainer.save_checkpoint(path)
        restored = TwoStageTrainer.from_checkpoint(path)
        assert restored.ddpm.schedule.steps == short
