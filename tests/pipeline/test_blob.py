"""Blob container serialization tests (batched-stream format v2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import CompressedBlob


def make_blob(t=12, payload=b"corr", seed=0):
    rng = np.random.default_rng(seed)
    return CompressedBlob(
        shape=(t, 16, 16), window=6, keyframe_strategy="interpolation",
        keyframe_interval=3, sampler="ddim", sample_steps=4, noise_seed=42,
        frame_norms=rng.normal(size=(t, 2)).astype(np.float32),
        y_stream=bytes(rng.integers(0, 256, 40, dtype=np.uint8)),
        z_stream=bytes(rng.integers(0, 256, 13, dtype=np.uint8)),
        y_header={"L": 5}, z_header={"zmin": -3, "zmax": 4},
        y_shape=(6, 4, 2, 2), z_shape=(6, 4, 1, 1),
        bound_payload=payload)


class TestBlobRoundtrip:
    def test_roundtrip_fields(self):
        blob = make_blob()
        back = CompressedBlob.from_bytes(blob.to_bytes())
        assert back.shape == blob.shape
        assert back.window == blob.window
        assert back.keyframe_strategy == blob.keyframe_strategy
        assert back.keyframe_interval == blob.keyframe_interval
        assert back.sampler == blob.sampler
        assert back.sample_steps == blob.sample_steps
        assert back.noise_seed == blob.noise_seed
        np.testing.assert_allclose(back.frame_norms, blob.frame_norms,
                                   atol=1e-7)
        assert back.y_stream == blob.y_stream
        assert back.z_stream == blob.z_stream
        assert back.y_header == blob.y_header
        assert back.z_header == blob.z_header
        assert back.y_shape == blob.y_shape
        assert back.z_shape == blob.z_shape
        assert back.bound_payload == blob.bound_payload

    def test_roundtrip_is_stable(self):
        blob = make_blob()
        data1 = blob.to_bytes()
        data2 = CompressedBlob.from_bytes(data1).to_bytes()
        assert data1 == data2

    def test_no_payload(self):
        blob = make_blob(payload=b"")
        back = CompressedBlob.from_bytes(blob.to_bytes())
        assert back.bound_payload == b""
        assert back.guarantee_bytes() == 0

    def test_size_accounting(self):
        blob = make_blob(payload=b"x" * 100)
        total = len(blob.to_bytes())
        assert blob.total_bytes() == total
        assert blob.guarantee_bytes() == 100
        assert blob.latent_bytes() == total - 100

    def test_streams_dict(self):
        blob = make_blob()
        d = blob.streams_dict()
        assert d["y_stream"] == blob.y_stream
        assert d["z_shape"] == blob.z_shape

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CompressedBlob.from_bytes(b"XXXX" + b"\x00" * 64)

    def test_truncated(self):
        data = make_blob().to_bytes()
        with pytest.raises(Exception):
            CompressedBlob.from_bytes(data[: len(data) // 2])

    def test_bad_norms_shape(self):
        blob = make_blob()
        blob.frame_norms = np.zeros((3, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            blob.to_bytes()

    def test_single_stream_amortizes_headers(self):
        """The batched format stores stream overhead once — the
        serialized size of a 2x-longer latent stream grows by about the
        stream delta, not by another full header."""
        small = make_blob(seed=1)
        big = make_blob(seed=1)
        big.y_stream = big.y_stream * 2
        delta = len(big.to_bytes()) - len(small.to_bytes())
        assert delta == len(small.y_stream)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_blob_roundtrip_property(data):
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    t = data.draw(st.integers(4, 20))
    blob = CompressedBlob(
        shape=(t, 8, 8), window=4,
        keyframe_strategy=data.draw(st.sampled_from(
            ["interpolation", "prediction", "mixed"])),
        keyframe_interval=data.draw(st.integers(1, 6)),
        sampler=data.draw(st.sampled_from(["ddim", "ancestral"])),
        sample_steps=data.draw(st.integers(1, 100)),
        noise_seed=data.draw(st.integers(-2 ** 40, 2 ** 40)),
        frame_norms=rng.normal(size=(t, 2)).astype(np.float32),
        y_stream=rng.bytes(int(rng.integers(0, 60))),
        z_stream=rng.bytes(int(rng.integers(0, 30))),
        y_header={"L": int(rng.integers(1, 99))},
        z_header={"zmin": int(rng.integers(-9, 0)),
                  "zmax": int(rng.integers(0, 9))},
        y_shape=tuple(int(x) for x in rng.integers(1, 6, 4)),
        z_shape=tuple(int(x) for x in rng.integers(1, 6, 4)),
        bound_payload=rng.bytes(data.draw(st.integers(0, 50))))
    back = CompressedBlob.from_bytes(blob.to_bytes())
    assert back.to_bytes() == blob.to_bytes()
