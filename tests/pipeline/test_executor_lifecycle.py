"""Executor lifecycle: no finalizers, idempotent exception-safe close."""

import pytest

from repro.pipeline.executors import (Executor, ProcessExecutor,
                                      SerialExecutor, ThreadExecutor)
from repro.runtime import Task


def _double(x):
    return 2 * x


BACKENDS = [SerialExecutor, ThreadExecutor, ProcessExecutor]


def test_no_finalizer_anywhere():
    """GC-timing-dependent __del__ is banned (same purge as Session)."""
    for cls in (Executor, SerialExecutor, ThreadExecutor,
                ProcessExecutor):
        assert "__del__" not in cls.__dict__
        assert not hasattr(cls, "__del__")


@pytest.mark.parametrize("cls", BACKENDS)
def test_close_is_idempotent(cls):
    ex = cls(max_workers=2)
    assert ex.map(_double, [1, 2, 3]) == [2, 4, 6]
    ex.close()
    ex.close()
    ex.close()


@pytest.mark.parametrize("cls", BACKENDS)
def test_map_after_close_rebuilds(cls):
    """close() is not terminal — the historical executor contract."""
    ex = cls(max_workers=2)
    ex.close()
    assert ex.map(_double, [1, 2, 3]) == [2, 4, 6]
    ex.close()


@pytest.mark.parametrize("cls", BACKENDS)
def test_context_manager_closes(cls):
    with cls(max_workers=2) as ex:
        assert ex.map(_double, [5]) == [10]
    ex.close()  # extra close after __exit__ stays safe


def test_close_swallows_pool_shutdown_errors(monkeypatch):
    ex = ThreadExecutor(max_workers=2)
    ex.map(_double, [1, 2, 3, 4])
    pool = ex.runtime._thread_pool
    assert pool is not None

    def bad_shutdown(wait=True):
        raise OSError("pool refused to die")

    monkeypatch.setattr(pool, "shutdown", bad_shutdown)
    ex.close()  # must not raise
    assert ex.runtime._thread_pool is None
    # and a later map still works
    assert ex.map(_double, [7]) == [14]
    ex.close()


def test_close_without_runtime_attribute():
    """Half-constructed executors (failed __init__) must close safely."""
    ex = SerialExecutor.__new__(SerialExecutor)
    ex.close()  # no _runtime attribute yet: getattr-guarded


@pytest.mark.parametrize("cls", BACKENDS)
def test_run_tasks_surface(cls):
    ex = cls(max_workers=2)
    try:
        tasks = [Task(task_id=f"t{i}", fn=_double, payload=i, index=i)
                 for i in range(5)]
        seen = []
        outcomes = ex.run_tasks(tasks, on_result=lambda o: seen.append(
            o.task_id))
        assert [o.value for o in outcomes] == [0, 2, 4, 6, 8]
        assert sorted(seen) == sorted(t.task_id for t in tasks)
    finally:
        ex.close()
