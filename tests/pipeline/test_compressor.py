"""End-to-end compressor integration tests (tiny config).

A single trained trainer/compressor is shared module-wide — training is
the expensive part and the tests here probe different properties of the
same artifact.
"""

import numpy as np
import pytest

from repro import (CompressedBlob, LatentDiffusionCompressor,
                   TrainingConfig, TwoStageTrainer, nrmse, tiny)
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.pipeline import CodecEngine
from repro.pipeline.compressor import window_starts

CFG = tiny()


class TestWindowStarts:
    def test_exact_division(self):
        assert window_starts(12, 6) == [0, 6]

    def test_overlapping_tail(self):
        assert window_starts(14, 6) == [0, 6, 8]

    def test_single(self):
        assert window_starts(6, 6) == [0]

    def test_too_short(self):
        with pytest.raises(ValueError):
            window_starts(4, 6)


class TestCompressDecompress:
    def test_roundtrip_without_bound(self, trained):
        _, compressor, frames, _ = trained
        res = compressor.compress(frames)
        recon = compressor.decompress(res.blob)
        np.testing.assert_allclose(recon, res.reconstruction, atol=1e-9)

    def test_roundtrip_through_bytes(self, trained):
        """Serialize -> deserialize -> decompress gives identical output."""
        _, compressor, frames, _ = trained
        res = compressor.compress(frames, nrmse_bound=0.05)
        blob2 = CompressedBlob.from_bytes(res.blob.to_bytes())
        recon = compressor.decompress(blob2)
        np.testing.assert_allclose(recon, res.reconstruction, atol=1e-9)

    def test_compression_actually_compresses(self, trained):
        _, compressor, frames, _ = trained
        res = compressor.compress(frames)
        assert res.ratio > 1.0

    def test_error_bound_honored(self, trained):
        _, compressor, frames, _ = trained
        target = 0.02
        res = compressor.compress(frames, nrmse_bound=target)
        assert res.achieved_nrmse <= target * (1 + 1e-9)
        # and the decoded stream matches
        recon = compressor.decompress(res.blob)
        assert nrmse(frames, recon) <= target * (1 + 1e-9)

    def test_absolute_l2_bound(self, trained):
        _, compressor, frames, _ = trained
        res_plain = compressor.compress(frames)
        err = np.linalg.norm(frames - res_plain.reconstruction)
        tau = 0.5 * err
        res = compressor.compress(frames, error_bound=tau)
        achieved = np.linalg.norm(frames - res.reconstruction)
        assert achieved <= tau * (1 + 1e-9)

    def test_tighter_bound_lower_ratio(self, trained):
        _, compressor, frames, _ = trained
        loose = compressor.compress(frames, nrmse_bound=0.05)
        tight = compressor.compress(frames, nrmse_bound=0.005)
        assert tight.ratio < loose.ratio
        assert tight.achieved_nrmse <= 0.005 * (1 + 1e-9)

    def test_keyframes_dominate_quality(self, trained):
        """Keyframe frames reconstruct at least as well on average as
        generated frames (they skip the generative stage)."""
        _, compressor, frames, _ = trained
        res = compressor.compress(frames)
        spec = compressor.spec()
        w = CFG.pipeline.window
        key_err, gen_err = [], []
        for start in window_starts(frames.shape[0], w):
            chunk_err = np.sqrt(((frames[start:start + w]
                                  - res.reconstruction[start:start + w]) ** 2
                                 ).mean(axis=(1, 2)))
            key_err.extend(chunk_err[spec.cond_idx])
            gen_err.extend(chunk_err[spec.gen_idx])
        assert np.mean(key_err) <= np.mean(gen_err) * 1.5

    def test_invalid_inputs(self, trained):
        _, compressor, frames, _ = trained
        with pytest.raises(ValueError):
            compressor.compress(frames[0])  # 2-D
        with pytest.raises(ValueError):
            compressor.compress(frames, error_bound=1.0, nrmse_bound=0.1)

    def test_bound_without_corrector_raises(self, trained):
        trainer, _, frames, _ = trained
        bare = LatentDiffusionCompressor(trainer.vae, trainer.ddpm,
                                         CFG.pipeline)
        with pytest.raises(ValueError):
            bare.compress(frames, nrmse_bound=0.01)

    def test_window_mismatch_raises(self, trained):
        trainer, _, _, _ = trained
        from dataclasses import replace
        bad = replace(CFG.pipeline, window=CFG.pipeline.window + 2)
        with pytest.raises(ValueError):
            LatentDiffusionCompressor(trainer.vae, trainer.ddpm, bad)


class TestAccounting:
    def test_bytes_split(self, trained):
        _, compressor, frames, _ = trained
        res = compressor.compress(frames, nrmse_bound=0.02)
        acc = res.accounting
        assert acc.latent_bytes > 0
        assert acc.guarantee_bytes > 0
        assert acc.compressed_bytes == res.blob.total_bytes()
        assert acc.original_bytes == frames.size * 4

    def test_ratio_definition(self, trained):
        _, compressor, frames, _ = trained
        res = compressor.compress(frames)
        assert res.ratio == pytest.approx(
            frames.size * 4 / res.blob.total_bytes())


class TestTrainingImproves:
    def test_trained_beats_untrained(self, trained):
        """The trained pipeline reconstructs better than random weights."""
        trainer, compressor, frames, _ = trained
        res_trained = compressor.compress(frames)
        untrained = TwoStageTrainer(
            CFG, TrainingConfig(vae_iters=1, diffusion_iters=1,
                                finetune_iters=0), seed=9)
        bare = LatentDiffusionCompressor(untrained.vae, untrained.ddpm,
                                         CFG.pipeline)
        res_bare = bare.compress(frames)
        assert res_trained.achieved_nrmse < res_bare.achieved_nrmse


class TestParallel:
    """Window-parallel batches through the engine (the deprecated
    ``repro.pipeline.parallel`` shim over it has been removed)."""

    def test_parallel_matches_serial(self, trained):
        _, compressor, frames, _ = trained
        stacks = [frames, frames * 0.5 + 1.0]
        serial = CodecEngine(compressor, max_workers=1).compress(stacks)
        parallel = CodecEngine(compressor, max_workers=2).compress(stacks)
        for a, b in zip(serial.results, parallel.results):
            np.testing.assert_allclose(a.reconstruction, b.reconstruction,
                                       atol=1e-12)
            assert a.detail.blob.to_bytes() == b.detail.blob.to_bytes()

    def test_invalid_workers(self, trained):
        _, compressor, frames, _ = trained
        with pytest.raises(ValueError):
            CodecEngine(compressor, max_workers=0).compress([frames])
