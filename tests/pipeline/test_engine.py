"""Execution-engine unit tests (codec-agnostic plumbing).

The per-codec bit-identity acceptance tests live in
``tests/codecs/test_registry.py``; this module covers the engine's own
mechanics with a fast rule-based codec: deterministic seed derivation,
per-window timing, accounting aggregation, parallel decompress, and
argument validation.
"""

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.pipeline.engine import SEED_STRIDE, BatchResult, CodecEngine


@pytest.fixture(scope="module")
def stacks():
    rng = np.random.default_rng(2)
    return [(rng.standard_normal((6, 12, 12)) * 0.1).cumsum(axis=0) + i
            for i in range(5)]


@pytest.fixture(scope="module")
def batch(stacks):
    engine = CodecEngine("szlike", max_workers=3, base_seed=4)
    return engine.compress(stacks, nrmse_bound=0.05)


class TestCodecEngine:
    def test_order_and_seeds(self, batch, stacks):
        assert [r.index for r in batch.reports] == list(range(len(stacks)))
        assert [r.seed for r in batch.reports] == \
            [4 + SEED_STRIDE * i for i in range(len(stacks))]

    def test_per_window_timing_and_wall_clock(self, batch):
        assert all(r.seconds > 0 for r in batch.reports)
        assert batch.wall_seconds > 0
        assert batch.cpu_seconds >= max(r.seconds for r in batch.reports)
        assert batch.speedup > 0

    def test_accounting_aggregates(self, batch, stacks):
        acc = batch.accounting()
        assert acc.original_bytes == sum(s.size * 4 for s in stacks)
        assert acc.latent_bytes == sum(
            len(r.payload) for r in batch.results)
        assert batch.ratio == pytest.approx(acc.ratio)
        assert batch.worst_nrmse() <= 0.05 * (1 + 1e-9)

    def test_decompress_batch_parallel_matches_serial(self, batch):
        payloads = [r.payload for r in batch.results]
        serial = CodecEngine("szlike", max_workers=1).decompress(payloads)
        parallel = CodecEngine("szlike", max_workers=4).decompress(
            payloads)
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a, b)

    def test_native_bound_passthrough(self, stacks):
        engine = CodecEngine("szlike", max_workers=2)
        res = engine.compress(stacks[:2], bound=0.01)
        for orig, r in zip(stacks[:2], res.results):
            assert np.abs(orig - r.reconstruction).max() <= \
                0.01 * (1 + 1e-9)

    def test_conflicting_bounds_raise(self, stacks):
        engine = CodecEngine("szlike")
        with pytest.raises(ValueError):
            engine.compress(stacks[:1], bound=0.1, nrmse_bound=0.1)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            CodecEngine("szlike", max_workers=0)

    def test_empty_batch(self):
        engine = CodecEngine("szlike")
        res = engine.compress([])
        assert isinstance(res, BatchResult)
        assert res.results == []
        assert res.accounting().compressed_bytes == 0

    def test_exceptions_propagate(self):
        engine = CodecEngine("szlike", max_workers=2)
        with pytest.raises(ValueError):
            # rule-based codec without a bound
            engine.compress([np.zeros((4, 4, 4)), np.zeros((4, 4, 4))])

    def test_bound_object_matches_legacy_kwargs(self, stacks):
        from repro.bound import Bound
        engine = CodecEngine("szlike", max_workers=2, base_seed=4)
        legacy = engine.compress(stacks, nrmse_bound=0.05)
        typed = engine.compress(stacks, bound=Bound.nrmse(0.05))
        for a, b in zip(legacy.results, typed.results):
            assert a.payload == b.payload


def test_parallel_map_removed():
    """The pre-executor-era helper is gone; executors replaced it."""
    import repro.pipeline
    import repro.pipeline.engine as engine
    assert not hasattr(engine, "parallel_map")
    assert not hasattr(repro.pipeline, "parallel_map")
