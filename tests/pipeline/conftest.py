"""Shared trained pipeline for the integration test modules."""

import numpy as np
import pytest

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows

CFG = tiny()


@pytest.fixture(scope="session")
def trained():
    ds = E3SMSynthetic(t=36, h=16, w=16, seed=0, num_vars=1)
    frames = ds.normalized_frames(0) * 4.0 + 1.0  # non-trivial scale
    train, test = train_test_windows(frames, window=CFG.pipeline.window,
                                     train_fraction=0.5, stride=2)
    trainer = TwoStageTrainer(
        CFG, TrainingConfig(vae_iters=250, diffusion_iters=600,
                            finetune_iters=0, vae_batch=4,
                            diffusion_batch=4, lam=1e-6,
                            vae_lr_decay_every=100), seed=0)
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    compressor = trainer.build_compressor(train)
    return trainer, compressor, frames, test
