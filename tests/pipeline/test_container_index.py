"""Footer-index machinery: serialization, corruption, byte sources.

Mirrors the strict-decode style of ``tests/entropy``: every malformed
structure must raise a typed error (:class:`ArchiveIndexError`), never
decode garbage or mis-locate a member.
"""

import io
import zlib

import numpy as np
import pytest

from repro.pipeline.container import (ArchiveIndexError, BufferSource,
                                      CountingReader, FileObjSource,
                                      FileSource, INDEX_MAGIC,
                                      INDEX_VERSION, MemberIndex,
                                      TRAILER_SIZE, as_source,
                                      build_index, index_blob,
                                      parse_index, read_index,
                                      verify_member)


def _members(payloads):
    members, pos = [], 8
    for i, payload in enumerate(payloads):
        members.append(MemberIndex(
            key=f"m/{i}", kind=1, codec="szlike", variable=0,
            t0=4 * i, t1=4 * i + 4, offset=pos, length=len(payload),
            crc32=zlib.crc32(payload)))
        pos += len(payload)
    return members, pos


def _container(payloads):
    """A minimal indexed container: 8-byte head, members, footer."""
    members, pos = _members(payloads)
    return b"HEAD0000" + b"".join(payloads) + index_blob(members, pos), \
        members


PAYLOADS = [b"alpha-payload", b"beta", b"gamma-longer-payload"]


class TestFooterRoundtrip:
    def test_index_roundtrip(self):
        data, members = _container(PAYLOADS)
        got = read_index(BufferSource(data))
        assert got == members

    def test_member_rows_locate_payloads(self):
        data, members = _container(PAYLOADS)
        for m, payload in zip(members, PAYLOADS):
            assert data[m.offset:m.offset + m.length] == payload
            assert verify_member(payload, m) == payload
            assert m.frames == 4

    def test_open_cost_is_o_footer(self):
        """Reading the index touches trailer + footer bytes only."""
        data, members = _container([p * 200 for p in PAYLOADS])
        footer_offset = 8 + sum(len(p) * 200 for p in PAYLOADS)
        with io.BytesIO(data) as fh:
            counter = CountingReader(fh)
            assert read_index(FileObjSource(counter)) == members
            assert counter.bytes_read == len(data) - footer_offset

    def test_no_trailer_returns_none(self):
        assert read_index(BufferSource(b"HEAD0000-just-members")) is None

    def test_tiny_buffer_returns_none(self):
        assert read_index(BufferSource(b"HE")) is None


class TestCorruption:
    def test_clipped_footer_fails_checksum(self):
        data, _ = _container(PAYLOADS)
        with pytest.raises(ArchiveIndexError, match="checksum"):
            read_index(BufferSource(data[:-TRAILER_SIZE - 2]
                                    + data[-TRAILER_SIZE:]))

    def test_flipped_footer_byte_fails_checksum(self):
        data, _ = _container(PAYLOADS)
        bad = bytearray(data)
        bad[-TRAILER_SIZE - 4] ^= 0xFF
        with pytest.raises(ArchiveIndexError, match="checksum"):
            read_index(BufferSource(bytes(bad)))

    def test_trailer_offset_outside_file(self):
        data, members = _container(PAYLOADS)
        footer = build_index(members)
        huge = footer[:-TRAILER_SIZE] + index_blob(
            members, 1 << 40)[-TRAILER_SIZE:]
        with pytest.raises(ArchiveIndexError, match="outside"):
            read_index(BufferSource(b"HEAD0000" + huge))

    def test_bad_footer_magic(self):
        with pytest.raises(ArchiveIndexError, match="magic"):
            parse_index(b"NOPE" + b"\x00" * 16)

    def test_unsupported_index_version(self):
        members, _ = _members(PAYLOADS)
        footer = build_index(members)[:-TRAILER_SIZE]
        bad = INDEX_MAGIC + bytes([INDEX_VERSION + 9]) + footer[5:]
        with pytest.raises(ArchiveIndexError, match="version"):
            parse_index(bad)

    def test_truncated_footer_body(self):
        members, _ = _members(PAYLOADS)
        footer = build_index(members)[:-TRAILER_SIZE]
        with pytest.raises(ArchiveIndexError, match="truncated"):
            parse_index(footer[:len(footer) // 2])

    def test_member_truncation_detected(self):
        _, members = _container(PAYLOADS)
        with pytest.raises(ArchiveIndexError, match="truncated"):
            verify_member(PAYLOADS[0][:-1], members[0])

    def test_member_corruption_detected(self):
        _, members = _container(PAYLOADS)
        bad = b"X" + PAYLOADS[0][1:]
        with pytest.raises(ArchiveIndexError, match="checksum"):
            verify_member(bad, members[0])

    def test_build_rejects_bad_names(self):
        m = MemberIndex(key="", kind=0, codec="", variable=0, t0=0,
                        t1=1, offset=0, length=1, crc32=0)
        with pytest.raises(ValueError, match="key"):
            build_index([m])
        m = MemberIndex(key="k", kind=0, codec="c" * 300, variable=0,
                        t0=0, t1=1, offset=0, length=1, crc32=0)
        with pytest.raises(ValueError, match="codec"):
            build_index([m])


class TestByteSources:
    def test_sources_agree(self, tmp_path):
        data, _ = _container(PAYLOADS)
        path = tmp_path / "c.bin"
        path.write_bytes(data)
        with open(path, "rb") as fh:
            sources = [BufferSource(data), FileSource(path),
                       FileObjSource(fh)]
            for src in sources:
                assert src.size() == len(data)
                assert src.read_at(8, 5) == data[8:13]
                assert src.read_all() == data
                sink = io.BytesIO()
                src.copy_to(sink)
                assert sink.getvalue() == data

    def test_as_source_dispatch(self, tmp_path):
        path = tmp_path / "c.bin"
        path.write_bytes(b"xyz")
        assert isinstance(as_source(b"xyz"), BufferSource)
        assert isinstance(as_source(bytearray(b"xyz")), BufferSource)
        assert isinstance(as_source(path), FileSource)
        assert isinstance(as_source(str(path)), FileSource)
        with open(path, "rb") as fh:
            assert isinstance(as_source(fh), FileObjSource)
        src = BufferSource(b"xyz")
        assert as_source(src) is src

    def test_counting_reader_counts(self):
        with CountingReader(io.BytesIO(b"0123456789")) as counter:
            counter.seek(2)
            assert counter.read(3) == b"234"
            assert counter.tell() == 5
            counter.seek(0)
            counter.read(4)
            assert counter.bytes_read == 7
            assert counter.reads == 2


class TestIndexReaders:
    """Container-level index readers: footer fast path vs legacy scan."""

    def test_shard_v1_scan_matches_v2_footer(self):
        from repro.pipeline.plan import (ShardEntry, pack_shard_archive,
                                         read_shard_index)
        entries = [ShardEntry("d/v0/t0000-0003", 0, 0, 3, b"pay-a"),
                   ShardEntry("d/v0/t0003-0005", 0, 3, 5, b"pay-bb")]
        v1 = pack_shard_archive(entries, version=1)
        v2 = pack_shard_archive(entries)
        assert read_shard_index(BufferSource(v1)) \
            == read_shard_index(BufferSource(v2))

    def test_multivar_legacy_scan_matches_v3_footer(self):
        from repro.codecs import pack_envelope
        from repro.pipeline.multivar import (MultiVarArchive,
                                             read_multivar_index)
        frames = np.random.default_rng(0).normal(size=(4, 8, 8))
        from repro.codecs import get_codec
        env = pack_envelope("szlike",
                            get_codec("szlike").compress(frames, 0.1)
                            .payload)
        arc = MultiVarArchive(envelopes={"u": env})
        v2 = read_multivar_index(BufferSource(arc.to_bytes(version=2)))
        v3 = read_multivar_index(BufferSource(arc.to_bytes()))
        assert v2 == v3
        assert [m.codec for m in v3] == ["szlike"]


class TestNpyStackSource:
    def _stack(self, tmp_path, shape=(10, 4, 4), dtype=np.float64):
        rng = np.random.default_rng(7)
        arr = rng.normal(size=shape).astype(dtype)
        path = tmp_path / "s.npy"
        np.save(path, arr)
        return path, arr

    def test_reads_match_slices(self, tmp_path):
        from repro.pipeline.sources import NpyStackSource
        path, arr = self._stack(tmp_path)
        src = NpyStackSource(path)
        assert src.shape == arr.shape and src.t == 10
        assert src.dtype == arr.dtype
        for a, b in [(0, 10), (0, 1), (3, 7), (9, 10)]:
            got = src.read(a, b)
            np.testing.assert_array_equal(got, arr[a:b])
            assert got.flags.writeable

    def test_bad_ranges(self, tmp_path):
        from repro.pipeline.sources import NpyStackSource
        path, _ = self._stack(tmp_path)
        src = NpyStackSource(path)
        for a, b in [(-1, 2), (2, 2), (5, 3), (0, 11)]:
            with pytest.raises(ValueError, match="frame range"):
                src.read(a, b)

    def test_truncated_file_detected(self, tmp_path):
        from repro.pipeline.sources import NpyStackSource
        path, _ = self._stack(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-40])
        with pytest.raises(ValueError, match="truncated"):
            NpyStackSource(path).read(8, 10)

    def test_rejects_wrong_rank_and_order(self, tmp_path):
        from repro.pipeline.sources import NpyStackSource
        flat = tmp_path / "flat.npy"
        np.save(flat, np.zeros((4, 4)))
        with pytest.raises(ValueError, match="3-dim|stack"):
            NpyStackSource(flat)
        fortran = tmp_path / "f.npy"
        np.save(fortran, np.asfortranarray(np.zeros((3, 4, 4))))
        with pytest.raises(ValueError, match="Fortran"):
            NpyStackSource(fortran)

    def test_array_source_copies(self):
        from repro.pipeline.sources import ArrayStackSource
        arr = np.arange(24.0).reshape(4, 3, 2)
        src = ArrayStackSource(arr)
        got = src.read(1, 3)
        got[:] = -1
        np.testing.assert_array_equal(src.read(1, 3),
                                      np.arange(24.0).reshape(4, 3, 2)[1:3])
        with pytest.raises(ValueError, match="T, H, W"):
            ArrayStackSource(np.zeros((4, 4)))

    def test_as_stack_source_dispatch(self, tmp_path):
        from repro.pipeline.sources import (ArrayStackSource,
                                            NpyStackSource,
                                            as_stack_source)
        path, _ = self._stack(tmp_path)
        assert isinstance(as_stack_source(path), NpyStackSource)
        assert isinstance(as_stack_source(np.zeros((2, 2, 2))),
                          ArrayStackSource)
        src = NpyStackSource(path)
        assert as_stack_source(src) is src
