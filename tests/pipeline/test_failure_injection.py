"""Failure-injection tests: corrupted streams, mismatched models."""

import numpy as np
import pytest

from repro import CompressedBlob, LatentDiffusionCompressor, tiny
from repro.postprocess import ErrorBoundCorrector, ResidualPCA

CFG = tiny()


class TestCorruptedStreams:
    def test_truncated_blob_raises(self, trained):
        _, compressor, frames, _ = trained
        data = compressor.compress(frames).blob.to_bytes()
        with pytest.raises(Exception):
            CompressedBlob.from_bytes(data[:20])

    def test_garbage_magic_raises(self, trained):
        _, compressor, frames, _ = trained
        data = bytearray(compressor.compress(frames).blob.to_bytes())
        data[0:4] = b"JUNK"
        with pytest.raises(ValueError):
            CompressedBlob.from_bytes(bytes(data))

    def test_corrupted_latent_stream_decodes_differently_or_raises(
            self, trained):
        """Flipping payload bytes must never silently return the
        original reconstruction."""
        _, compressor, frames, _ = trained
        res = compressor.compress(frames)
        blob = CompressedBlob.from_bytes(res.blob.to_bytes())
        corrupted = bytearray(blob.y_stream)
        if len(corrupted) > 4:
            corrupted[len(corrupted) // 2] ^= 0xFF
        blob.y_stream = bytes(corrupted)
        try:
            recon = compressor.decompress(blob)
            assert not np.allclose(recon, res.reconstruction)
        except (ValueError, IndexError, OverflowError):
            pass  # detected corruption is equally acceptable

    def test_corrupted_bound_payload_detected_or_diverges(self, trained):
        """Corrupting the coded correction must either raise or change
        the output — never silently reproduce the bounded result."""
        _, compressor, frames, _ = trained
        res = compressor.compress(frames, nrmse_bound=0.05)
        blob = CompressedBlob.from_bytes(res.blob.to_bytes())
        payload = bytearray(blob.bound_payload)
        # hit the coded-integer section, not the geometry header
        idx = max(len(payload) - 8, 60)
        for i in range(idx, min(idx + 4, len(payload))):
            payload[i] ^= 0xA5
        blob.bound_payload = bytes(payload)
        try:
            recon = compressor.decompress(blob)
            assert not np.allclose(recon, res.reconstruction)
        except Exception:
            pass  # detected corruption is equally acceptable


class TestModelMismatch:
    def test_wrong_corrector_block_raises(self, trained):
        trainer, compressor, frames, _ = trained
        res = compressor.compress(frames, nrmse_bound=0.05)
        wrong_pca = ResidualPCA(block=CFG.pipeline.pca_block + 1,
                                rank=4).fit(np.zeros((4, 16, 16)) +
                                            np.random.default_rng(0)
                                            .normal(size=(4, 16, 16)))
        bad = LatentDiffusionCompressor(
            trainer.vae, trainer.ddpm, CFG.pipeline,
            corrector=ErrorBoundCorrector(wrong_pca))
        with pytest.raises(ValueError):
            bad.decompress(res.blob)

    def test_decompress_without_corrector_raises(self, trained):
        trainer, compressor, frames, _ = trained
        res = compressor.compress(frames, nrmse_bound=0.05)
        bare = LatentDiffusionCompressor(trainer.vae, trainer.ddpm,
                                         CFG.pipeline)
        with pytest.raises(ValueError):
            bare.decompress(res.blob)

    def test_decompress_is_deterministic(self, trained):
        """Two decodes of the same blob are bit-identical (the paper's
        bound argument depends on this)."""
        _, compressor, frames, _ = trained
        blob = compressor.compress(frames).blob
        a = compressor.decompress(blob)
        b = compressor.decompress(blob)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_blob_same_bound(self, trained):
        _, compressor, frames, _ = trained
        r1 = compressor.compress(frames, nrmse_bound=0.05, noise_seed=1)
        r2 = compressor.compress(frames, nrmse_bound=0.05, noise_seed=2)
        assert r1.achieved_nrmse <= 0.05 * (1 + 1e-9)
        assert r2.achieved_nrmse <= 0.05 * (1 + 1e-9)
        # reconstructions differ (different sampling noise) but both
        # decode consistently
        np.testing.assert_allclose(
            compressor.decompress(r1.blob), r1.reconstruction, atol=1e-9)
