"""Tests for the qoi and spectrum CLI subcommands."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def npy_pair(tmp_path):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 16, 16)).cumsum(axis=1)
    x_g = x + 0.01 * rng.standard_normal(x.shape)
    p0 = tmp_path / "orig.npy"
    p1 = tmp_path / "recon.npy"
    np.save(p0, x)
    np.save(p1, x_g)
    return str(p0), str(p1), x, x_g


class TestQoICommand:
    def test_default_tau_all_ok(self, npy_pair, capsys):
        p0, p1, _, _ = npy_pair
        assert main(["qoi", p0, p1]) == 0
        out = capsys.readouterr().out
        assert "global-mean" in out and "energy" in out
        assert "VIOLATED" not in out

    def test_explicit_tau(self, npy_pair, capsys):
        p0, p1, x, x_g = npy_pair
        tau = float(np.linalg.norm(x - x_g)) * 2
        assert main(["qoi", p0, p1, "--tau", str(tau)]) == 0
        assert f"{tau:.6g}" in capsys.readouterr().out

    def test_too_small_tau_reports_violation(self, npy_pair, capsys):
        p0, p1, x, x_g = npy_pair
        # tau far below the actual error invalidates the certificates
        tau = float(np.linalg.norm(x - x_g)) * 1e-6
        rc = main(["qoi", p0, p1, "--tau", str(tau)])
        out = capsys.readouterr().out
        # either certificates are violated (exit 1) or, pathologically,
        # all QoIs happen to be tiny; for this data they are not
        assert rc == 1
        assert "VIOLATED" in out

    def test_shape_mismatch_is_error(self, npy_pair, tmp_path, capsys):
        p0, _, _, _ = npy_pair
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros((2, 8, 8)))
        assert main(["qoi", p0, str(bad)]) == 2


class TestSpectrumCommand:
    def test_prints_bands(self, npy_pair, capsys):
        p0, p1, _, _ = npy_pair
        assert main(["spectrum", p0, p1, "--k-max", "4"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()
                 and ln.lstrip()[0].isdigit()]
        assert len(lines) == 5  # k = 0..4
        assert "worst finite band error" in out

    def test_identical_inputs_zero_error(self, npy_pair, capsys):
        p0, _, _, _ = npy_pair
        assert main(["spectrum", p0, p0]) == 0
        out = capsys.readouterr().out
        assert "worst finite band error: 0" in out

    def test_shape_mismatch_is_error(self, npy_pair, tmp_path):
        p0, _, _, _ = npy_pair
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros((2, 8, 8)))
        assert main(["spectrum", p0, str(bad)]) == 2
