"""Model-bundle persistence tests (save_bundle / load_bundle)."""

import numpy as np
import pytest

from repro.cli import load_bundle, save_bundle
from repro.compression import VAEHyperprior
from repro.config import (DiffusionConfig, PipelineConfig, ReproConfig,
                          VAEConfig)
from repro.diffusion import ConditionalDDPM
from repro.pipeline import LatentDiffusionCompressor
from repro.postprocess import ErrorBoundCorrector, ResidualPCA


def _compressor(activation="silu", with_corrector=False, seed=0):
    rng = np.random.default_rng(seed)
    vae_cfg = VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                        hyper_filters=4, kernel_size=3,
                        activation=activation)
    diff_cfg = DiffusionConfig(latent_channels=4, base_channels=8,
                               channel_mults=(1,), time_embed_dim=16,
                               num_frames=4, train_steps=8,
                               finetune_steps=2, num_groups=2)
    pipe_cfg = PipelineConfig(window=4, keyframe_interval=3,
                              sample_steps=2, pca_block=4, pca_rank=4)
    vae = VAEHyperprior(vae_cfg, rng=rng)
    ddpm = ConditionalDDPM(diff_cfg, rng=rng)
    corrector = None
    if with_corrector:
        pca = ResidualPCA(block=4, rank=4).fit(
            rng.standard_normal((4, 16, 16)))
        corrector = ErrorBoundCorrector(pca, coeff_quant_bits=8)
    return LatentDiffusionCompressor(vae, ddpm, pipe_cfg,
                                     corrector=corrector)


class TestBundleRoundtrip:
    @pytest.mark.parametrize("activation", ["silu", "gdn"])
    def test_weights_and_config_survive(self, tmp_path, activation):
        comp = _compressor(activation=activation)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        restored = load_bundle(path)
        assert restored.vae.cfg.activation == activation
        for (n0, a0), (n1, a1) in zip(
                sorted(comp.vae.state_dict().items()),
                sorted(restored.vae.state_dict().items())):
            assert n0 == n1
            np.testing.assert_array_equal(a0, a1)
        for (n0, a0), (n1, a1) in zip(
                sorted(comp.ddpm.state_dict().items()),
                sorted(restored.ddpm.state_dict().items())):
            assert n0 == n1
            np.testing.assert_array_equal(a0, a1)

    def test_corrector_survives(self, tmp_path):
        comp = _compressor(with_corrector=True)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        restored = load_bundle(path)
        assert restored.corrector is not None
        np.testing.assert_array_equal(restored.corrector.pca.basis,
                                      comp.corrector.pca.basis)
        assert restored.corrector.coeff_quant_bits == 8

    def test_no_corrector_loads_none(self, tmp_path):
        comp = _compressor(with_corrector=False)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        assert load_bundle(path).corrector is None

    def test_restored_compressor_is_functional(self, tmp_path):
        """A loaded (untrained) bundle must still round-trip bytes."""
        comp = _compressor(seed=3)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        restored = load_bundle(path)
        frames = np.random.default_rng(1).standard_normal((4, 16, 16))
        res = comp.compress(frames)
        out = restored.decompress(res.blob)
        np.testing.assert_allclose(out, res.reconstruction, atol=1e-9)

    def test_gdn_bundle_reconstruction_matches(self, tmp_path):
        comp = _compressor(activation="gdn", seed=4)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        restored = load_bundle(path)
        frames = np.random.default_rng(2).standard_normal((4, 16, 16))
        r0 = comp.compress(frames)
        r1 = restored.compress(frames)
        np.testing.assert_allclose(r1.reconstruction, r0.reconstruction,
                                   atol=1e-9)
        assert r1.blob.to_bytes() == r0.blob.to_bytes()


class TestBundleFormats:
    """save_bundle now writes codec artifacts; legacy pre-manifest
    bundles must keep loading byte-for-byte."""

    def test_new_bundles_are_artifacts(self, tmp_path):
        from repro.pipeline.artifacts import is_artifact, read_manifest
        comp = _compressor(with_corrector=True, seed=6)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        assert is_artifact(path)
        manifest = read_manifest(path)
        assert manifest.codec == "ours"
        assert len(manifest.state_hash) == 64

    def test_legacy_bundle_still_loads(self, tmp_path):
        """A pre-artifact .npz (state arrays, no manifest) loads and
        reproduces compression exactly."""
        from repro.pipeline.artifacts import is_artifact
        from repro.pipeline.bundle import compressor_state
        comp = _compressor(with_corrector=True, seed=5)
        legacy = str(tmp_path / "legacy.npz")
        # the historical save_bundle layout: bare state arrays
        np.savez_compressed(legacy, **compressor_state(comp))
        assert not is_artifact(legacy)
        restored = load_bundle(legacy)
        frames = np.random.default_rng(8).standard_normal((4, 16, 16))
        r0 = comp.compress(frames, noise_seed=2)
        r1 = restored.compress(frames, noise_seed=2)
        assert r1.blob.to_bytes() == r0.blob.to_bytes()
        assert restored.corrector is not None

    def test_artifact_bundle_is_process_portable(self, tmp_path):
        """Bundles written today feed process-pool sweeps directly."""
        from repro.codecs import LatentDiffusionCodec
        comp = _compressor(seed=7)
        path = str(tmp_path / "model.npz")
        save_bundle(path, comp)
        codec = LatentDiffusionCodec.from_bundle(path)
        spec = codec.to_spec()
        assert spec["artifact"] == path
        clone = codec.from_spec(spec)
        frames = np.random.default_rng(3).standard_normal((4, 16, 16))
        a = codec.compress(frames, seed=4)
        b = clone.compress(frames, seed=4)
        assert a.payload == b.payload


class TestExamplesSmoke:
    def test_rulebased_comparison_example_runs(self, capsys):
        """The no-training example must run end to end."""
        import examples.rulebased_comparison as ex
        ex.main()
        out = capsys.readouterr().out
        assert "FAZ-like auto-tuning chose" in out
        assert "progressive recovery" in out
