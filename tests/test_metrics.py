"""Metric and accounting tests (Sec. 4.1-4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (CompressionAccounting, compression_ratio, mse,
                           nrmse, psnr, rmse)

RNG = np.random.default_rng(0)


class TestErrors:
    def test_mse_zero_for_identical(self):
        x = RNG.normal(size=(4, 5))
        assert mse(x, x.copy()) == 0.0

    def test_mse_known_value(self):
        a = np.zeros(4)
        b = np.full(4, 2.0)
        assert mse(a, b) == pytest.approx(4.0)
        assert rmse(a, b) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_nrmse_definition(self):
        """Eq. 12: RMSE over the original's value range."""
        x = np.array([0.0, 10.0])
        y = np.array([1.0, 10.0])
        expected = np.sqrt(0.5 * 1.0) / 10.0
        assert nrmse(x, y) == pytest.approx(expected)

    def test_nrmse_constant_data(self):
        x = np.full(5, 3.0)
        assert nrmse(x, x) == 0.0
        assert nrmse(x, x + 1) == np.inf

    def test_nrmse_scale_invariant(self):
        x = RNG.normal(size=(6, 6))
        y = x + RNG.normal(size=(6, 6)) * 0.1
        assert nrmse(x, y) == pytest.approx(nrmse(x * 100, y * 100))

    def test_psnr(self):
        x = np.array([0.0, 1.0])
        assert psnr(x, x) == np.inf
        y = np.array([0.1, 0.9])
        assert 0 < psnr(x, y) < np.inf
        # halving the error range raises PSNR
        z = np.array([0.05, 0.95])
        assert psnr(x, z) > psnr(x, y)


class TestAccounting:
    def test_ratio(self):
        acc = CompressionAccounting(original_bytes=1000, latent_bytes=80,
                                    guarantee_bytes=20)
        assert acc.compressed_bytes == 100
        assert acc.ratio == pytest.approx(10.0)

    def test_zero_compressed(self):
        acc = CompressionAccounting(100, 0, 0)
        assert acc.ratio == np.inf

    def test_addition(self):
        a = CompressionAccounting(100, 10, 5)
        b = CompressionAccounting(200, 20, 15)
        c = a + b
        assert c.original_bytes == 300
        assert c.latent_bytes == 30
        assert c.guarantee_bytes == 20

    def test_compression_ratio_helper(self):
        x = np.zeros((10, 10), dtype=np.float64)
        assert compression_ratio(x, 100) == pytest.approx(8.0)
        assert compression_ratio(x, 100, dtype_bytes=4) == pytest.approx(4.0)
        assert compression_ratio(x, 80, guarantee_bytes=20,
                                 dtype_bytes=4) == pytest.approx(4.0)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10_000))
def test_nrmse_nonnegative_and_bounded_property(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4, 4)) * rng.uniform(0.1, 100)
    y = x + rng.normal(size=(4, 4)) * rng.uniform(0, 1)
    v = nrmse(x, y)
    assert v >= 0
    assert np.isfinite(v)
