"""Unit tests for the layer/module system."""

import numpy as np
import pytest

from repro.nn import (Conv2d, ConvTranspose2d, GroupNorm, LayerNorm, Linear,
                      Module, ModuleList, Parameter, Sequential, SiLU, Tensor,
                      no_grad)
from repro.nn import serialization

from .util import check_gradients

RNG = np.random.default_rng(11)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(3)
        self.fc1 = Linear(4, 8, rng=rng)
        self.act = SiLU()
        self.fc2 = Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestModuleSystem:
    def test_named_parameters(self):
        net = TinyNet()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        net, net2 = TinyNet(), TinyNet()
        for p in net.parameters():
            p.data += 1.0
        net2.load_state_dict(net.state_dict())
        for (n1, p1), (n2, p2) in zip(net.named_parameters(),
                                      net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_strict_missing(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad(self):
        net = TinyNet()
        x = Tensor(RNG.normal(size=(3, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_sequential(self):
        rng = np.random.default_rng(5)
        seq = Sequential(Linear(3, 5, rng=rng), SiLU(), Linear(5, 2, rng=rng))
        assert len(seq) == 3
        y = seq(Tensor(RNG.normal(size=(4, 3))))
        assert y.shape == (4, 2)
        assert len(list(seq.named_parameters())) == 4

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(TinyNetHolder(ml).named_parameters())) == 4


class TinyNetHolder(Module):
    def __init__(self, ml):
        super().__init__()
        self.blocks = ml


class TestLayers:
    def test_linear_shapes(self):
        lin = Linear(6, 3, rng=np.random.default_rng(0))
        y = lin(Tensor(RNG.normal(size=(2, 5, 6))))
        assert y.shape == (2, 5, 3)

    def test_linear_gradcheck(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))

        def f(x, w, b):
            lin.weight.data = w.data
            lin.bias.data = b.data
            return lin(x)

        # direct functional check instead: y = x W^T + b
        check_gradients(
            lambda x, w, b: (x @ w.transpose()) + b,
            [RNG.normal(size=(5, 4)), RNG.normal(size=(3, 4)),
             RNG.normal(size=3)])

    def test_conv2d_module(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1,
                      rng=np.random.default_rng(0))
        y = conv(Tensor(RNG.normal(size=(2, 3, 8, 8))))
        assert y.shape == (2, 8, 4, 4)

    def test_conv_transpose_module(self):
        convt = ConvTranspose2d(8, 3, 3, stride=2, padding=1,
                                output_padding=1,
                                rng=np.random.default_rng(0))
        y = convt(Tensor(RNG.normal(size=(2, 8, 4, 4))))
        assert y.shape == (2, 3, 8, 8)

    def test_conv_roundtrip_shapes(self):
        """Encoder stride-2 stack then mirrored decoder restores shape."""
        rng = np.random.default_rng(0)
        enc = Sequential(Conv2d(1, 4, 3, stride=2, padding=1, rng=rng),
                         SiLU(),
                         Conv2d(4, 8, 3, stride=2, padding=1, rng=rng))
        dec = Sequential(ConvTranspose2d(8, 4, 3, stride=2, padding=1,
                                         output_padding=1, rng=rng),
                         SiLU(),
                         ConvTranspose2d(4, 1, 3, stride=2, padding=1,
                                         output_padding=1, rng=rng))
        x = Tensor(RNG.normal(size=(1, 1, 16, 16)))
        z = enc(x)
        assert z.shape == (1, 8, 4, 4)
        y = dec(z)
        assert y.shape == x.shape

    def test_groupnorm_statistics(self):
        gn = GroupNorm(2, 4)
        x = Tensor(RNG.normal(size=(3, 4, 5, 5)) * 10 + 3)
        y = gn(x).numpy()
        # per (batch, group) mean ~ 0, var ~ 1
        yg = y.reshape(3, 2, 2 * 25)
        np.testing.assert_allclose(yg.mean(axis=2), 0.0, atol=1e-6)
        np.testing.assert_allclose(yg.var(axis=2), 1.0, atol=1e-3)

    def test_groupnorm_invalid(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_groupnorm_gradcheck(self):
        gn = GroupNorm(2, 4)

        def f(x):
            return gn(x)

        check_gradients(f, [RNG.normal(size=(2, 4, 3, 3))], atol=1e-5)

    def test_layernorm(self):
        ln = LayerNorm(6)
        x = Tensor(RNG.normal(size=(4, 6)) * 5 + 1)
        y = ln(x).numpy()
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_gradcheck(self):
        ln = LayerNorm(5)
        check_gradients(lambda x: ln(x), [RNG.normal(size=(3, 5))],
                        atol=1e-5)


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        net = TinyNet()
        with no_grad():
            y = net(Tensor(RNG.normal(size=(2, 4))))
        assert not y.requires_grad
        assert y._backward is None

    def test_nested(self):
        from repro.nn import is_grad_enabled
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestSerialization:
    def test_file_roundtrip(self, tmp_path):
        net, net2 = TinyNet(), TinyNet()
        for p in net.parameters():
            p.data += RNG.normal(size=p.data.shape)
        path = tmp_path / "ckpt.npz"
        serialization.save_module(net, path)
        serialization.load_module(net2, path)
        for (_, p1), (_, p2) in zip(net.named_parameters(),
                                    net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_bytes_roundtrip(self):
        state = {"a": RNG.normal(size=(3, 3)), "b": np.arange(5.0)}
        blob = serialization.state_to_bytes(state)
        back = serialization.state_from_bytes(blob)
        assert set(back) == {"a", "b"}
        np.testing.assert_array_equal(back["a"], state["a"])
