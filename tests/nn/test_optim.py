"""Optimizer and LR-schedule tests."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter, Tensor
from repro.nn.optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm


def quadratic_param():
    return Parameter(np.array([3.0, -2.0]))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = quadratic_param()
            opt = SGD([p], lr=0.02, momentum=mom)
            for _ in range(50):
                opt.zero_grad()
                ((p * p).sum()).backward()
                opt.step()
            losses[mom] = float((p.data ** 2).sum())
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(4))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p.sum() * 0.0).backward()  # zero loss gradient
        opt.step()
        assert np.all(p.data < 1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((p * p).sum()).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = rng.normal(size=(3, 5))
        x = rng.normal(size=(64, 5))
        y = x @ true_w.T
        lin = Linear(5, 3, rng=rng)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            pred = lin(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2.0).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(lin.weight.data, true_w, atol=0.02)

    def test_skips_none_grads(self):
        p1, p2 = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([p1, p2], lr=0.1)
        (p1.sum()).backward()
        opt.step()
        np.testing.assert_array_equal(p2.data, np.ones(2))
        assert not np.allclose(p1.data, np.ones(2))


class TestSchedules:
    def test_steplr_halves(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = StepLR(opt, step_size=10, gamma=0.5)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.5)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_steplr_invalid(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            StepLR(Adam([p], lr=1.0), step_size=0)

    def test_cosine_endpoints(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0)
        sched = CosineLR(opt, total_steps=100, min_lr=0.1)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))  # monotone decay


class TestClipGradNorm:
    def test_clips(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)
