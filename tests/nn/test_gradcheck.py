"""Central-difference gradient checks for every autodiff op."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F

from .util import check_gradients

RNG = np.random.default_rng(7)


def arr(*shape):
    return RNG.normal(size=shape)


def pos(*shape):
    return RNG.uniform(0.5, 2.0, size=shape)


class TestElementwiseBinary:
    def test_add(self):
        check_gradients(F.add, [arr(3, 4), arr(3, 4)])

    def test_add_broadcast(self):
        check_gradients(F.add, [arr(3, 4), arr(4)])

    def test_add_broadcast_keepdim(self):
        check_gradients(F.add, [arr(3, 1, 5), arr(1, 4, 5)])

    def test_sub(self):
        check_gradients(F.sub, [arr(2, 3), arr(2, 3)])

    def test_mul(self):
        check_gradients(F.mul, [arr(3, 4), arr(3, 4)])

    def test_mul_broadcast_scalar_like(self):
        check_gradients(F.mul, [arr(3, 4), arr(1, 1)])

    def test_div(self):
        check_gradients(F.div, [arr(3, 4), pos(3, 4)])

    def test_div_broadcast(self):
        check_gradients(F.div, [arr(2, 3, 4), pos(4)])


class TestMatmul:
    def test_2d(self):
        check_gradients(F.matmul, [arr(3, 4), arr(4, 5)])

    def test_batched(self):
        check_gradients(F.matmul, [arr(2, 3, 4), arr(2, 4, 5)])

    def test_batched_broadcast(self):
        check_gradients(F.matmul, [arr(2, 3, 4), arr(4, 5)])

    def test_vec_rhs(self):
        check_gradients(F.matmul, [arr(3, 4), arr(4)])

    def test_vec_lhs(self):
        check_gradients(F.matmul, [arr(4), arr(4, 5)])


class TestUnary:
    @pytest.mark.parametrize("op,maker", [
        (F.exp, arr), (F.tanh, arr), (F.sigmoid, arr), (F.relu, arr),
        (F.silu, arr), (F.gelu, arr), (F.softplus, arr), (F.erf, arr),
        (F.neg, arr), (F.abs, arr),
        (F.log, pos), (F.sqrt, pos),
    ])
    def test_op(self, op, maker):
        x = maker(3, 5)
        if op in (F.relu, F.abs):
            # keep away from the kink
            x = x + np.sign(x) * 0.2
        check_gradients(op, [x])

    def test_leaky_relu(self):
        x = arr(4, 4)
        x = x + np.sign(x) * 0.2
        check_gradients(lambda t: F.leaky_relu(t, 0.1), [x])

    def test_pow(self):
        check_gradients(lambda t: t ** 3.0, [pos(3, 3)])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda t: F.sum(t), [arr(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda t: F.sum(t, axis=1), [arr(3, 4, 2)])

    def test_sum_keepdims(self):
        check_gradients(lambda t: F.sum(t, axis=(0, 2), keepdims=True),
                        [arr(3, 4, 2)])

    def test_mean_all(self):
        check_gradients(lambda t: F.mean(t), [arr(5, 2)])

    def test_mean_axis(self):
        check_gradients(lambda t: F.mean(t, axis=-1), [arr(3, 4)])

    def test_var(self):
        check_gradients(lambda t: F.var(t, axis=1), [arr(3, 6)])

    def test_var_keepdims(self):
        check_gradients(lambda t: F.var(t, axis=(1, 2), keepdims=True),
                        [arr(2, 3, 4)])

    def test_max(self):
        x = np.linspace(0, 1, 12).reshape(3, 4)  # unique values, no ties
        check_gradients(lambda t: F.max(t, axis=1), [x])

    def test_min(self):
        x = np.linspace(0, 1, 12).reshape(4, 3)
        check_gradients(lambda t: F.min(t, axis=0), [x])


class TestShape:
    def test_reshape(self):
        check_gradients(lambda t: F.reshape(t, (2, 6)), [arr(3, 4)])

    def test_transpose(self):
        check_gradients(lambda t: F.transpose(t, (2, 0, 1)), [arr(2, 3, 4)])

    def test_swapaxes(self):
        check_gradients(lambda t: F.swapaxes(t, 0, 2), [arr(2, 3, 4)])

    def test_broadcast_to(self):
        check_gradients(lambda t: F.reshape(t, (1, 4)) * np.ones((3, 4)),
                        [arr(4)])

    def test_concat(self):
        check_gradients(lambda a, b: F.concat([a, b], axis=1),
                        [arr(2, 3), arr(2, 4)])

    def test_stack(self):
        check_gradients(lambda a, b: F.stack([a, b], axis=0),
                        [arr(2, 3), arr(2, 3)])

    def test_split(self):
        check_gradients(lambda t: F.split(t, 2, axis=1)[0] * 2.0 +
                        F.split(t, 2, axis=1)[1],
                        [arr(3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda t: t[:, 1:3], [arr(3, 5)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda t: t[idx], [arr(4, 3)])

    def test_flip(self):
        check_gradients(lambda t: F.flip(t, axis=1), [arr(2, 5)])

    def test_pad_constant(self):
        check_gradients(lambda t: F.pad(t, [(1, 2), (0, 1)]), [arr(3, 4)])

    def test_pad_reflect(self):
        check_gradients(lambda t: F.pad(t, [(0, 0), (2, 1)], mode="reflect"),
                        [arr(3, 5)])

    def test_pad_reflect_2d(self):
        check_gradients(
            lambda t: F.pad(t, [(0, 0), (0, 0), (1, 2), (2, 1)],
                            mode="reflect"),
            [arr(1, 2, 4, 5)])


class TestComposite:
    def test_softmax(self):
        check_gradients(lambda t: F.softmax(t, axis=-1), [arr(3, 5)])

    def test_log_softmax(self):
        check_gradients(lambda t: F.log_softmax(t, axis=1), [arr(2, 4)])

    def test_clip(self):
        x = arr(4, 4) * 2
        x = x[np.abs(np.abs(x) - 1.0) > 0.1].reshape(-1)  # avoid boundary
        check_gradients(lambda t: F.clip(t, -1.0, 1.0), [x])

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        check_gradients(lambda a, b: F.where(cond, a, b),
                        [arr(3, 4), arr(3, 4)])

    def test_mse_loss(self):
        check_gradients(F.mse_loss, [arr(3, 4), arr(3, 4)],
                        weight=np.ones(()))

    def test_l1_loss(self):
        a, b = arr(3, 4), arr(3, 4)
        b = a + np.sign(b - a) * (np.abs(b - a) + 0.1)  # keep off the kink
        check_gradients(F.l1_loss, [a, b], weight=np.ones(()))


class TestConv:
    def test_conv2d_basic(self):
        check_gradients(
            lambda x, w: F.conv2d(x, w), [arr(2, 3, 6, 6), arr(4, 3, 3, 3)],
            atol=1e-5)

    def test_conv2d_stride_pad(self):
        check_gradients(
            lambda x, w: F.conv2d(x, w, stride=2, padding=1),
            [arr(1, 2, 7, 7), arr(3, 2, 3, 3)], atol=1e-5)

    def test_conv2d_bias(self):
        check_gradients(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [arr(1, 2, 5, 5), arr(2, 2, 3, 3), arr(2)], atol=1e-5)

    def test_conv2d_kernel1(self):
        check_gradients(
            lambda x, w: F.conv2d(x, w), [arr(2, 3, 4, 4), arr(5, 3, 1, 1)],
            atol=1e-5)

    def test_conv_transpose2d_basic(self):
        check_gradients(
            lambda x, w: F.conv_transpose2d(x, w),
            [arr(2, 3, 4, 4), arr(3, 2, 3, 3)], atol=1e-5)

    def test_conv_transpose2d_stride(self):
        check_gradients(
            lambda x, w, b: F.conv_transpose2d(x, w, b, stride=2, padding=1,
                                               output_padding=1),
            [arr(1, 2, 4, 4), arr(2, 3, 3, 3), arr(3)], atol=1e-5)

    def test_avg_pool(self):
        check_gradients(lambda x: F.avg_pool2d(x, 2), [arr(2, 3, 4, 6)])

    def test_upsample(self):
        check_gradients(lambda x: F.upsample_nearest2d(x, 2),
                        [arr(2, 3, 3, 3)])


class TestConvNumerics:
    """Cross-check conv forward values against a naive implementation."""

    def test_conv2d_matches_naive(self):
        x = arr(2, 3, 8, 8)
        w = arr(4, 3, 3, 3)
        stride, padding = 2, 1
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride,
                       padding=padding).numpy()
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                        (padding, padding)))
        B, _, Hp, Wp = xp.shape
        Ho = (Hp - 3) // stride + 1
        Wo = (Wp - 3) // stride + 1
        ref = np.zeros((B, 4, Ho, Wo))
        for b in range(B):
            for o in range(4):
                for i in range(Ho):
                    for j in range(Wo):
                        patch = xp[b, :, i * stride:i * stride + 3,
                                   j * stride:j * stride + 3]
                        ref[b, o, i, j] = (patch * w[o]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_conv_transpose_shape(self):
        x = Tensor(arr(1, 3, 5, 5))
        w = Tensor(arr(3, 2, 4, 4))
        y = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert y.shape == (1, 2, 10, 10)

    def test_conv_transpose_is_conv_adjoint(self):
        """<conv(x), y> == <x, convT(y)> for matching shapes."""
        x = arr(1, 2, 6, 6)
        w = arr(3, 2, 3, 3)  # conv weight (O=3, I=2)
        y = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).numpy()
        g = arr(*y.shape)
        lhs = float((y * g).sum())
        # conv_transpose2d with the same weight array (now read as
        # (Cin=3, Cout=2)) is exactly the adjoint map; output_padding
        # recovers the original 6x6 extent.
        xt = F.conv_transpose2d(Tensor(g), Tensor(w), stride=2, padding=1,
                                output_padding=1).numpy()
        rhs = float((x * xt).sum())
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)


class TestAttention:
    def test_sdpa_grad(self):
        check_gradients(
            F.scaled_dot_product_attention,
            [arr(2, 4, 3), arr(2, 4, 3), arr(2, 4, 3)], atol=1e-5)


class TestConvKernelDispatch:
    """Both conv kernels must carry correct gradients.

    The byte-budget heuristic is forced each way so the single-GEMM
    im2col kernel and the tap loop are each gradchecked explicitly,
    whatever the default dispatch would pick for these shapes.
    """

    def _check(self):
        check_gradients(
            lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
            [arr(2, 3, 7, 7), arr(4, 3, 3, 3), arr(4)], atol=1e-5)

    def test_conv2d_im2col_forced(self, monkeypatch):
        from repro.nn import conv as conv_mod
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 1 << 40)
        self._check()

    def test_conv2d_taps_forced(self, monkeypatch):
        from repro.nn import conv as conv_mod
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 0)
        self._check()


class TestGDNFused:
    """The fused GDN op's analytic backward against numeric gradients."""

    @pytest.mark.parametrize("inverse", [False, True])
    def test_gdn_fused(self, inverse):
        from repro.nn.gdn import _PEDESTAL, _gdn_apply
        C = 3
        beta_p = np.sqrt(RNG.uniform(0.5, 1.5, size=C) + _PEDESTAL)
        gamma_p = np.sqrt(RNG.uniform(0.05, 0.2, size=(C, C)) + _PEDESTAL)
        # bounds far below the drawn parameters: the straight-through
        # lower_bound mask stays smooth around the evaluation point
        check_gradients(
            lambda x, b, g: _gdn_apply(x, b, g, 1e-4, 1e-4, inverse),
            [arr(2, C, 4, 4), beta_p, gamma_p], atol=1e-5)

    def test_token_roundtrip_spatial(self):
        x = Tensor(arr(2, 3, 4, 2, 5))
        t = F.spatial_tokens(x)
        assert t.shape == (6, 10, 4)
        back = F.untokenize_spatial(t, x.shape)
        np.testing.assert_allclose(back.numpy(), x.numpy())

    def test_token_roundtrip_temporal(self):
        x = Tensor(arr(2, 3, 4, 2, 5))
        t = F.temporal_tokens(x)
        assert t.shape == (20, 3, 4)
        back = F.untokenize_temporal(t, x.shape)
        np.testing.assert_allclose(back.numpy(), x.numpy())

    def test_token_grads(self):
        check_gradients(
            lambda x: F.untokenize_temporal(
                F.temporal_tokens(x) * 2.0, (1, 3, 2, 2, 2)),
            [arr(1, 3, 2, 2, 2)])
