"""GDN / IGDN layer tests (forward semantics + gradient checks)."""

import numpy as np
import pytest

from repro.nn import GDN, Tensor
from repro.nn.optim import Adam

from .util import numeric_grad


def _x(b=2, c=3, h=4, w=4, seed=0):
    return np.random.default_rng(seed).standard_normal((b, c, h, w))


class TestGDNForward:
    def test_matches_reference_formula(self):
        """Layer output equals the explicit per-pixel formula."""
        x = _x()
        layer = GDN(3)
        out = layer(Tensor(x)).numpy()
        # effective parameters implied by the reparameterization
        beta = layer.beta.data ** 2 - 1e-6
        gamma = layer.gamma.data ** 2 - 1e-6
        norm = np.sqrt(beta[None, :, None, None]
                       + np.einsum("ij,bjhw->bihw", gamma, x ** 2))
        np.testing.assert_allclose(out, x / norm, atol=1e-10)

    def test_igdn_is_multiplicative(self):
        x = _x(seed=1)
        gdn = GDN(3, inverse=False)
        igdn = GDN(3, inverse=True)
        # fresh layers share the same init, so IGDN(GDN(x)) ≈ x only
        # when the norm is computed on the same input; instead verify
        # the defining relation: igdn(x) * gdn-norm == x * norm^2 ... or
        # simply that igdn(x) == x * norm where gdn(x) == x / norm.
        div = gdn(Tensor(x)).numpy()
        mul = igdn(Tensor(x)).numpy()
        np.testing.assert_allclose(mul * div, x * x, atol=1e-10)

    def test_initial_scale_is_contractive(self):
        """With beta=1, gamma=0.1 I the output magnitude shrinks."""
        x = _x(seed=2)
        out = GDN(3)(Tensor(x)).numpy()
        assert np.abs(out).sum() < np.abs(x).sum()

    def test_rejects_wrong_shapes(self):
        layer = GDN(3)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 4, 4, 4))))  # wrong channels
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((3, 4, 4))))     # wrong rank
        with pytest.raises(ValueError):
            GDN(0)
        with pytest.raises(ValueError):
            GDN(3, beta_min=0.0)

    def test_parameters_registered(self):
        layer = GDN(5)
        names = dict(layer.named_parameters())
        assert set(names) == {"beta", "gamma"}
        assert names["beta"].data.shape == (5,)
        assert names["gamma"].data.shape == (5, 5)


class TestGDNGradients:
    def _loss_fn(self, layer, w):
        def fn(x_raw, beta_raw, gamma_raw):
            layer.beta.data[...] = beta_raw
            layer.gamma.data[...] = gamma_raw
            out = layer(Tensor(x_raw))
            return float((out.numpy() * w).sum())
        return fn

    @pytest.mark.parametrize("inverse", [False, True])
    def test_gradcheck_input_and_params(self, inverse):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 3, 3))
        layer = GDN(3, inverse=inverse)
        # shift parameters strictly inside the lower_bound region: at the
        # boundary the straight-through gradient intentionally deviates
        # from the (kinked) numeric derivative
        layer.beta.data += 0.1
        layer.gamma.data += 0.1
        w = rng.standard_normal((2, 3, 3, 3))

        xt = Tensor(x, requires_grad=True)
        out = layer(xt)
        (out * Tensor(w)).sum().backward()

        fn = self._loss_fn(layer, w)
        args = [x, layer.beta.data.copy(), layer.gamma.data.copy()]
        np.testing.assert_allclose(xt.grad, numeric_grad(fn, args, 0),
                                   atol=1e-6, rtol=1e-4)
        np.testing.assert_allclose(layer.beta.grad,
                                   numeric_grad(fn, args, 1),
                                   atol=1e-6, rtol=1e-4)
        np.testing.assert_allclose(layer.gamma.grad,
                                   numeric_grad(fn, args, 2),
                                   atol=1e-6, rtol=1e-4)

    def test_trainable_end_to_end(self):
        """GDN params move under Adam and reduce a toy loss."""
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 3, 4, 4))
        target = 0.5 * x
        layer = GDN(3)
        opt = Adam(layer.parameters(), lr=1e-2)
        losses = []
        for _ in range(25):
            out = layer(Tensor(x))
            loss = ((out - Tensor(target)) * (out - Tensor(target))).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]


class TestGDNInVAE:
    def test_vae_config_accepts_gdn(self):
        from repro.compression import VAEHyperprior
        from repro.config import VAEConfig
        cfg = VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                        hyper_filters=4, kernel_size=3, activation="gdn")
        vae = VAEHyperprior(cfg, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 1, 16, 16))
        out = vae(Tensor(x))
        assert out.x_hat.shape == x.shape
        assert np.isfinite(out.total_bits.item())
        # GDN layers actually present
        from repro.nn import GDN as _GDN
        assert any(isinstance(m, _GDN) for m in vae.encoder.modules())
        assert any(isinstance(m, _GDN) and m.inverse
                   for m in vae.decoder.modules())

    def test_vae_config_rejects_unknown_activation(self):
        from repro.config import VAEConfig
        with pytest.raises(ValueError):
            VAEConfig(activation="relu6")

    def test_gdn_vae_trains_one_step(self):
        from repro.compression import RDLoss, VAEHyperprior
        from repro.config import VAEConfig
        cfg = VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                        hyper_filters=4, kernel_size=3, activation="gdn")
        rng = np.random.default_rng(2)
        vae = VAEHyperprior(cfg, rng=rng)
        opt = Adam(vae.parameters(), lr=1e-3)
        x = Tensor(rng.standard_normal((2, 1, 16, 16)))
        vae.train()
        out = vae(x, rng=rng)
        res = RDLoss(lam=1e-6)(x, out)
        opt.zero_grad()
        res.loss.backward()
        opt.step()
        assert np.isfinite(res.loss.item())