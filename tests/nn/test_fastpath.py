"""Inference fast path: bitwise equivalence, dispatch, profiler.

The contract under test (see ``repro.nn.fastpath``): for a fixed
fast-path switch state, a module's ``no_grad`` forward must be
**bitwise** equal to its grad-mode forward — the fused kernels mirror
the autodiff op chains numpy-call for numpy-call.  The im2col and
tap-loop conv kernels are *different* summation orders, so comparisons
across the dispatch boundary (fast vs ``fastpath.disabled()``) use
``allclose`` instead.
"""

import numpy as np
import pytest

from repro.config import DiffusionConfig, VAEConfig
from repro.diffusion import ConditionalDDPM, keyframe_spec
from repro.diffusion.sampler import (_init_window, _init_windows_batched,
                                     ancestral_sample,
                                     ancestral_sample_batched, ddim_sample,
                                     ddim_sample_batched,
                                     generate_latents_batched)
from repro.nn import (GDN, Conv2d, ConvTranspose2d, GroupNorm, LayerNorm,
                      Linear, Sequential, SiLU, Tanh, Tensor, fastpath,
                      no_grad)
from repro.nn import conv as conv_mod
from repro.nn import profile as nn_profile
from repro.nn.attention import scaled_dot_product_attention

RNG = np.random.default_rng(42)


def arr(*shape):
    return RNG.normal(size=shape)


def _grad_vs_nograd(module, x):
    """Forward ``x`` in grad mode and under ``no_grad``; return both."""
    y_grad = module(Tensor(x)).numpy()
    with no_grad():
        y_fast = module(Tensor(x)).numpy()
    return y_grad, y_fast


class TestModuleEquivalence:
    """no_grad forwards are bitwise equal to grad-mode forwards."""

    @pytest.mark.parametrize("module,shape", [
        (Linear(6, 4, rng=np.random.default_rng(0)), (3, 6)),
        (Conv2d(3, 5, 3, padding=1, rng=np.random.default_rng(1)),
         (2, 3, 8, 8)),
        (Conv2d(3, 5, 3, stride=2, padding=1, rng=np.random.default_rng(2)),
         (2, 3, 9, 9)),
        (Conv2d(3, 5, 1, rng=np.random.default_rng(3)), (2, 3, 6, 6)),
        (ConvTranspose2d(4, 2, 4, stride=2, padding=1,
                         rng=np.random.default_rng(4)), (2, 4, 5, 5)),
        (GroupNorm(2, 6), (2, 6, 4, 4)),
        (LayerNorm(7), (3, 5, 7)),
        (SiLU(), (3, 4)),
        (Tanh(), (3, 4)),
        (GDN(4), (2, 4, 5, 5)),
        (GDN(4, inverse=True), (2, 4, 5, 5)),
        (Sequential(Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(5)),
                    SiLU(),
                    Conv2d(4, 2, 3, padding=1, rng=np.random.default_rng(6))),
         (2, 2, 6, 6)),
    ], ids=["linear", "conv", "conv-stride", "conv-1x1", "convT",
            "groupnorm", "layernorm", "silu", "tanh", "gdn", "igdn",
            "sequential-fused"])
    def test_bitwise(self, module, shape):
        x = arr(*shape)
        y_grad, y_fast = _grad_vs_nograd(module, x)
        np.testing.assert_array_equal(y_grad, y_fast)

    def test_sdpa_bitwise(self):
        q, k, v = arr(2, 5, 3), arr(2, 5, 3), arr(2, 5, 3)
        y_grad = scaled_dot_product_attention(
            Tensor(q, requires_grad=True), Tensor(k), Tensor(v)).numpy()
        with no_grad():
            y_fast = scaled_dot_product_attention(
                Tensor(q), Tensor(k), Tensor(v)).numpy()
        np.testing.assert_array_equal(y_grad, y_fast)

    def test_unet_bitwise(self):
        cfg = DiffusionConfig(latent_channels=2, base_channels=4,
                              channel_mults=(1, 2), time_embed_dim=8,
                              num_frames=4, train_steps=8, finetune_steps=2,
                              num_groups=2)
        model = ConditionalDDPM(cfg, rng=np.random.default_rng(0))
        x = arr(2, 4, 2, 4, 4)
        y_grad = model.unet(Tensor(x), 3).numpy()
        with no_grad():
            y_fast = model.unet(Tensor(x), 3).numpy()
        np.testing.assert_array_equal(y_grad, y_fast)

    def test_vae_fast_vs_disabled(self):
        """Fast VAE transforms match the legacy path to rounding.

        Crossing the dispatch boundary changes the conv kernel (im2col
        vs tap loop), so this is allclose, not bitwise; the quantized
        latents must still agree exactly.
        """
        from repro.compression import VAEHyperprior
        cfg = VAEConfig(latent_channels=2, base_filters=4, hyper_filters=4)
        vae = VAEHyperprior(cfg, rng=np.random.default_rng(0))
        x = arr(3, 1, 8, 8)
        y_fast = vae.encode_latents(x)
        dec_fast = vae.decode_latents(y_fast)
        with fastpath.disabled():
            y_legacy = vae.encode_latents(x)
            dec_legacy = vae.decode_latents(y_legacy)
        np.testing.assert_array_equal(y_fast, y_legacy)
        np.testing.assert_allclose(dec_fast, dec_legacy, atol=1e-12)


class TestSwitch:
    def test_active_requires_no_grad(self):
        assert not fastpath.active()  # grad enabled by default
        with no_grad():
            assert fastpath.active()
            with fastpath.disabled():
                assert not fastpath.active()
            assert fastpath.active()

    def test_disabled_nests_and_restores(self):
        assert fastpath.is_enabled()
        with fastpath.disabled():
            assert not fastpath.is_enabled()
            with fastpath.disabled():
                assert not fastpath.is_enabled()
            assert not fastpath.is_enabled()
        assert fastpath.is_enabled()


class TestConvDispatch:
    def test_im2col_matches_taps(self, monkeypatch):
        x, w = arr(2, 3, 7, 7), arr(4, 3, 3, 3)
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 1 << 40)
        y_im2col = conv_mod._conv2d_forward(x, w, stride=2, padding=1)
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 0)
        y_taps = conv_mod._conv2d_forward(x, w, stride=2, padding=1)
        np.testing.assert_allclose(y_im2col, y_taps, atol=1e-12)

    def test_disabled_forces_taps(self, monkeypatch):
        """The byte budget is ignored when the fast path is off."""
        calls = []
        orig = conv_mod._conv2d_forward_taps
        monkeypatch.setattr(
            conv_mod, "_conv2d_forward_taps",
            lambda *a, **k: calls.append(1) or orig(*a, **k))
        with fastpath.disabled():
            conv_mod._conv2d_forward(arr(1, 2, 5, 5), arr(3, 2, 3, 3), 1, 1)
        assert calls

    def test_1x1_skips_im2col(self):
        assert not conv_mod._use_im2col(2, 3, 4, 4, 1, 1, 8)

    def test_grad_weight_im2col_matches_taps(self, monkeypatch):
        x, g = arr(2, 3, 6, 6), arr(2, 4, 6, 6)
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 1 << 40)
        dw_im2col = conv_mod._conv2d_grad_weight(x, g, 1, 1, (3, 3))
        monkeypatch.setattr(conv_mod, "IM2COL_MAX_BYTES", 0)
        dw_taps = conv_mod._conv2d_grad_weight(x, g, 1, 1, (3, 3))
        np.testing.assert_allclose(dw_im2col, dw_taps, atol=1e-12)


class TestEinsumCache:
    def test_matches_plain_einsum(self):
        a, b = arr(3, 4, 5, 5), arr(2, 4)
        out = conv_mod.cached_einsum("bchw,oc->bohw", a, b)
        # the planned contraction may sum in a different order than the
        # naive einsum loop, so this is a value check, not a bitwise one
        np.testing.assert_allclose(
            out, np.einsum("bchw,oc->bohw", a, b), atol=1e-12)

    def test_path_cached_per_signature(self, monkeypatch):
        monkeypatch.setattr(conv_mod, "_EINSUM_PATHS", {})
        a, b = arr(2, 3, 4, 4), arr(5, 3)
        conv_mod.cached_einsum("bchw,oc->bohw", a, b)
        assert len(conv_mod._EINSUM_PATHS) == 1
        conv_mod.cached_einsum("bchw,oc->bohw", a, b)       # same signature
        assert len(conv_mod._EINSUM_PATHS) == 1
        conv_mod.cached_einsum("bchw,oc->bohw", arr(2, 3, 6, 6), b)
        assert len(conv_mod._EINSUM_PATHS) == 2             # new shape


class TestPadKernel:
    def test_pad2d_matches_np_pad(self):
        x = arr(2, 3, 5, 4)
        np.testing.assert_array_equal(
            conv_mod._pad2d(x, 2),
            np.pad(x, ((0, 0), (0, 0), (2, 2), (2, 2))))


class TestProfiler:
    def test_records_kernels_and_restores(self):
        module = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))
        x = arr(1, 2, 6, 6)
        with nn_profile.profile() as prof:
            with no_grad():
                module(Tensor(x))
        assert prof.stats["conv2d.forward"].calls == 1
        assert prof.stats["fastpath.conv2d"].calls == 1
        assert prof.stats["conv2d.forward"].seconds >= 0.0
        assert prof.stats["conv2d.forward"].peak_bytes == 3 * 6 * 6 * 8
        # patches removed once the outermost profiler exits
        assert not hasattr(fastpath.conv2d, "__wrapped__")
        assert not hasattr(conv_mod._conv2d_forward, "__wrapped__")

    def test_records_grad_mode_op_census(self):
        module = Linear(4, 3, rng=np.random.default_rng(0))
        with nn_profile.profile() as prof:
            module(Tensor(arr(2, 4), requires_grad=True))
        # grad mode routes through Tensor._from_op: op names show up
        assert any(s.calls for name, s in prof.stats.items()
                   if name in ("matmul", "linear", "add"))

    def test_nested_profilers_both_record(self):
        module = SiLU()
        with nn_profile.profile() as outer:
            with no_grad():
                module(Tensor(arr(2, 2)))
                with nn_profile.profile() as inner:
                    module(Tensor(arr(2, 2)))
        assert outer.stats["fastpath.silu"].calls == 2
        assert inner.stats["fastpath.silu"].calls == 1

    def test_module_report_and_top(self):
        with nn_profile.profile():
            with no_grad():
                SiLU()(Tensor(arr(2, 2)))
        table = nn_profile.report()
        assert "fastpath.silu" in table
        rows = nn_profile.top(3)
        assert rows and all(
            {"op", "calls", "seconds", "peak_bytes"} <= set(r) for r in rows)

    def test_table_sorted_by_seconds(self):
        prof = nn_profile.OpProfiler()
        prof.record("cheap", 0.001, 10)
        prof.record("hot", 0.5, 20)
        assert [name for name, _ in prof.sorted_items()] == ["hot", "cheap"]


def _small_model():
    cfg = DiffusionConfig(latent_channels=2, base_channels=4,
                          channel_mults=(1, 2), time_embed_dim=8,
                          num_frames=4, train_steps=6, finetune_steps=2,
                          num_groups=2)
    return ConditionalDDPM(cfg, rng=np.random.default_rng(0))


def _cond_windows(n_win=3, n=4, c=2, h=4, w=4, seed=5):
    return np.random.default_rng(seed).normal(size=(n_win, n, c, h, w))


class TestBatchedSampler:
    """Stacked-window sampling vs the sequential per-window loops.

    The noise streams are bitwise identical (one generator per window,
    drawn in the sequential order); the chains agree to BLAS rounding —
    GEMM summation order depends on the batch extent — so the
    comparisons use a tight allclose rather than array_equal.
    """

    def test_init_windows_bitwise(self):
        spec = keyframe_spec(4, "interpolation", interval=3)
        cond = _cond_windows()
        batched = _init_windows_batched(
            cond, spec, [np.random.default_rng(100 + b) for b in range(3)])
        for b in range(3):
            seq = _init_window(cond[b:b + 1], spec,
                               np.random.default_rng(100 + b))
            np.testing.assert_array_equal(batched[b], seq[0])

    def test_ancestral_matches_sequential(self):
        model = _small_model()
        spec = keyframe_spec(4, "interpolation", interval=3)
        cond = _cond_windows()
        batched = ancestral_sample_batched(
            model, cond, spec,
            [np.random.default_rng(7 + b) for b in range(3)])
        for b in range(3):
            seq = ancestral_sample(model, cond[b:b + 1], spec,
                                   rng=np.random.default_rng(7 + b))
            np.testing.assert_allclose(batched[b], seq[0],
                                       rtol=0, atol=1e-10)

    def test_ddim_matches_sequential(self):
        model = _small_model()
        spec = keyframe_spec(4, "interpolation", interval=3)
        cond = _cond_windows(seed=9)
        batched = ddim_sample_batched(
            model, cond, spec, steps=4,
            rngs=[np.random.default_rng(20 + b) for b in range(3)])
        for b in range(3):
            seq = ddim_sample(model, cond[b:b + 1], spec, steps=4,
                              rng=np.random.default_rng(20 + b))
            np.testing.assert_allclose(batched[b], seq[0],
                                       rtol=0, atol=1e-10)

    def test_dpm_fallback_is_sequential(self):
        """Samplers without a batched form concatenate per-window runs."""
        from repro.diffusion.sampler import generate_latents
        model = _small_model()
        spec = keyframe_spec(4, "interpolation", interval=3)
        cond = _cond_windows(n_win=2, seed=11)
        batched = generate_latents_batched(
            model, cond, spec, sampler="dpm", steps=3,
            rngs=[np.random.default_rng(30 + b) for b in range(2)])
        for b in range(2):
            seq = generate_latents(model, cond[b:b + 1], spec, sampler="dpm",
                                   steps=3, rng=np.random.default_rng(30 + b))
            np.testing.assert_array_equal(batched[b], seq[0])

    def test_rng_count_validated(self):
        model = _small_model()
        spec = keyframe_spec(4, "interpolation", interval=3)
        with pytest.raises(ValueError):
            ancestral_sample_batched(model, _cond_windows(), spec,
                                     [np.random.default_rng(0)])

    def test_posterior_step_none_noise_is_mean(self):
        model = _small_model()
        sched = model.schedule
        y = arr(1, 4, 2, 4, 4)
        eps = arr(1, 4, 2, 4, 4)
        np.testing.assert_array_equal(
            sched.posterior_step(y, 1, eps, None),
            sched.posterior_step(y, 1, eps, np.zeros_like(y)))
