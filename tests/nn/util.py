"""Shared gradient-checking helpers for the nn test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn: Callable[..., float], arrays: Sequence[np.ndarray],
                 index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``arrays[index]``.

    ``fn`` receives raw numpy arrays and must return a float.
    """
    base = [a.copy() for a in arrays]
    target = base[index]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(*base)
        flat[i] = orig - eps
        down = fn(*base)
        flat[i] = orig
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(op: Callable[..., "Tensor"], arrays: Sequence[np.ndarray],
                    atol: float = 1e-6, rtol: float = 1e-5,
                    weight: np.ndarray = None) -> None:
    """Assert autodiff grads of ``sum(weight * op(*xs))`` match numerics.

    A random ``weight`` avoids the degenerate case where a uniform
    output gradient hides transposition/permutation bugs.
    """
    rng = np.random.default_rng(1234)
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = op(*tensors)
    w = weight if weight is not None else rng.normal(size=out.shape)

    loss = (out * Tensor(w)).sum()
    loss.backward()

    def scalar_fn(*raw):
        ts = [Tensor(r) for r in raw]
        val = op(*ts)
        return float((val.data * w).sum())

    for i, t in enumerate(tensors):
        expected = numeric_grad(scalar_fn, arrays, i)
        assert t.grad is not None, f"missing grad for arg {i} of {op}"
        np.testing.assert_allclose(
            t.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for arg {i} of {op}")
