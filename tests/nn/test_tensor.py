"""Tensor core semantics: graph mechanics, broadcasting, lifecycle."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad, unbroadcast
from repro.nn import functional as F


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_unwraps_tensor(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.numpy(), b.numpy())

    def test_item(self):
        assert Tensor(3.5).item() == 3.5
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)


class TestBackwardMechanics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        y = t * 2.0
        with pytest.raises(ValueError):
            y.backward()
        y.backward(np.ones(3))
        np.testing.assert_array_equal(t.grad, [2.0, 2.0, 2.0])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [6.0, 6.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t.sum()).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self):
        """A value consumed twice receives summed gradients."""
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        y = a + a
        y.backward(np.ones(1))
        np.testing.assert_array_equal(t.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.ones(2), requires_grad=True)
        y = t
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 1.0])

    def test_unused_branch_gets_no_grad_contribution(self):
        t = Tensor(np.ones(4), requires_grad=True)
        a, b = F.split(t, 2, axis=0)
        a.sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 1.0, 0.0, 0.0])

    def test_leaf_without_requires_grad_gets_none(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2))  # constant
        (a * b).sum().backward()
        assert b.grad is None
        assert a.grad is not None

    def test_detach_stops_gradient(self):
        a = Tensor(np.ones(2), requires_grad=True)
        y = (a * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_copy_independent(self):
        a = Tensor(np.ones(2), requires_grad=True)
        c = a.copy()
        c.data[0] = 5.0
        assert a.data[0] == 1.0
        assert c.requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_prepended_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_array_equal(unbroadcast(g, (3,)), [2.0, 2.0, 2.0])

    def test_stretched_axis(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_array_equal(out[:, 0], [4.0, 4.0, 4.0])

    def test_combined(self):
        g = np.ones((5, 3, 4))
        out = unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        np.testing.assert_array_equal(out[0], [15.0] * 4)


class TestNoGrad:
    def test_ops_inside_no_grad_are_constants(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = a * 2.0 + 1.0
        assert not y.requires_grad
        assert y._backward is None

    def test_tensor_created_inside_no_grad(self):
        with no_grad():
            t = Tensor(np.ones(2), requires_grad=True)
        assert not t.requires_grad

    def test_parameter_overrides_no_grad(self):
        from repro.nn import Parameter
        with no_grad():
            p = Parameter(np.ones(2))
        assert p.requires_grad


class TestOperatorSugar:
    def test_arith_dunders(self):
        a = Tensor(np.array([4.0]))
        assert (a + 1).item() == 5.0
        assert (1 + a).item() == 5.0
        assert (a - 1).item() == 3.0
        assert (1 - a).item() == -3.0
        assert (a * 2).item() == 8.0
        assert (2 * a).item() == 8.0
        assert (a / 2).item() == 2.0
        assert (8 / a).item() == 2.0
        assert (-a).item() == -4.0
        assert (a ** 2).item() == 16.0

    def test_matmul_dunder(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0], [2.0]]))
        np.testing.assert_array_equal((a @ b).numpy(), [[1.0], [2.0]])

    def test_method_sugar(self):
        t = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert t.sum().item() == 10.0
        assert t.mean().item() == 2.5
        assert t.max().item() == 4.0
        assert t.min().item() == 1.0
        assert t.reshape(4).shape == (4,)
        assert t.transpose().shape == (2, 2)
        assert t.exp().shape == (2, 2)
        assert t.clip(2.0, 3.0).numpy().max() == 3.0
