"""The documented quickstarts must execute.

Runs the doctest examples embedded in ``repro/__init__.py`` and
``repro/api.py``, and executes every ``python`` code block of the
README (quickstart, bound, migration-free training examples) in one
shared namespace — so the docs can never drift from the API again.
CI runs this module as the dedicated doctest job.
"""

import doctest
import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text: str):
    """Every ```python fenced block, in document order."""
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_init_docstring_examples():
    import repro
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_api_docstring_examples():
    import repro.api
    results = doctest.testmod(repro.api, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_readme_python_blocks_execute(tmp_path, monkeypatch):
    """The README's python examples run top to bottom, for real."""
    monkeypatch.chdir(tmp_path)  # examples write small scratch files
    blocks = _python_blocks(README.read_text())
    assert len(blocks) >= 3, "README lost its python examples"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"),
                 namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            pytest.fail(f"README block {i} failed: {exc}\n---\n{block}")
