"""CLI surface of the seekable-archive work: ``decompress --select``,
``compress --chunk-shards`` and the ``info`` index table."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_select")
    rng = np.random.default_rng(4)
    frames = np.cumsum(rng.standard_normal((24, 8, 8)), axis=0)
    data = root / "stack.npy"
    np.save(data, frames)
    archive = root / "stack.shrd"
    rc = main(["compress", "-", str(data), str(archive),
               "--codec", "szlike", "--nrmse-bound", "1e-3",
               "--shards", "4", "--executor", "serial"])
    assert rc == 0
    out = root / "full.npy"
    assert main(["decompress", "-", str(archive), str(out)]) == 0
    return root, data, archive, np.load(out)


class TestDecompressSelect:
    def test_time_range(self, workspace, tmp_path):
        root, _, archive, full = workspace
        out = tmp_path / "window.npy"
        rc = main(["decompress", "-", str(archive), str(out),
                   "--select", "5:17"])
        assert rc == 0
        np.testing.assert_array_equal(np.load(out), full[5:17])

    def test_shard_id(self, workspace, tmp_path, capsys):
        root, _, archive, full = workspace
        out = tmp_path / "shard.npy"
        rc = main(["decompress", "-", str(archive), str(out),
                   "--select", "stack/v0/t0006-0012"])
        assert rc == 0
        assert "(partial)" in capsys.readouterr().out
        np.testing.assert_array_equal(np.load(out), full[6:12])

    def test_repeated_selects_union(self, workspace, tmp_path):
        root, _, archive, full = workspace
        out = tmp_path / "union.npy"
        rc = main(["decompress", "-", str(archive), str(out),
                   "--select", "stack/v0/t0000-0006",
                   "--select", "stack/v0/t0006-0012"])
        assert rc == 0
        np.testing.assert_array_equal(np.load(out), full[:12])

    def test_variable_number(self, workspace, tmp_path):
        root, _, archive, full = workspace
        out = tmp_path / "var.npy"
        rc = main(["decompress", "-", str(archive), str(out),
                   "--select", "0"])
        assert rc == 0
        np.testing.assert_array_equal(np.load(out), full)

    def test_bad_range_is_user_error(self, workspace, tmp_path):
        _, _, archive, _ = workspace
        out = tmp_path / "x.npy"
        assert main(["decompress", "-", str(archive), str(out),
                     "--select", "a:b"]) == 2
        assert main(["decompress", "-", str(archive), str(out),
                     "--select", "no/such/shard"]) == 2


class TestInfoIndex:
    def test_info_prints_index_table(self, workspace, capsys):
        _, _, archive, _ = workspace
        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "seekable footer index" in out
        assert "crc=" in out
        assert "stack/v0/t0000-0006" in out


class TestCompressChunked:
    def test_chunked_cli_is_byte_identical(self, workspace, tmp_path):
        _, data, archive, _ = workspace
        chunked = tmp_path / "chunked.shrd"
        rc = main(["compress", "-", str(data), str(chunked),
                   "--codec", "szlike", "--nrmse-bound", "1e-3",
                   "--shards", "4", "--chunk-shards", "2",
                   "--executor", "serial"])
        assert rc == 0
        assert chunked.read_bytes() == archive.read_bytes()
