"""The shared LRU helper every cache wrapper stands on."""

import threading

import pytest

from repro.util import LRUCache


class TestBounds:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError, match="max_entries must be >= 1"):
            LRUCache(max_entries=0)

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError, match="max_bytes must be >= 1"):
            LRUCache(max_bytes=0)

    def test_unbounded_by_default(self):
        cache = LRUCache()
        for i in range(1000):
            cache.put(i, i, nbytes=10)
        assert len(cache) == 1000
        assert cache.bytes == 10_000

    def test_entry_bound_evicts_lru(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert "b" not in cache
        assert cache.peek("a") == 1 and cache.peek("c") == 3

    def test_byte_bound_evicts_lru(self):
        cache = LRUCache(max_bytes=100)
        cache.put("a", "x", nbytes=60)
        cache.put("b", "y", nbytes=60)  # 120 > 100: a goes
        assert "a" not in cache and "b" in cache
        assert cache.bytes == 60

    def test_oversized_insert_survives_alone(self):
        cache = LRUCache(max_bytes=100)
        cache.put("a", "x", nbytes=10)
        cache.put("big", "y", nbytes=400)
        assert len(cache) == 1 and "big" in cache
        assert cache.stats()["bytes"] == 400

    def test_replace_updates_bytes(self):
        cache = LRUCache(max_bytes=1000)
        cache.put("a", "x", nbytes=100)
        cache.put("a", "y", nbytes=30)
        assert cache.bytes == 30 and len(cache) == 1


class TestCounters:
    def test_get_counts_peek_does_not(self):
        cache = LRUCache()
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.peek("a") == 1
        assert cache.peek("missing", "dflt") == "dflt"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_counters_survive_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["bytes"] == 0


class TestGetOrBuild:
    def test_builds_once_then_hits(self):
        cache = LRUCache(max_entries=4)
        built = []

        def build():
            built.append(1)
            return object()

        a = cache.get_or_build("k", build)
        b = cache.get_or_build("k", build)
        assert a is b
        assert built == [1]
        assert cache.stats() == {"hits": 1, "misses": 1,
                                 "entries": 1, "bytes": 0}

    def test_nbytes_callable(self):
        cache = LRUCache(max_bytes=1000)
        cache.get_or_build("k", lambda: b"xxxx", nbytes=len)
        assert cache.stats()["bytes"] == 4


class TestEvictionCallback:
    def test_fires_only_on_bound_eviction(self):
        evicted = []
        cache = LRUCache(max_entries=1,
                         on_evict=lambda k, v, n: evicted.append((k, v, n)))
        cache.put("a", "A", nbytes=5)
        cache.put("b", "B", nbytes=7)   # bound-evicts a
        assert evicted == [("a", "A", 5)]
        assert cache.pop("b") == "B"    # explicit pop: no callback
        assert evicted == [("a", "A", 5)]
        cache.put("c", "C")
        cache.clear()                   # clear: no callback
        assert evicted == [("a", "A", 5)]

    def test_pop_missing_returns_default(self):
        cache = LRUCache()
        assert cache.pop("nope", 42) == 42


class TestThreadSafety:
    def test_concurrent_mixed_ops(self):
        cache = LRUCache(max_entries=8, max_bytes=10_000)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = (tid + i) % 12
                    cache.get_or_build(key, lambda: key, nbytes=lambda v: 10)
                    cache.get(key)
                    if i % 50 == 0:
                        cache.pop(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        assert cache.bytes <= 10_000

    def test_public_lock_compound_op(self):
        cache = LRUCache()
        cache.put("a", 1)
        with cache.lock:
            assert "a" in cache
            cache.touch("a")
            cache.hits += 1
        assert cache.stats()["hits"] == 1
