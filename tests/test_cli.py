"""CLI and model-bundle persistence tests."""

import numpy as np
import pytest

from repro import nrmse
from repro.cli import load_bundle, main, save_bundle
from repro.data import E3SMSynthetic


@pytest.fixture(scope="module")
def workspace(tmp_path_factory, trained_cli):
    return trained_cli


@pytest.fixture(scope="module")
def trained_cli(tmp_path_factory):
    """Train once through the CLI itself; reuse for all CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    frames = E3SMSynthetic(t=24, h=16, w=16, seed=2).frames(0)
    data = root / "frames.npy"
    np.save(data, frames)
    model = root / "model.npz"
    rc = main(["train", str(data), str(model), "--preset", "tiny",
               "--vae-iters", "120", "--diffusion-iters", "200",
               "--stride", "2"])
    assert rc == 0
    return root, data, model, frames


class TestTrainCompressDecompress:
    def test_bundle_exists(self, trained_cli):
        _, _, model, _ = trained_cli
        assert model.exists()

    def test_compress_decompress_roundtrip(self, trained_cli, capsys):
        root, data, model, frames = trained_cli
        stream = root / "frames.ldc"
        rc = main(["compress", str(model), str(data), str(stream),
                   "--nrmse-bound", "0.05"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "ratio=" in printed and "nrmse=" in printed

        out = root / "restored.npy"
        rc = main(["decompress", str(model), str(stream), str(out)])
        assert rc == 0
        restored = np.load(out)
        assert restored.shape == frames.shape
        assert nrmse(frames, restored) <= 0.05 * (1 + 1e-9)

    def test_info(self, trained_cli, capsys):
        root, data, model, _ = trained_cli
        stream = root / "info.ldc"
        main(["compress", str(model), str(data), str(stream)])
        capsys.readouterr()
        rc = main(["info", str(stream)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latent (L)" in out
        assert "guarantee (G)" in out

    def test_train_rejects_bad_shape(self, tmp_path):
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros((4, 4)))
        rc = main(["train", str(bad), str(tmp_path / "m.npz")])
        assert rc == 2


class TestBundleRoundtrip:
    def test_bundle_preserves_behaviour(self, trained_cli, tmp_path):
        root, data, model, frames = trained_cli
        comp = load_bundle(model)
        res1 = comp.compress(frames, noise_seed=5)
        path2 = tmp_path / "again.npz"
        save_bundle(path2, comp)
        comp2 = load_bundle(path2)
        res2 = comp2.compress(frames, noise_seed=5)
        np.testing.assert_allclose(res1.reconstruction,
                                   res2.reconstruction, atol=1e-12)
        assert res1.blob.to_bytes() == res2.blob.to_bytes()

    def test_bundle_keeps_corrector(self, trained_cli):
        _, _, model, frames = trained_cli
        comp = load_bundle(model)
        assert comp.corrector is not None
        res = comp.compress(frames, nrmse_bound=0.05)
        assert res.achieved_nrmse <= 0.05 * (1 + 1e-9)

    def test_bundle_keeps_schedule(self, trained_cli):
        _, _, model, _ = trained_cli
        comp = load_bundle(model)
        assert comp.ddpm.schedule.steps == comp.ddpm.cfg.train_steps
