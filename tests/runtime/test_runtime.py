"""TaskRuntime: modes, ordering, retry, events, pump workers."""

import threading
import time

import pytest

from repro.runtime import Task, TaskRuntime, default_workers


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class _Flaky:
    """Callable failing the first ``fails`` calls per payload.

    Thread-backed runtimes share this object; process mode cannot (the
    failure count must be observed by the parent), so retry tests run
    on serial/thread.
    """

    def __init__(self, fails):
        self.fails = fails
        self.calls = {}
        self.lock = threading.Lock()

    def __call__(self, x):
        with self.lock:
            n = self.calls.get(x, 0)
            self.calls[x] = n + 1
        if n < self.fails:
            raise RuntimeError(f"flaky {x} attempt {n}")
        return x * 10


class TestModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown runtime mode"):
            TaskRuntime(mode="quantum")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            TaskRuntime(max_workers=0)

    def test_default_workers(self):
        assert TaskRuntime().max_workers == default_workers()

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_map_ordered(self, mode):
        with TaskRuntime(mode=mode, max_workers=2) as rt:
            assert rt.map(_square, range(10)) == [x * x for x in range(10)]

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_map_accepts_lambdas(self, mode):
        with TaskRuntime(mode=mode, max_workers=4) as rt:
            assert rt.map(lambda x: x + 1, range(5)) == list(range(1, 6))

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_exceptions_propagate(self, mode):
        with TaskRuntime(mode=mode, max_workers=2) as rt:
            with pytest.raises(RuntimeError, match="boom"):
                rt.map(_boom, [1])

    def test_empty_batch(self):
        with TaskRuntime(mode="thread") as rt:
            assert rt.run([]) == []
            assert rt.map(_square, []) == []


class TestRun:
    def test_outcomes_in_task_order(self):
        tasks = [Task(task_id=f"t{i}", fn=_square, payload=i, index=i)
                 for i in range(8)]
        with TaskRuntime(mode="thread", max_workers=4) as rt:
            outcomes = rt.run(tasks)
        assert [o.task_id for o in outcomes] == [t.task_id for t in tasks]
        assert [o.value for o in outcomes] == [i * i for i in range(8)]
        assert all(o.attempts == 1 for o in outcomes)

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_on_result_fires_before_completed_event(self, mode):
        order = []
        tasks = [Task(task_id=f"t{i}", fn=_square, payload=i, index=i)
                 for i in range(4)]

        def on_result(outcome):
            order.append(("result", outcome.task_id))

        def on_event(event):
            if event.kind == "completed":
                order.append(("completed", event.task_id))

        with TaskRuntime(mode=mode, max_workers=2) as rt:
            rt.run(tasks, on_result=on_result, on_event=on_event)
        # per task: result strictly precedes its completed event
        for tid in (f"t{i}" for i in range(4)):
            assert order.index(("result", tid)) < \
                order.index(("completed", tid))

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_events_cover_lifecycle(self, mode):
        events = []
        tasks = [Task(task_id=f"t{i}", fn=_square, payload=i, index=i)
                 for i in range(3)]
        with TaskRuntime(mode=mode, max_workers=2) as rt:
            rt.run(tasks, on_event=events.append)
        kinds = [e.kind for e in events]
        assert kinds.count("submitted") == 3
        assert kinds.count("completed") == 3

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_retry_then_success(self, mode):
        flaky = _Flaky(fails=2)
        tasks = [Task(task_id=f"t{i}", fn=flaky, payload=i, index=i)
                 for i in range(3)]
        events = []
        with TaskRuntime(mode=mode, max_workers=2, retries=3,
                         backoff=0.0) as rt:
            outcomes = rt.run(tasks, on_event=events.append)
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert all(o.attempts == 3 for o in outcomes)
        assert sum(e.kind == "retrying" for e in events) == 6

    def test_retries_exhausted_raises_with_failed_event(self):
        flaky = _Flaky(fails=5)
        events = []
        with TaskRuntime(mode="serial", retries=2, backoff=0.0) as rt:
            with pytest.raises(RuntimeError, match="flaky"):
                rt.run([Task(task_id="t", fn=flaky, payload=0)],
                       on_event=events.append)
        assert [e.kind for e in events][-1] == "failed"
        assert flaky.calls[0] == 3  # initial + 2 retries

    def test_per_task_retry_override(self):
        flaky = _Flaky(fails=1)
        with TaskRuntime(mode="serial", retries=0, backoff=0.0) as rt:
            out = rt.run([Task(task_id="t", fn=flaky, payload=0,
                               max_retries=2)])
        assert out[0].value == 0 and out[0].attempts == 2

    def test_before_task_hook_aborts(self):
        seen = []

        def hook(task):
            seen.append(task.task_id)
            if len(seen) == 3:
                raise KeyboardInterrupt("injected crash")

        rt = TaskRuntime(mode="serial", before_task=hook)
        tasks = [Task(task_id=f"t{i}", fn=_square, payload=i, index=i)
                 for i in range(5)]
        with pytest.raises(KeyboardInterrupt):
            rt.run(tasks)
        assert seen == ["t0", "t1", "t2"]


class TestLifecycle:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_close_idempotent_and_not_terminal(self, mode):
        rt = TaskRuntime(mode=mode, max_workers=2)
        assert rt.map(_square, range(4)) == [0, 1, 4, 9]
        rt.close()
        rt.close()  # second close is a no-op
        # close is not terminal: pools lazily rebuild
        assert rt.map(_square, range(4)) == [0, 1, 4, 9]
        rt.close()

    def test_close_swallows_shutdown_errors(self, monkeypatch):
        rt = TaskRuntime(mode="thread", max_workers=2)
        rt.map(_square, range(4))

        def bad_shutdown(wait=True):
            raise OSError("shutdown failed")

        monkeypatch.setattr(rt._thread_pool, "shutdown", bad_shutdown)
        rt.close()  # must not raise
        assert rt._thread_pool is None


class _FakeQueue:
    """Minimal JobQueue-shaped source for pump tests."""

    def __init__(self, items):
        self._items = list(items)
        self._lock = threading.Lock()
        self.closed = False

    def get(self, timeout=None):
        with self._lock:
            if self._items:
                return self._items.pop(0)
        if not self.closed:
            time.sleep(min(timeout or 0.01, 0.01))
        return None

    def close(self):
        self.closed = True


class TestPump:
    def test_drains_source_and_tracks_inflight(self):
        handled = []
        source = _FakeQueue(range(20))
        rt = TaskRuntime(mode="thread", max_workers=3, name="pump-test")
        rt.start_workers(source, handled.append)
        assert rt.started
        deadline = time.monotonic() + 5.0
        while len(handled) < 20 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert sorted(handled) == list(range(20))
        assert rt.workers_alive == 3
        source.close()
        deadline = time.monotonic() + 5.0
        while rt.workers_alive and time.monotonic() < deadline:
            time.sleep(0.005)
        assert rt.workers_alive == 0
        assert rt.inflight == 0
        rt.close()

    def test_handler_exceptions_do_not_kill_workers(self):
        handled = []

        def handler(item):
            if item % 2:
                raise RuntimeError("odd items explode")
            handled.append(item)

        source = _FakeQueue(range(10))
        rt = TaskRuntime(mode="thread", max_workers=2)
        rt.start_workers(source, handler)
        deadline = time.monotonic() + 5.0
        while len(handled) < 5 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert sorted(handled) == [0, 2, 4, 6, 8]
        assert rt.workers_alive == 2  # nobody died
        rt.stop_workers()
        rt.close()

    def test_start_workers_idempotent(self):
        source = _FakeQueue([])
        rt = TaskRuntime(mode="thread", max_workers=2)
        rt.start_workers(source, lambda item: None)
        first = list(rt._pump_threads)
        rt.start_workers(source, lambda item: None)
        assert rt._pump_threads == first
        rt.stop_workers()
        rt.close()
