"""SweepJournal: durability, idempotence, damage tolerance."""

import json
import os

import pytest

from repro.runtime import (JournalError, SweepJournal, facts_fingerprint)
from repro.runtime.journal import canonical_json


def test_round_trip(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path, fingerprint="f" * 64) as jr:
        jr.record("shard/a", b"payload-a", {"seed": 11})
        jr.record("shard/b", b"payload-b", {"seed": 7930})
    with SweepJournal(path, fingerprint="f" * 64) as jr:
        done = jr.completed()
        assert set(done) == {"shard/a", "shard/b"}
        assert jr.payload(done["shard/a"]) == b"payload-a"
        assert jr.payload(done["shard/b"]) == b"payload-b"
        assert done["shard/b"].meta["seed"] == 7930
        assert jr.skipped_lines == 0


def test_record_is_idempotent(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path) as jr:
        e1 = jr.record("shard/a", b"payload", {"seed": 1})
        e2 = jr.record("shard/a", b"payload", {"seed": 1})
        assert e1.sha256 == e2.sha256
        assert len(jr) == 1
    # duplicate lines on disk are fine: replay is last-wins
    with SweepJournal(path) as jr:
        assert len(jr) == 1
        assert jr.payload(jr.completed()["shard/a"]) == b"payload"


def test_truncated_trailing_line_is_skipped(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path, fingerprint="a" * 64) as jr:
        jr.record("shard/a", b"aaaa", {"seed": 1})
        jr.record("shard/b", b"bbbb", {"seed": 2})
    # simulate a crash mid-append: cut the last line in half
    text = path.read_text()
    path.write_text(text[:len(text) - len(text.splitlines()[-1]) // 2 - 1])
    with SweepJournal(path, fingerprint="a" * 64) as jr:
        assert set(jr.completed()) == {"shard/a"}
        assert jr.skipped_lines == 1


def test_garbage_lines_never_crash(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path) as jr:
        jr.record("shard/a", b"aaaa")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
        fh.write('{"kind": "mystery"}\n')
        fh.write('{"kind": "task", "task_id": "shard/x"}\n')  # no sha256
        fh.write("[1, 2, 3]\n")
    with SweepJournal(path) as jr:
        assert set(jr.completed()) == {"shard/a"}
        assert jr.skipped_lines == 4


def test_corrupt_object_returns_none(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path) as jr:
        entry = jr.record("shard/a", b"payload-bytes")
        obj = jr.objects_dir / f"{entry.sha256}.bin"
        obj.write_bytes(b"payload-bytez")  # same size, wrong content
        assert jr.payload(entry) is None
        obj.unlink()  # missing object
        assert jr.payload(entry) is None


def test_fingerprint_mismatch_raises(tmp_path):
    path = tmp_path / "sweep.journal"
    with SweepJournal(path, fingerprint="a" * 64) as jr:
        jr.record("shard/a", b"aaaa")
    with pytest.raises(JournalError, match="different parameters"):
        SweepJournal(path, fingerprint="b" * 64)


def test_durable_write_ordering(tmp_path):
    """The object file lands before its journal line references it."""
    path = tmp_path / "sweep.journal"
    with SweepJournal(path) as jr:
        jr.record("shard/a", b"durable")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record.get("kind") != "task":
                continue
            obj = jr.objects_dir / f"{record['sha256']}.bin"
            assert obj.exists() and obj.stat().st_size == record["bytes"]


def test_lines_are_canonical_compact_json(tmp_path):
    """CI greps `"kind":"task"` — the writer must keep the compact form."""
    path = tmp_path / "sweep.journal"
    with SweepJournal(path) as jr:
        jr.record("shard/a", b"aaaa", {"seed": 3})
    lines = path.read_text().splitlines()
    assert any('"kind":"sweep"' in ln for ln in lines)
    assert any('"kind":"task"' in ln for ln in lines)
    for line in lines:
        assert json.loads(line) is not None
        assert line == canonical_json(json.loads(line))


def test_facts_fingerprint_is_order_insensitive():
    a = facts_fingerprint({"x": 1, "y": [1, 2]})
    b = facts_fingerprint({"y": [1, 2], "x": 1})
    c = facts_fingerprint({"x": 2, "y": [1, 2]})
    assert a == b
    assert a != c
    assert len(a) == 64


def test_close_idempotent(tmp_path):
    jr = SweepJournal(tmp_path / "sweep.journal")
    jr.record("shard/a", b"aaaa")
    jr.close()
    jr.close()
