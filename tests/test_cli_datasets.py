"""CLI coverage for the dataset registry, shard planner and executors
(`datasets`, `--dataset`, `--shards`, `--executor`)."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import get_dataset, list_datasets
from repro.metrics import nrmse


def test_datasets_lists_registry(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in list_datasets():
        assert name in out
    assert "Climate" in out and "Combustion" in out


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_dataset_sharded_roundtrip(executor, tmp_path, capsys):
    stream = tmp_path / f"s3d-{executor}.cdx"
    out = tmp_path / f"s3d-{executor}.npy"
    rc = main(["compress", "--dataset", "s3d", "--codec", "szlike",
               "--executor", executor, "--shards", "4",
               "--nrmse-bound", "0.02", "--", "-", "-", str(stream)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "shards=4" in printed and f"executor={executor}" in printed
    assert main(["decompress", "-", str(stream), str(out)]) == 0
    restored = np.load(out)
    original = get_dataset("s3d").frames(0)
    assert restored.shape == original.shape
    assert nrmse(original, restored) <= 0.02 * (1 + 1e-9)


def test_dataset_mode_defaults_output_and_bound(tmp_path, capsys,
                                                monkeypatch):
    monkeypatch.chdir(tmp_path)
    # the acceptance-criteria invocation, verbatim
    rc = main(["compress", "--dataset", "s3d", "--codec", "szlike",
               "--executor", "process", "--shards", "8"])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "defaulting to --nrmse-bound" in printed
    assert (tmp_path / "s3d-szlike.cdx").exists()
    assert main(["decompress", "-", "s3d-szlike.cdx", "back.npy"]) == 0
    restored = np.load(tmp_path / "back.npy")
    original = get_dataset("s3d").frames(0)
    assert nrmse(original, restored) <= 0.01 * (1 + 1e-9)


def test_sharded_executors_produce_identical_archives(tmp_path):
    streams = {}
    for executor in ("serial", "process"):
        stream = tmp_path / f"jh-{executor}.cdx"
        rc = main(["compress", "--dataset", "jhtdb", "--codec", "dpcm",
                   "--executor", executor, "--shards", "3",
                   "--nrmse-bound", "0.05", "--", "-", "-", str(stream)])
        assert rc == 0
        streams[executor] = stream.read_bytes()
    assert streams["serial"] == streams["process"]


def test_npy_file_sharded_roundtrip(tmp_path, capsys):
    frames = get_dataset("e3sm", t=10, h=16, w=16, seed=5).frames(0)
    data = tmp_path / "frames.npy"
    np.save(data, frames)
    stream = tmp_path / "frames.cdx"
    out = tmp_path / "restored.npy"
    rc = main(["compress", "-", str(data), str(stream),
               "--codec", "zfplike", "--shards", "3",
               "--nrmse-bound", "0.02"])
    assert rc == 0
    assert main(["info", str(stream)]) == 0
    info = capsys.readouterr().out
    assert "3 shards" in info and "frames/v0/" in info
    assert main(["decompress", "-", str(stream), str(out)]) == 0
    restored = np.load(out)
    assert restored.shape == frames.shape
    assert nrmse(frames, restored) <= 0.02 * (1 + 1e-9)


def test_unknown_dataset_lists_registered(capsys):
    rc = main(["compress", "--dataset", "nope", "--codec", "szlike",
               "--nrmse-bound", "0.01"])
    assert rc == 2
    err = capsys.readouterr().err
    for name in list_datasets():
        assert name in err


def test_unknown_codec_lists_registered(capsys):
    rc = main(["compress", "--dataset", "s3d", "--codec", "nope"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "szlike" in err and "ours" in err and "tthresh" in err


def test_dataset_mode_rejects_input_file(tmp_path, capsys):
    data = tmp_path / "frames.npy"
    np.save(data, np.zeros((4, 8, 8)))
    rc = main(["compress", "-", str(data), str(tmp_path / "x.cdx"),
               "--dataset", "s3d", "--codec", "szlike",
               "--nrmse-bound", "0.01"])
    assert rc == 2
    assert "generates its own frames" in capsys.readouterr().err


def test_missing_input_mentions_dataset_flag(capsys):
    rc = main(["compress", "--codec", "szlike", "--nrmse-bound", "0.01"])
    assert rc == 2
    assert "--dataset" in capsys.readouterr().err


def test_decompress_shard_archive_codec_mismatch(tmp_path, capsys):
    stream = tmp_path / "a.cdx"
    rc = main(["compress", "--dataset", "e3sm", "--codec", "szlike",
               "--shards", "2", "--nrmse-bound", "0.05",
               "--", "-", "-", str(stream)])
    assert rc == 0
    rc = main(["decompress", "-", str(stream), str(tmp_path / "b.npy"),
               "--codec", "mgard"])
    assert rc == 2
    assert "szlike" in capsys.readouterr().err
