"""UNet / ConditionalDDPM / sampler / finetune tests."""

import numpy as np
import pytest

from repro.config import DiffusionConfig
from repro.diffusion import (ConditionalDDPM, KeyframeSpec, ancestral_sample,
                             ddim_sample, finetune_steps, generate_latents,
                             keyframe_spec, sinusoidal_embedding, splice)
from repro.diffusion.unet import DenoisingUNet, ResBlock, SpaceTimeAttention
from repro.nn import Tensor
from repro.nn.optim import Adam, clip_grad_norm

CFG = DiffusionConfig(latent_channels=2, base_channels=4,
                      channel_mults=(1, 2), time_embed_dim=8, num_frames=4,
                      train_steps=8, finetune_steps=2, num_groups=2)


def window(b=1, n=4, c=2, h=4, w=4, seed=0):
    return np.random.default_rng(seed).normal(size=(b, n, c, h, w))


class TestEmbedding:
    def test_shape(self):
        emb = sinusoidal_embedding(np.array([1, 5, 9]), 16)
        assert emb.shape == (3, 16)

    def test_distinct_timesteps_distinct_embeddings(self):
        emb = sinusoidal_embedding(np.arange(10), 32)
        dists = np.linalg.norm(emb[:, None] - emb[None, :], axis=-1)
        assert np.all(dists[np.triu_indices(10, 1)] > 1e-3)

    def test_odd_dim_raises(self):
        with pytest.raises(ValueError):
            sinusoidal_embedding(np.array([1]), 7)


class TestUNet:
    def test_output_shape_matches_input(self):
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        x = Tensor(window())
        out = unet(x, 3)
        assert out.shape == x.shape

    def test_per_batch_timesteps(self):
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        x = Tensor(window(b=2))
        out = unet(x, np.array([1, 8]))
        assert out.shape == x.shape

    def test_timestep_mismatch_raises(self):
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            unet(Tensor(window(b=2)), np.array([1, 2, 3]))

    def test_timestep_changes_output(self):
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        x = Tensor(window())
        o1 = unet(x, 1).numpy()
        o2 = unet(x, 8).numpy()
        assert not np.allclose(o1, o2)

    def test_temporal_attention_mixes_frames(self):
        """Changing one frame must influence other frames' outputs."""
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        x = window()
        x2 = x.copy()
        x2[:, 0] += 5.0
        o1 = unet(Tensor(x), 4).numpy()
        o2 = unet(Tensor(x2), 4).numpy()
        # frames 1..3 changed even though only frame 0 was perturbed
        assert np.abs(o2[:, 1:] - o1[:, 1:]).max() > 1e-8

    def test_gradients_reach_all_parameters(self):
        unet = DenoisingUNet(CFG, rng=np.random.default_rng(0))
        out = unet(Tensor(window()), 2)
        out.sum().backward()
        missing = [n for n, p in unet.named_parameters() if p.grad is None]
        assert missing == []

    def test_resblock_channel_change(self):
        rb = ResBlock(4, 8, 8, 2, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4, 4, 4)))
        temb = Tensor(np.random.default_rng(2).normal(size=(3, 8)))
        assert rb(x, temb).shape == (3, 8, 4, 4)

    def test_space_time_attention_bad_rows(self):
        attn = SpaceTimeAttention(4, np.random.default_rng(0))
        x = Tensor(np.zeros((5, 4, 2, 2)))
        with pytest.raises(ValueError):
            attn(x, batch=2, frames=3)


class TestConditionalDDPM:
    def test_loss_scalar_and_finite(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = keyframe_spec(4, "interpolation", interval=3)
        loss = model.training_loss(window(), spec,
                                   np.random.default_rng(1))
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_loss_ignores_conditioning_frames(self):
        """Perturbing keyframe content changes the input but the loss is
        computed only on G-frame noise — check G-mask is applied."""
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = KeyframeSpec(4, np.array([0, 3]))
        y0 = window()
        rng_a = np.random.default_rng(7)
        loss = model.training_loss(y0, spec, rng_a, t=4)
        assert np.isfinite(loss.item())

    def test_window_length_mismatch_raises(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = KeyframeSpec(6, np.array([0]))
        with pytest.raises(ValueError):
            model.training_loss(window(), spec, np.random.default_rng(0))

    def test_training_reduces_loss(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = keyframe_spec(4, "interpolation", interval=3)
        rng = np.random.default_rng(5)
        # constant-in-time windows: trivially interpolable content
        frame = rng.normal(size=(2, 1, 2, 4, 4))
        y0 = np.repeat(frame, 4, axis=1)
        opt = Adam(model.parameters(), lr=2e-3)
        first, last = None, None
        losses = []
        for i in range(25):
            opt.zero_grad()
            loss = model.training_loss(y0, spec, rng)
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_set_schedule(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        model.set_schedule(3)
        assert model.schedule.steps == 3


class TestSamplers:
    def make(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = keyframe_spec(4, "interpolation", interval=3)
        cond = window(seed=2)
        return model, spec, cond

    def test_ancestral_keeps_keyframes_untouched(self):
        model, spec, cond = self.make()
        out = ancestral_sample(model, cond, spec,
                               rng=np.random.default_rng(1))
        np.testing.assert_array_equal(out[:, spec.cond_idx],
                                      cond[:, spec.cond_idx])
        assert out.shape == cond.shape
        assert np.all(np.isfinite(out))

    def test_ddim_keeps_keyframes_untouched(self):
        model, spec, cond = self.make()
        out = ddim_sample(model, cond, spec, steps=4,
                          rng=np.random.default_rng(1))
        np.testing.assert_array_equal(out[:, spec.cond_idx],
                                      cond[:, spec.cond_idx])
        assert np.all(np.isfinite(out))

    def test_ddim_deterministic_given_rng(self):
        model, spec, cond = self.make()
        o1 = ddim_sample(model, cond, spec, 4, rng=np.random.default_rng(3))
        o2 = ddim_sample(model, cond, spec, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(o1, o2)

    def test_generate_latents_dispatch(self):
        model, spec, cond = self.make()
        o = generate_latents(model, cond, spec, sampler="ddim", steps=2,
                             rng=np.random.default_rng(0))
        assert o.shape == cond.shape
        o = generate_latents(model, cond, spec, sampler="ancestral",
                             rng=np.random.default_rng(0))
        assert o.shape == cond.shape
        with pytest.raises(ValueError):
            generate_latents(model, cond, spec, sampler="bogus")

    def test_ddim_invalid_steps(self):
        model, spec, cond = self.make()
        with pytest.raises(ValueError):
            ddim_sample(model, cond, spec, steps=0)


class TestFinetune:
    def test_finetune_swaps_schedule_and_trains(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = keyframe_spec(4, "interpolation", interval=3)
        batches = [window(seed=s) for s in range(3)]
        losses = []
        finetune_steps(model, new_steps=2, batches=batches, spec=spec,
                       rng=np.random.default_rng(1),
                       on_step=lambda i, l: losses.append(l))
        assert model.schedule.steps == 2
        assert len(losses) == 3
        assert all(np.isfinite(l) for l in losses)

    def test_finetune_invalid_steps(self):
        model = ConditionalDDPM(CFG, rng=np.random.default_rng(0))
        spec = keyframe_spec(4, "interpolation", interval=3)
        with pytest.raises(ValueError):
            finetune_steps(model, 0, [], spec)
