"""Keyframe-strategy and splice-operator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import (KeyframeSpec, interpolation_keyframes,
                             keyframe_spec, mixed_keyframes,
                             prediction_keyframes, splice)
from repro.nn import Tensor


class TestStrategies:
    def test_paper_interpolation_set(self):
        """N=16, interval 3 -> the paper's C = {1,4,7,10,13,16} (1-based)."""
        idx = interpolation_keyframes(16, 3)
        np.testing.assert_array_equal(idx, [0, 3, 6, 9, 12, 15])

    def test_paper_prediction_set(self):
        np.testing.assert_array_equal(prediction_keyframes(16, 6),
                                      [0, 1, 2, 3, 4, 5])

    def test_paper_mixed_set(self):
        """First five frames plus the last: C = {1,2,3,4,5,16} (1-based)."""
        np.testing.assert_array_equal(mixed_keyframes(16, 6),
                                      [0, 1, 2, 3, 4, 15])

    def test_interpolation_always_includes_last(self):
        idx = interpolation_keyframes(10, 4)
        assert 9 in idx

    def test_strategies_storage_matched(self):
        """keyframe_spec gives all three strategies equal keyframe counts."""
        n, interval = 16, 3
        specs = {s: keyframe_spec(n, s, interval=interval)
                 for s in ("interpolation", "prediction", "mixed")}
        counts = {s: sp.num_cond for s, sp in specs.items()}
        assert len(set(counts.values())) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            interpolation_keyframes(8, 0)
        with pytest.raises(ValueError):
            prediction_keyframes(8, 0)
        with pytest.raises(ValueError):
            mixed_keyframes(8, 1)
        with pytest.raises(ValueError):
            keyframe_spec(8, "nope")


class TestKeyframeSpec:
    def test_partition_is_disjoint_and_complete(self):
        spec = KeyframeSpec(10, np.array([0, 3, 9]))
        assert set(spec.cond_idx) | set(spec.gen_idx) == set(range(10))
        assert set(spec.cond_idx) & set(spec.gen_idx) == set()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            KeyframeSpec(5, np.array([5]))
        with pytest.raises(ValueError):
            KeyframeSpec(5, np.array([], dtype=int))

    def test_gen_mask(self):
        spec = KeyframeSpec(4, np.array([0, 3]))
        mask = spec.gen_mask((2, 4, 3))
        assert mask.shape == (1, 4, 1)
        np.testing.assert_array_equal(mask[0, :, 0], [0, 1, 1, 0])


class TestSplice:
    def test_numpy_splice(self):
        spec = KeyframeSpec(4, np.array([1]))
        a = np.ones((2, 4, 3))
        b = np.full((2, 4, 3), 7.0)
        out = splice(a, b, spec)
        np.testing.assert_array_equal(out[:, 1], 7.0)
        np.testing.assert_array_equal(out[:, [0, 2, 3]], 1.0)

    def test_tensor_splice_gradients_partition(self):
        spec = KeyframeSpec(3, np.array([0]))
        a = Tensor(np.ones((1, 3, 2)), requires_grad=True)
        b = Tensor(np.zeros((1, 3, 2)), requires_grad=True)
        out = splice(a, b, spec)
        out.sum().backward()
        # a receives grads only on generated frames (1, 2)
        np.testing.assert_array_equal(a.grad[0, 0], 0.0)
        np.testing.assert_array_equal(a.grad[0, 1:], 1.0)
        np.testing.assert_array_equal(b.grad[0, 0], 1.0)
        np.testing.assert_array_equal(b.grad[0, 1:], 0.0)

    def test_shape_mismatch_raises(self):
        spec = KeyframeSpec(3, np.array([0]))
        with pytest.raises(ValueError):
            splice(np.ones((1, 3, 2)), np.ones((1, 3, 3)), spec)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_splice_algebra_property(data):
    """⊕ laws: idempotence, identity on own frames, complement swap."""
    n = data.draw(st.integers(2, 12))
    k = data.draw(st.integers(1, n - 1))
    cond = data.draw(st.permutations(list(range(n)))).copy()[:k]
    spec = KeyframeSpec(n, np.array(cond))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    a = rng.normal(size=(2, n, 3))
    b = rng.normal(size=(2, n, 3))
    out = splice(a, b, spec)
    np.testing.assert_array_equal(out[:, spec.gen_idx], a[:, spec.gen_idx])
    np.testing.assert_array_equal(out[:, spec.cond_idx], b[:, spec.cond_idx])
    # a ⊕ a == a
    np.testing.assert_array_equal(splice(a, a, spec), a)
    # splicing twice with same b is idempotent
    np.testing.assert_array_equal(splice(out, b, spec), out)
