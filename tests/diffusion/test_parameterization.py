"""Parameterization conversions and ParameterizedDDPM tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DiffusionConfig
from repro.diffusion import (KeyframeSpec, NoiseSchedule, ParameterizedDDPM,
                             generate_latents)
from repro.diffusion.parameterization import (eps_from_v, eps_from_x0,
                                              v_target, x0_from_v)


def _cfg():
    return DiffusionConfig(latent_channels=2, base_channels=4,
                           channel_mults=(1,), time_embed_dim=8,
                           num_frames=4, train_steps=8, finetune_steps=2,
                           num_groups=2)


def _spec():
    return KeyframeSpec(4, np.array([0, 3]))


class TestConversions:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), t=st.integers(1, 16))
    def test_v_roundtrip_recovers_eps_and_x0(self, seed, t):
        """v_target is a rotation of (x0, eps): invertible given y_t."""
        sched = NoiseSchedule(16)
        i = t - 1
        sa = float(sched.sqrt_alpha_bars[i])
        sb = float(sched.sqrt_one_minus_alpha_bars[i])
        rng = np.random.default_rng(seed)
        y0 = rng.standard_normal((2, 3))
        eps = rng.standard_normal((2, 3))
        y_t = sched.q_sample(y0, t, eps)
        v = v_target(y0, eps, sa, sb)
        np.testing.assert_allclose(eps_from_v(y_t, v, sa, sb), eps,
                                   atol=1e-10)
        np.testing.assert_allclose(x0_from_v(y_t, v, sa, sb), y0,
                                   atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), t=st.integers(1, 16))
    def test_eps_from_x0_inverts_q_sample(self, seed, t):
        sched = NoiseSchedule(16)
        i = t - 1
        sa = float(sched.sqrt_alpha_bars[i])
        sb = float(sched.sqrt_one_minus_alpha_bars[i])
        rng = np.random.default_rng(seed)
        y0 = rng.standard_normal((2, 3))
        eps = rng.standard_normal((2, 3))
        y_t = sched.q_sample(y0, t, eps)
        np.testing.assert_allclose(eps_from_x0(y_t, y0, sa, sb), eps,
                                   atol=1e-9)


class TestParameterizedDDPM:
    def test_rejects_unknown_parameterization(self):
        with pytest.raises(ValueError):
            ParameterizedDDPM(_cfg(), parameterization="score")

    @pytest.mark.parametrize("param", ["eps", "x0", "v"])
    def test_training_loss_finite_and_differentiable(self, param):
        rng = np.random.default_rng(0)
        model = ParameterizedDDPM(_cfg(), parameterization=param, rng=rng)
        y0 = rng.standard_normal((2, 4, 2, 4, 4))
        loss = model.training_loss(y0, _spec(), rng, t=3)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).max() > 0 for g in grads)

    def test_eps_parameterization_matches_base_predict(self):
        """With 'eps' the conversion is the identity."""
        rng = np.random.default_rng(1)
        model = ParameterizedDDPM(_cfg(), parameterization="eps", rng=rng)
        y_t = rng.standard_normal((1, 4, 2, 4, 4))
        out1 = model.predict_noise(y_t, 2)
        from repro.diffusion.ddpm import ConditionalDDPM
        out2 = ConditionalDDPM.predict_noise(model, y_t, 2)
        np.testing.assert_allclose(out1, out2)

    @pytest.mark.parametrize("param", ["x0", "v"])
    def test_predict_noise_converts(self, param):
        """Converted ε̂ differs from the raw net output but is finite."""
        rng = np.random.default_rng(2)
        model = ParameterizedDDPM(_cfg(), parameterization=param, rng=rng)
        y_t = rng.standard_normal((1, 4, 2, 4, 4))
        eps_hat = model.predict_noise(y_t, 5)
        assert eps_hat.shape == y_t.shape
        assert np.all(np.isfinite(eps_hat))

    @pytest.mark.parametrize("param", ["eps", "x0", "v"])
    def test_samplers_run_with_all_parameterizations(self, param):
        rng = np.random.default_rng(3)
        model = ParameterizedDDPM(_cfg(), parameterization=param, rng=rng)
        cond = rng.standard_normal((1, 4, 2, 4, 4))
        for sampler in ("ancestral", "ddim", "dpm"):
            out = generate_latents(model, cond, _spec(), sampler=sampler,
                                   steps=4, rng=np.random.default_rng(0))
            assert out.shape == cond.shape
            assert np.all(np.isfinite(out))
            # keyframes must be passed through untouched
            np.testing.assert_array_equal(out[:, [0, 3]], cond[:, [0, 3]])

    def test_loss_decreases_under_training(self):
        """A few Adam steps reduce the x0-loss on a fixed batch."""
        from repro.nn.optim import Adam
        rng = np.random.default_rng(4)
        model = ParameterizedDDPM(_cfg(), parameterization="x0", rng=rng)
        y0 = 0.1 * rng.standard_normal((2, 4, 2, 4, 4))
        opt = Adam(model.parameters(), lr=1e-2)
        losses = []
        fixed = np.random.default_rng(7)
        for _ in range(15):
            loss = model.training_loss(y0, _spec(),
                                       np.random.default_rng(7), t=3)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
