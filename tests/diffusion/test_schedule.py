"""Noise-schedule math tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import NoiseSchedule
from repro.diffusion.schedule import cosine_betas, linear_betas


class TestBetas:
    def test_linear_reference_endpoints(self):
        b = linear_betas(1000)
        assert b[0] == pytest.approx(1e-4)
        assert b[-1] == pytest.approx(0.02)

    def test_linear_short_chain_matches_reference_endpoint(self):
        """Short chains subsample the 1000-step ᾱ curve, so their final
        cumulative noise level equals the reference schedule's."""
        ref = np.cumprod(1.0 - linear_betas(1000))[-1]
        for steps in (10, 32, 128):
            ab = np.cumprod(1.0 - linear_betas(steps))[-1]
            assert ab == pytest.approx(ref, rel=1e-6)
        b = linear_betas(10)
        assert np.all(b > 0) and np.all(b < 1.0)

    def test_cosine_valid(self):
        b = cosine_betas(100)
        assert np.all(b >= 0) and np.all(b <= 0.999)


class TestNoiseSchedule:
    def test_alpha_bar_monotone_decreasing(self):
        s = NoiseSchedule(50)
        assert np.all(np.diff(s.alpha_bars) < 0)
        assert 0 < s.alpha_bars[-1] < s.alpha_bars[0] < 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            NoiseSchedule(0)
        with pytest.raises(ValueError):
            NoiseSchedule(10, kind="bogus")
        with pytest.raises(ValueError):
            NoiseSchedule(10).alpha_bar(11)
        with pytest.raises(ValueError):
            NoiseSchedule(10).alpha_bar(0)

    def test_q_sample_endpoints(self):
        s = NoiseSchedule(100)
        y0 = np.ones((2, 3))
        eps = np.full((2, 3), 2.0)
        early = s.q_sample(y0, 1, eps)
        late = s.q_sample(y0, 100, eps)
        # early: mostly signal; late: mostly noise
        assert np.abs(early - y0).max() < np.abs(late - y0).max()

    def test_predict_x0_inverts_q_sample(self):
        s = NoiseSchedule(64)
        rng = np.random.default_rng(0)
        y0 = rng.normal(size=(4, 4))
        eps = rng.normal(size=(4, 4))
        for t in (1, 17, 64):
            y_t = s.q_sample(y0, t, eps)
            np.testing.assert_allclose(s.predict_x0(y_t, t, eps), y0,
                                       atol=1e-9)

    def test_posterior_step_with_true_noise_reduces_noise_level(self):
        """Stepping with the oracle ε moves y_t toward y_0."""
        s = NoiseSchedule(64)
        rng = np.random.default_rng(1)
        y0 = rng.normal(size=(8, 8))
        eps = rng.normal(size=(8, 8))
        t = 40
        y_t = s.q_sample(y0, t, eps)
        y_prev = s.posterior_step(y_t, t, eps, np.zeros_like(y_t))
        assert np.abs(y_prev - y0).mean() < np.abs(y_t - y0).mean()

    def test_ddim_step_with_oracle_noise_recovers_x0(self):
        s = NoiseSchedule(32)
        rng = np.random.default_rng(2)
        y0 = rng.normal(size=(5, 5))
        eps = rng.normal(size=(5, 5))
        y_t = s.q_sample(y0, 32, eps)
        np.testing.assert_allclose(s.ddim_step(y_t, 32, 0, eps), y0,
                                   atol=1e-9)

    def test_ddim_chain_consistency(self):
        """DDIM with oracle noise lands on y0 regardless of spacing."""
        s = NoiseSchedule(64)
        rng = np.random.default_rng(3)
        y0 = rng.normal(size=(3, 3))
        eps = rng.normal(size=(3, 3))
        y = s.q_sample(y0, 64, eps)
        ts = s.spaced_timesteps(4)
        for i, t in enumerate(ts):
            t_prev = int(ts[i + 1]) if i + 1 < len(ts) else 0
            y = s.ddim_step(y, int(t), t_prev, eps)
        np.testing.assert_allclose(y, y0, atol=1e-9)

    def test_spaced_timesteps(self):
        s = NoiseSchedule(100)
        ts = s.spaced_timesteps(5)
        assert ts[0] == 100 and ts[-1] == 1
        assert np.all(np.diff(ts) < 0)
        # more steps than schedule -> clamp
        assert len(NoiseSchedule(4).spaced_timesteps(100)) == 4


@settings(max_examples=30, deadline=None)
@given(steps=st.integers(1, 200), kind=st.sampled_from(["linear", "cosine"]))
def test_schedule_invariants(steps, kind):
    s = NoiseSchedule(steps, kind)
    assert s.betas.shape == (steps,)
    assert np.all(s.betas > 0) and np.all(s.betas <= 0.999)
    assert np.all(s.alpha_bars > 0) and np.all(s.alpha_bars < 1)
    assert np.all(np.diff(s.alpha_bars) <= 0)
    assert np.all(s.posterior_variance >= 0)
