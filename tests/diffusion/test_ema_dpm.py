"""EMA weight-averaging and DPM-Solver sampler tests."""

import numpy as np
import pytest

from repro.config import DiffusionConfig
from repro.diffusion import (EMA, ConditionalDDPM, KeyframeSpec,
                             ddim_sample, dpm_solver_sample)
from repro.nn import Linear, Module, Sequential


def _tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))


class TestEMA:
    def test_initial_shadow_equals_weights(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.9)
        for name, p in m.named_parameters():
            np.testing.assert_array_equal(ema.shadow[name], p.data)

    def test_update_moves_toward_new_weights(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.5, warmup=False)
        old = {n: p.data.copy() for n, p in m.named_parameters()}
        for p in m.parameters():
            p.data += 1.0
        ema.update()
        for name, p in m.named_parameters():
            np.testing.assert_allclose(
                ema.shadow[name], 0.5 * old[name] + 0.5 * p.data)

    def test_warmup_ramp(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.999, warmup=True)
        # first update: effective decay is (1+0)/(10+0) = 0.1
        assert np.isclose(ema._effective_decay(), 0.1)
        ema.update()
        assert np.isclose(ema._effective_decay(), 2 / 11)

    def test_copy_to_overwrites(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.9)
        shadow0 = {k: v.copy() for k, v in ema.shadow.items()}
        for p in m.parameters():
            p.data += 5.0
        ema.copy_to()
        for name, p in m.named_parameters():
            np.testing.assert_array_equal(p.data, shadow0[name])

    def test_average_parameters_context_restores(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.5, warmup=False)
        for p in m.parameters():
            p.data += 3.0
        live = {n: p.data.copy() for n, p in m.named_parameters()}
        with ema.average_parameters():
            for name, p in m.named_parameters():
                assert not np.allclose(p.data, live[name])
        for name, p in m.named_parameters():
            np.testing.assert_array_equal(p.data, live[name])

    def test_state_dict_roundtrip(self):
        m = _tiny_model()
        ema = EMA(m, decay=0.9)
        ema.update()
        state = ema.state_dict()
        ema2 = EMA(_tiny_model(seed=1), decay=0.9)
        ema2.load_state_dict(state)
        assert ema2.num_updates == 1
        for k in ema.shadow:
            np.testing.assert_array_equal(ema2.shadow[k], ema.shadow[k])

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EMA(_tiny_model(), decay=1.0)
        with pytest.raises(ValueError):
            EMA(_tiny_model(), decay=0.0)

    def test_trainer_integration_smoke(self):
        """ema_decay > 0 trains and adopts averaged diffusion weights."""
        from repro import TrainingConfig, TwoStageTrainer, tiny
        from repro.data import E3SMSynthetic
        from repro.data.base import train_test_windows
        frames = E3SMSynthetic(t=24, h=16, w=16, seed=0).frames(0)
        train, _ = train_test_windows(frames, window=6, stride=3)
        cfg = TrainingConfig(vae_iters=3, diffusion_iters=5,
                             finetune_iters=0, ema_decay=0.9)
        trainer = TwoStageTrainer(tiny(), cfg, seed=0)
        trainer.train_vae(train)
        trainer.train_diffusion(train)
        assert len(trainer.history.diffusion_losses) == 5


def _ddpm(seed=0):
    cfg = DiffusionConfig(latent_channels=2, base_channels=4,
                          channel_mults=(1,), time_embed_dim=8,
                          num_frames=4, train_steps=8, finetune_steps=2,
                          num_groups=2)
    return ConditionalDDPM(cfg, rng=np.random.default_rng(seed))


class TestDPMSolver:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        model = _ddpm(seed)
        cond = rng.standard_normal((1, 4, 2, 4, 4))
        spec = KeyframeSpec(4, np.array([0, 3]))
        return model, cond, spec

    def test_output_shape_and_keyframe_passthrough(self):
        model, cond, spec = self._setup()
        out = dpm_solver_sample(model, cond, spec, steps=4,
                                rng=np.random.default_rng(0))
        assert out.shape == cond.shape
        np.testing.assert_array_equal(out[:, [0, 3]], cond[:, [0, 3]])
        assert np.all(np.isfinite(out))

    def test_single_step_matches_ddim_single_step(self):
        """With one step both solvers jump straight to clipped x0."""
        model, cond, spec = self._setup(seed=1)
        r1 = dpm_solver_sample(model, cond, spec, steps=1,
                               rng=np.random.default_rng(5))
        r2 = ddim_sample(model, cond, spec, steps=1,
                         rng=np.random.default_rng(5))
        np.testing.assert_allclose(r1, r2, atol=1e-10)

    def test_deterministic_given_rng_seed(self):
        model, cond, spec = self._setup(seed=2)
        a = dpm_solver_sample(model, cond, spec, steps=4,
                              rng=np.random.default_rng(3))
        b = dpm_solver_sample(model, cond, spec, steps=4,
                              rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero_steps(self):
        model, cond, spec = self._setup()
        with pytest.raises(ValueError):
            dpm_solver_sample(model, cond, spec, steps=0)

    def test_second_order_term_engages(self):
        """With >2 steps the multistep path must differ from DDIM."""
        model, cond, spec = self._setup(seed=3)
        d = ddim_sample(model, cond, spec, steps=6,
                        rng=np.random.default_rng(9))
        s = dpm_solver_sample(model, cond, spec, steps=6,
                              rng=np.random.default_rng(9))
        gen = spec.gen_idx
        assert not np.allclose(d[:, gen], s[:, gen])
