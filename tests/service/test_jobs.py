"""Job records: validation, canonical digests, deterministic ids and
the state machine."""

import threading

import pytest

from repro.service.jobs import (Job, JobError, TERMINAL_STATES,
                                canonical_request, job_id,
                                normalize_request, request_digest)


class TestNormalize:
    def test_compress_keeps_canonical_fields_only(self):
        out = normalize_request({
            "type": "compress", "dataset": "e3sm", "codec": "szlike",
            "bound": "nrmse:0.05", "priority": "high",
            "client": "alice"})
        assert out == {"type": "compress", "dataset": "e3sm",
                       "codec": "szlike", "bound": "nrmse:0.05"}

    def test_none_valued_fields_are_dropped(self):
        out = normalize_request({"type": "compress", "dataset": "e3sm",
                                 "codec": None, "seed": None})
        assert "codec" not in out and "seed" not in out

    @pytest.mark.parametrize("request_body,needle", [
        ({"type": "nope"}, "unknown job type"),
        ({}, "unknown job type"),
        ({"type": "compress"}, "dataset"),
        ({"type": "train", "dataset": "e3sm"}, "codec"),
        ({"type": "decompress"}, "job"),
        ("not a dict", "JSON object"),
    ])
    def test_invalid_requests_raise_jobexror(self, request_body, needle):
        with pytest.raises(JobError, match=needle):
            normalize_request(request_body)

    def test_decompress_accepts_job_or_digest(self):
        assert normalize_request(
            {"type": "decompress", "job": "j1"})["job"] == "j1"
        assert normalize_request(
            {"type": "decompress", "digest": "abc"})["digest"] == "abc"


class TestDigest:
    def test_digest_is_field_order_independent(self):
        a = {"type": "compress", "dataset": "e3sm", "codec": "szlike"}
        b = {"codec": "szlike", "type": "compress", "dataset": "e3sm"}
        assert request_digest(a) == request_digest(b)

    def test_digest_changes_with_content(self):
        a = {"type": "compress", "dataset": "e3sm", "seed": 0}
        b = {"type": "compress", "dataset": "e3sm", "seed": 1}
        assert request_digest(a) != request_digest(b)

    def test_extra_facts_participate(self):
        req = {"type": "compress", "dataset": "e3sm"}
        assert (request_digest(req, {"entropy": "rans"})
                != request_digest(req, {"entropy": "trans"}))

    def test_canonical_request_is_compact_sorted_json(self):
        text = canonical_request({"b": 1, "a": 2})
        assert text == '{"a":2,"b":1}'

    def test_job_id_is_deterministic(self):
        digest = request_digest({"type": "compress", "dataset": "e3sm"})
        assert job_id(digest, 3) == job_id(digest, 3)
        assert job_id(digest, 3) != job_id(digest, 4)
        assert job_id(digest, 3).endswith(digest[:12])


def _job(state="queued"):
    return Job(id="j000001-abc", type="compress",
               request={"type": "compress", "dataset": "e3sm"},
               digest="d" * 64, state=state)


class TestStateMachine:
    def test_happy_path(self):
        job = _job()
        job.transition("running")
        assert job.started is not None
        job.transition("done")
        assert job.terminal and job.finished is not None
        assert job.wall_seconds() >= 0

    def test_cancel_only_from_queued(self):
        job = _job()
        job.transition("cancelled")
        assert job.state == "cancelled"
        running = _job()
        running.transition("running")
        with pytest.raises(JobError, match="cannot move"):
            running.transition("cancelled")

    def test_terminal_states_are_sticky(self):
        for state in TERMINAL_STATES:
            job = _job()
            if state in ("done", "failed"):
                job.transition("running")
            job.transition(state)
            with pytest.raises(JobError):
                job.transition("running")

    def test_unknown_state_rejected(self):
        with pytest.raises(JobError, match="unknown job state"):
            _job().transition("paused")

    def test_transition_is_thread_safe(self):
        """Exactly one of N racing cancellation attempts wins."""
        job = _job()
        wins, errors = [], []

        def cancel():
            try:
                job.transition("cancelled")
                wins.append(1)
            except JobError:
                errors.append(1)

        threads = [threading.Thread(target=cancel) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1 and len(errors) == 7

    def test_to_dict_is_json_safe(self):
        import json
        job = _job()
        job.transition("running")
        job.transition("failed")
        job.error = "boom"
        out = json.loads(json.dumps(job.to_dict()))
        assert out["state"] == "failed" and out["error"] == "boom"
        assert out["request"]["dataset"] == "e3sm"
