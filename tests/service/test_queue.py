"""Bounded queue backpressure and token-bucket rate limiting."""

import threading
import time

import pytest

from repro.service.jobs import Job
from repro.service.queue import (ClientRateLimiter, JobQueue,
                                 QueueFullError, RateLimitedError,
                                 ServiceRejection, TokenBucket)


def _job(i):
    return Job(id=f"j{i:06d}-deadbeef0000", type="compress",
               request={"type": "compress", "dataset": "e3sm"},
               digest=f"{i:064d}")


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue(maxsize=4)
        for i in range(3):
            q.put(_job(i))
        assert [q.get(timeout=0.1).id for _ in range(3)] == [
            _job(i).id for i in range(3)]

    def test_put_rejects_at_capacity(self):
        q = JobQueue(maxsize=2)
        q.put(_job(0))
        q.put(_job(1))
        with pytest.raises(QueueFullError) as exc:
            q.put(_job(2))
        assert exc.value.http_status == 429
        assert exc.value.retry_after > 0
        assert q.depth == 2  # the rejected job never entered

    def test_get_timeout_returns_none(self):
        q = JobQueue(maxsize=1)
        t0 = time.monotonic()
        assert q.get(timeout=0.05) is None
        assert time.monotonic() - t0 < 1.0

    def test_close_wakes_blocked_getter(self):
        q = JobQueue(maxsize=1)
        results = []

        def getter():
            results.append(q.get(timeout=5.0))

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert results == [None]

    def test_close_rejects_put_but_drains_remaining(self):
        q = JobQueue(maxsize=4)
        q.put(_job(0))
        q.close()
        with pytest.raises(QueueFullError, match="shutting down"):
            q.put(_job(1))
        assert q.get(timeout=0.1).id == _job(0).id
        assert q.get(timeout=0.1) is None

    def test_remove_pulls_queued_job(self):
        q = JobQueue(maxsize=4)
        q.put(_job(0))
        q.put(_job(1))
        removed = q.remove(_job(0).id)
        assert removed is not None and removed.id == _job(0).id
        assert q.remove("j999999-nope") is None
        assert q.depth == 1

    def test_rejections_are_service_rejections(self):
        assert issubclass(QueueFullError, ServiceRejection)
        assert issubclass(RateLimitedError, ServiceRejection)


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        now = 100.0
        assert all(bucket.try_acquire(now) for _ in range(3))
        assert not bucket.try_acquire(now)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.2)  # 0.2s * 10/s = 2 tokens

    def test_retry_after_estimates_wait(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        bucket.try_acquire(100.0)
        wait = bucket.retry_after(100.0)
        assert 0.4 < wait <= 0.5  # one token at 2/s = 0.5s away

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestClientRateLimiter:
    def test_disabled_when_rate_nonpositive(self):
        limiter = ClientRateLimiter(0.0)
        assert not limiter.enabled
        for _ in range(100):
            limiter.allow("anyone")  # never raises

    def test_limits_per_client_independently(self):
        limiter = ClientRateLimiter(rate=0.001, burst=2)
        limiter.allow("a")
        limiter.allow("a")
        with pytest.raises(RateLimitedError) as exc:
            limiter.allow("a")
        assert exc.value.retry_after > 0
        limiter.allow("b")  # a fresh client has its own bucket

    def test_client_tracking_is_bounded(self):
        limiter = ClientRateLimiter(rate=1000.0, max_clients=4)
        for i in range(20):
            limiter.allow(f"client-{i}")
        assert len(limiter._buckets) <= 4
