"""HTTP layer e2e over a real socket: the wire-level acceptance
criteria — submit/poll/fetch byte-compared against the in-process
facade, 4xx mappings, concurrent clients, and graceful drain."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Bound, Session
from repro.data.registry import get_dataset_spec
from repro.service import CompressionService, make_server
from repro.service.telemetry import METRICS_CONTENT_TYPE

REQUEST = {"type": "compress", "dataset": "e3sm",
           "shape": {"t": 6, "h": 8, "w": 8}, "codec": "szlike",
           "bound": "nrmse:0.05", "shards": 2, "seed": 7}


@pytest.fixture()
def served(tmp_path):
    """A CompressionService behind a real listening HTTP server."""
    service = CompressionService(tmp_path / "cache", workers=2,
                                 max_queue=4, rate_limit=0.0)
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()


def _request(base, path, method="GET", body=None, headers=()):
    req = urllib.request.Request(
        base + path, method=method,
        data=None if body is None else json.dumps(body).encode())
    req.add_header("Content-Type", "application/json")
    for name, value in headers:
        req.add_header(name, value)
    return urllib.request.urlopen(req, timeout=10)


def _json(base, path, **kwargs):
    with _request(base, path, **kwargs) as resp:
        return resp.status, json.load(resp)


def _submit_and_wait(base, body, timeout=30.0):
    import time
    _, job = _json(base, "/v1/jobs", method="POST", body=body)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, job = _json(base, f"/v1/jobs/{job['id']}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise TimeoutError(job)


class TestJobRoundtrip:
    def test_submit_poll_fetch_bytes_match_in_process(self, served):
        _, base = served
        status, job = _json(base, "/v1/jobs", method="POST",
                            body=REQUEST)
        assert status == 202
        assert job["state"] in ("queued", "running")
        done = _submit_and_wait(base, REQUEST)
        assert done["state"] == "done"
        with _request(base, f"/v1/jobs/{done['id']}/result") as resp:
            assert resp.headers["Content-Type"] == \
                "application/octet-stream"
            assert resp.headers["X-Repro-Digest"] == done["digest"]
            served_bytes = resp.read()
        with Session(seed=7) as session:
            spec = get_dataset_spec("e3sm", t=6, h=8, w=8)
            archive = session.compress(
                spec, codec="szlike", bound=Bound.parse("nrmse:0.05"),
                shards=2, seed=7)
        assert served_bytes == archive.to_bytes()

    def test_cache_hit_returns_200_born_done(self, served):
        service, base = served
        _submit_and_wait(base, REQUEST)
        status, job = _json(base, "/v1/jobs", method="POST",
                            body=REQUEST)
        assert status == 200
        assert job["state"] == "done" and job["cache_hit"] is True
        assert service.cache.stats()["hits"] >= 1

    def test_job_listing(self, served):
        _, base = served
        _submit_and_wait(base, REQUEST)
        _, listing = _json(base, "/v1/jobs")
        assert len(listing["jobs"]) == 1

    def test_delete_cancels_queued_job(self, served):
        service, base = served
        # fill workers + queue so one job stays queued long enough
        slow = dict(REQUEST, shape={"t": 10, "h": 16, "w": 16})
        for seed in range(4):
            _json(base, "/v1/jobs", method="POST",
                  body=dict(slow, seed=100 + seed))
        _, victim = _json(base, "/v1/jobs", method="POST",
                          body=dict(slow, seed=999))
        try:
            status, out = _json(base, f"/v1/jobs/{victim['id']}",
                                method="DELETE")
        except urllib.error.HTTPError as exc:
            # the job raced into execution before DELETE landed;
            # refusing with 400 is the documented behavior
            assert exc.code == 400
            pytest.skip("job started before DELETE landed")
        assert status == 200 and out["state"] == "cancelled"


class TestErrorMapping:
    def _status(self, base, path, **kwargs):
        try:
            with _request(base, path, **kwargs) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def test_unknown_job_is_404(self, served):
        _, base = served
        status, body = self._status(base, "/v1/jobs/j000099-missing")
        assert status == 404 and "error" in body

    def test_unknown_route_is_404(self, served):
        _, base = served
        assert self._status(base, "/nope")[0] == 404

    def test_malformed_json_is_400(self, served):
        _, base = served
        req = urllib.request.Request(
            base + "/v1/jobs", method="POST", data=b"{not json")
        try:
            urllib.request.urlopen(req, timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert "JSON" in json.load(exc)["error"]
        else:
            raise AssertionError("expected 400")

    def test_bad_request_is_400(self, served):
        _, base = served
        status, body = self._status(
            base, "/v1/jobs", method="POST",
            body={"type": "compress", "dataset": "nope"})
        assert status == 400 and "unknown dataset" in body["error"]

    def test_queue_full_is_429_with_retry_after(self, served):
        service, base = served
        big = dict(REQUEST, shape={"t": 12, "h": 16, "w": 16})
        saw_429 = None
        for seed in range(12):  # 2 workers + queue of 4 < 12 submits
            try:
                _json(base, "/v1/jobs", method="POST",
                      body=dict(big, seed=seed))
            except urllib.error.HTTPError as exc:
                saw_429 = exc
                break
        assert saw_429 is not None and saw_429.code == 429
        assert int(saw_429.headers["Retry-After"]) >= 1
        assert "queue is full" in json.load(saw_429)["error"]

    def test_rate_limit_is_429(self, tmp_path):
        service = CompressionService(tmp_path / "cache", workers=1,
                                     max_queue=32, rate_limit=0.001,
                                     rate_burst=1, start=False)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        base = "http://{}:{}".format(*httpd.server_address[:2])
        try:
            headers = (("X-Client", "hammer"),)
            _json(base, "/v1/jobs", method="POST", body=REQUEST,
                  headers=headers)
            with pytest.raises(urllib.error.HTTPError) as exc:
                _json(base, "/v1/jobs", method="POST",
                      body=dict(REQUEST, seed=1), headers=headers)
            assert exc.value.code == 429
            assert "Retry-After" in exc.value.headers
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close(drain=False)


class TestObservabilityEndpoints:
    def test_health_under_load(self, served):
        _, base = served
        for seed in range(3):
            _json(base, "/v1/jobs", method="POST",
                  body=dict(REQUEST, seed=seed))
        status, health = _json(base, "/health")
        assert status == 200 and health["status"] == "ok"
        assert health["workers_alive"] == 2
        assert health["store_writable"] is True

    def test_metrics_exposition(self, served):
        _, base = served
        _submit_and_wait(base, REQUEST)
        with _request(base, "/metrics") as resp:
            assert resp.headers["Content-Type"] == \
                METRICS_CONTENT_TYPE
            text = resp.read().decode()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "# TYPE repro_job_seconds histogram" in text
        assert "repro_job_seconds_bucket" in text

    def test_concurrent_clients_hammer(self, served):
        """Many clients submitting and scraping at once: every request
        gets a coherent response (2xx or a mapped 4xx), nothing hangs,
        and the server stays healthy."""
        _, base = served
        outcomes = []
        lock = threading.Lock()

        def hammer(i):
            try:
                body = dict(REQUEST, seed=i % 3)
                status, job = _json(base, "/v1/jobs", method="POST",
                                    body=body)
                _json(base, f"/v1/jobs/{job['id']}")
                _json(base, "/health")
                with lock:
                    outcomes.append(status)
            except urllib.error.HTTPError as exc:
                with lock:
                    outcomes.append(exc.code)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(outcomes) == 12
        assert set(outcomes) <= {200, 202, 429}
        status, health = _json(base, "/health")
        assert status == 200


class TestGracefulShutdown:
    def test_drain_completes_accepted_work(self, tmp_path):
        service = CompressionService(tmp_path / "cache", workers=1,
                                     max_queue=8)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        base = "http://{}:{}".format(*httpd.server_address[:2])
        jobs = []
        try:
            for seed in range(3):
                _, job = _json(base, "/v1/jobs", method="POST",
                               body=dict(REQUEST, seed=seed))
                jobs.append(job["id"])
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close(drain=True)
        # every accepted job finished; the cache holds every result
        for job_id in jobs:
            job = service.job(job_id)
            assert job.state == "done"
            assert service.cache.peek_path(job.digest) is not None

    def test_draining_health_is_503(self, tmp_path):
        service = CompressionService(tmp_path / "cache", workers=1)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        base = "http://{}:{}".format(*httpd.server_address[:2])
        try:
            service.close(drain=True)
            try:
                _json(base, "/health")
                raise AssertionError("expected 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                assert json.load(exc)["status"] == "draining"
            # submissions are refused with 503 too
            try:
                _json(base, "/v1/jobs", method="POST", body=REQUEST)
                raise AssertionError("expected 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
