"""CompressionService end-to-end (in-process): the acceptance
criteria of the service tentpole — served results byte-identical to
the facade, cache hit/miss accounting, backpressure, cancellation,
and the graceful-drain shutdown contract."""

import numpy as np
import pytest

from repro.api import Archive, Bound, Session
from repro.data.registry import get_dataset_spec
from repro.service import (CompressionService, QueueFullError,
                           RateLimitedError, ServiceClient,
                           ServiceClosedError, ServiceError,
                           UnknownJobError)

REQUEST = {"type": "compress", "dataset": "e3sm",
           "shape": {"t": 6, "h": 8, "w": 8}, "codec": "szlike",
           "bound": "nrmse:0.05", "shards": 2, "seed": 7}


@pytest.fixture()
def service(tmp_path):
    svc = CompressionService(tmp_path / "cache", workers=2,
                             max_queue=8)
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service)


class TestCompressJobs:
    def test_submit_poll_result(self, client):
        job = client.submit(dict(REQUEST))
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"])
        assert done["state"] == "done"
        assert done["result"]["bytes"] > 0
        assert done["result"]["codec"] == "szlike"
        data = client.result(job["id"])
        assert len(data) == done["result"]["bytes"]

    def test_served_bytes_identical_to_in_process(self, client):
        """The headline determinism guarantee: a served compress is
        byte-identical to the same Session.compress call."""
        job = client.submit(dict(REQUEST))
        client.wait(job["id"])
        served = client.result(job["id"])
        with Session(seed=7) as session:
            spec = get_dataset_spec("e3sm", t=6, h=8, w=8)
            archive = session.compress(
                spec, codec="szlike", bound=Bound.parse("nrmse:0.05"),
                shards=2, seed=7)
            assert served == archive.to_bytes()

    def test_job_ids_are_deterministic(self, tmp_path):
        ids = []
        for run in range(2):
            with CompressionService(tmp_path / f"c{run}",
                                    workers=1) as svc:
                c = ServiceClient(svc)
                ids.append([c.submit(dict(REQUEST))["id"],
                            c.submit(dict(REQUEST), seed=8)["id"]])
        assert ids[0] == ids[1]

    def test_failed_job_reports_error(self, client):
        # variable 99 resolves nowhere at execution time: the job must
        # fail cleanly (worker survives, error lands on the record)
        job = client.submit(dict(REQUEST, variables=[99]))
        done = client.wait(job["id"])
        assert done["state"] == "failed"
        assert done["error"]

    def test_invalid_bound_rejected_at_submit(self, client):
        with pytest.raises(ServiceError, match="bad bound"):
            client.submit(dict(REQUEST,
                               bound={"kind": "nrmse", "value": -1}))

    def test_unresolvable_request_rejected_at_submit(self, client):
        with pytest.raises(ServiceError, match="unknown dataset"):
            client.submit(dict(REQUEST, dataset="nope"))
        with pytest.raises(ServiceError, match="codec"):
            client.submit(dict(REQUEST, codec="nope"))


class TestCache:
    def test_resubmit_hits_cache(self, service, client):
        first = client.submit(dict(REQUEST))
        client.wait(first["id"])
        hits0 = service.cache.stats()["hits"]
        second = client.submit(dict(REQUEST))
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        assert second["digest"] == first["digest"]
        assert service.cache.stats()["hits"] == hits0 + 1
        assert client.result(second["id"]) == client.result(first["id"])

    def test_cache_metrics_counters(self, service, client):
        job = client.submit(dict(REQUEST))
        client.wait(job["id"])
        client.submit(dict(REQUEST))
        text = service.metrics_text()
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_misses_total 1" in text

    def test_different_requests_different_digests(self, client):
        a = client.submit(dict(REQUEST))
        b = client.submit(dict(REQUEST, seed=8))
        assert a["digest"] != b["digest"]

    def test_equivalent_spellings_share_a_digest(self, client):
        """The digest is over resolved facts, not raw spelling."""
        a = client.submit(dict(REQUEST))
        b = client.submit(dict(REQUEST,
                               bound={"kind": "nrmse", "value": 0.05}))
        assert a["digest"] == b["digest"]


class TestDecompressAndTrain:
    def test_decompress_chained_off_compress(self, client):
        src = client.submit(dict(REQUEST))
        client.wait(src["id"])
        job = client.submit({"type": "decompress", "job": src["id"],
                             "select": "0:3"})
        done = client.wait(job["id"])
        assert done["state"] == "done"
        assert done["result"]["media_type"] == "application/x-npy"
        import io
        restored = np.load(io.BytesIO(client.result(job["id"])))
        assert restored.shape[-3:] == (3, 8, 8)

    def test_decompress_unknown_source_job(self, client):
        with pytest.raises(UnknownJobError):
            client.submit({"type": "decompress", "job": "j999999-x"})


class TestAdmissionControl:
    def test_queue_full_rejects(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1,
                                 max_queue=2, start=False)
        try:
            c = ServiceClient(svc)
            c.submit(dict(REQUEST))
            c.submit(dict(REQUEST, seed=1))
            with pytest.raises(QueueFullError) as exc:
                c.submit(dict(REQUEST, seed=2))
            assert exc.value.http_status == 429
            # the rejected job leaves no trace
            assert svc.queue.depth == 2
            assert len(svc.jobs()) == 2
        finally:
            svc.close(drain=False)

    def test_rate_limit_rejects(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1,
                                 max_queue=32, rate_limit=0.001,
                                 rate_burst=2, start=False)
        try:
            c = ServiceClient(svc, client="hammer")
            c.submit(dict(REQUEST))
            c.submit(dict(REQUEST, seed=1))
            with pytest.raises(RateLimitedError):
                c.submit(dict(REQUEST, seed=2))
            # other clients are unaffected
            ServiceClient(svc, client="other").submit(
                dict(REQUEST, seed=3))
        finally:
            svc.close(drain=False)

    def test_cancel_queued_job(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1,
                                 max_queue=8, start=False)
        try:
            c = ServiceClient(svc)
            job = c.submit(dict(REQUEST))
            cancelled = c.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            assert svc.queue.depth == 0
            # cancelling an already-cancelled job is a no-op
            assert c.cancel(job["id"])["state"] == "cancelled"
        finally:
            svc.close(drain=False)

    def test_cancel_done_job_rejected(self, service, client):
        job = client.submit(dict(REQUEST))
        client.wait(job["id"])
        with pytest.raises(ServiceError, match="only queued"):
            client.cancel(job["id"])


class TestLifecycle:
    def test_drain_finishes_queued_work(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1,
                                 max_queue=8, start=False)
        c = ServiceClient(svc)
        jobs = [c.submit(dict(REQUEST, seed=s)) for s in range(3)]
        svc.start()
        svc.close(drain=True)
        for job in jobs:
            assert svc.job(job["id"]).state == "done"

    def test_draining_rejects_new_submissions(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1)
        svc.close()
        with pytest.raises(ServiceClosedError) as exc:
            ServiceClient(svc).submit(dict(REQUEST))
        assert exc.value.http_status == 503

    def test_close_is_idempotent(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1)
        svc.close()
        svc.close()

    def test_close_without_drain_cancels_queued(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1,
                                 max_queue=8, start=False)
        c = ServiceClient(svc)
        job = c.submit(dict(REQUEST))
        svc.close(drain=False)
        assert svc.job(job["id"]).state == "cancelled"

    def test_owned_session_is_closed(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1)
        svc.close()
        # idempotent-by-contract close; a second explicit close of the
        # released session must also be harmless
        svc.session.close()


class TestObservability:
    def test_health_shape(self, service, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 2
        assert health["queue_capacity"] == 8
        assert health["store_writable"] is True
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "cancelled"}

    def test_health_reports_draining(self, tmp_path):
        svc = CompressionService(tmp_path / "cache", workers=1)
        svc.close()
        assert svc.health()["status"] == "draining"

    def test_metrics_text_has_core_families(self, service, client):
        job = client.submit(dict(REQUEST))
        client.wait(job["id"])
        text = client.metrics_text()
        for family in ("repro_jobs_submitted_total",
                       "repro_jobs_completed_total",
                       "repro_queue_depth", "repro_jobs_inflight",
                       "repro_cache_hits_total", "repro_job_seconds",
                       "repro_bytes_out_total", "repro_jobs"):
            assert f"# TYPE {family} " in text, family
        assert 'repro_jobs_completed_total{state="done",' \
            'type="compress"} 1' in text

    def test_unknown_job_raises(self, client):
        with pytest.raises(UnknownJobError):
            client.job("j000099-missing")
