"""Metrics instruments and the Prometheus text exposition format."""

import threading

import pytest

from repro.service.telemetry import (Counter, Gauge, Histogram,
                                     METRICS_CONTENT_TYPE,
                                     MetricsRegistry)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("jobs_total", "jobs")
        c.inc()
        c.inc(2, type="compress")
        assert c.value() == 1
        assert c.value(type="compress") == 2

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("x", "").inc(-1)

    def test_render_sorts_label_sets(self):
        c = Counter("jobs_total", "jobs")
        c.inc(type="b")
        c.inc(type="a")
        lines = c.render()
        assert lines == ['jobs_total{type="a"} 1',
                         'jobs_total{type="b"} 1']

    def test_concurrent_increments_are_lossless(self):
        c = Counter("hits", "")
        threads = [threading.Thread(
            target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_callback_gauge_samples_at_render(self):
        level = {"n": 1}
        g = Gauge("depth", "", callback=lambda: level["n"])
        assert g.render() == ["depth 1"]
        level["n"] = 7
        assert g.render() == ["depth 7"]
        assert g.value() == 7

    def test_labelled_gauge(self):
        g = Gauge("jobs", "")
        g.set(3, state="queued")
        assert 'jobs{state="queued"} 3' in g.render()


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("seconds", "", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        lines = h.render()
        assert 'seconds_bucket{le="0.1"} 1' in lines
        assert 'seconds_bucket{le="1"} 3' in lines
        assert 'seconds_bucket{le="10"} 4' in lines
        assert 'seconds_bucket{le="+Inf"} 4' in lines
        assert "seconds_count 4" in lines
        assert any(line.startswith("seconds_sum") for line in lines)

    def test_labelled_series_are_independent(self):
        h = Histogram("seconds", "", buckets=(1.0,))
        h.observe(0.5, codec="a")
        h.observe(0.5, codec="b")
        assert h.count(codec="a") == 1
        assert h.count(codec="b") == 1

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", "", buckets=())


class TestRegistry:
    def test_create_or_return_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a", "help") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a", "")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a", "")

    def test_render_emits_help_type_and_samples(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "b things").inc()
        reg.gauge("a_level", "a level").set(2)
        text = reg.render()
        lines = text.splitlines()
        # instruments render name-sorted, each with HELP + TYPE
        assert lines[0] == "# HELP a_level a level"
        assert lines[1] == "# TYPE a_level gauge"
        assert lines[2] == "a_level 2"
        assert "# TYPE b_total counter" in lines
        assert "b_total 1" in lines
        assert text.endswith("\n")

    def test_content_type_is_prometheus_text(self):
        assert METRICS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in METRICS_CONTENT_TYPE

    def test_escaping_in_label_values(self):
        c = Counter("x", "")
        c.inc(path='a"b\\c\nd')
        rendered = c.render()[0]
        assert '\\"' in rendered and "\\\\" in rendered \
            and "\\n" in rendered
