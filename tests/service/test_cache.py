"""Content-addressed result cache: LRU bounds, atomicity, restart
adoption, and the hit/miss counter contract."""

import os

import pytest

from repro.service.cache import ResultCache


def _digest(i):
    return f"{i:064x}"


class TestBasics:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_path(_digest(1)) is None
        path = cache.put(_digest(1), b"payload")
        assert cache.get_path(_digest(1)) == path
        assert cache.get_bytes(_digest(1)) == b"payload"
        assert cache.stats() == {"hits": 2, "misses": 1,
                                 "entries": 1, "bytes": 7}

    def test_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.put(_digest(1), b"data")
        b = cache.put(_digest(1), b"data")
        assert a == b and len(cache) == 1

    def test_objects_live_under_objects_dir(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(_digest(1), b"x")
        assert os.path.dirname(path) == str(tmp_path / "objects")
        assert path.endswith(".bin")

    def test_peek_does_not_count(self, tmp_path):
        """Result streaming must not inflate the admission hit/miss
        counters (they feed the cache-efficiency metrics)."""
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), b"x")
        assert cache.peek_path(_digest(1)) is not None
        assert cache.peek_path(_digest(2)) is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_bad_digest_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "../escape", "a/b", "a.b"):
            with pytest.raises(ValueError, match="bad cache digest"):
                cache.put(bad, b"x")

    def test_writable_probe(self, tmp_path):
        assert ResultCache(tmp_path).writable()


class TestEviction:
    def test_entry_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(4):
            cache.put(_digest(i), bytes([i]))
        assert len(cache) == 2
        assert _digest(0) not in cache and _digest(1) not in cache
        assert _digest(2) in cache and _digest(3) in cache

    def test_byte_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=100)
        cache.put(_digest(0), b"a" * 60)
        cache.put(_digest(1), b"b" * 60)
        assert _digest(0) not in cache
        assert cache.stats()["bytes"] == 60

    def test_eviction_unlinks_objects(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        first = cache.put(_digest(0), b"x")
        cache.put(_digest(1), b"y")
        assert not os.path.exists(first)

    def test_get_bumps_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        cache.put(_digest(0), b"x")
        cache.put(_digest(1), b"y")
        cache.get_path(_digest(0))  # 0 is now most recent
        cache.put(_digest(2), b"z")
        assert _digest(0) in cache and _digest(1) not in cache

    def test_oversized_entry_survives_its_own_insert(self, tmp_path):
        """An entry larger than max_bytes still lands (and is the only
        survivor) — inserting must never evict itself."""
        cache = ResultCache(tmp_path, max_bytes=10)
        cache.put(_digest(0), b"small")
        cache.put(_digest(1), b"much too large for the bound")
        assert _digest(1) in cache and len(cache) == 1


class TestPersistence:
    def test_restart_adopts_existing_objects(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put(_digest(1), b"persisted")
        second = ResultCache(tmp_path)
        assert _digest(1) in second
        assert second.get_bytes(_digest(1)) == b"persisted"
        assert second.stats()["bytes"] == len(b"persisted")

    def test_restart_respects_bounds(self, tmp_path):
        first = ResultCache(tmp_path)
        for i in range(6):
            first.put(_digest(i), bytes(4))
        second = ResultCache(tmp_path, max_entries=3)
        assert len(second) == 3

    def test_vanished_object_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(_digest(1), b"x")
        os.unlink(path)  # external cleanup under a live cache
        assert cache.get_path(_digest(1)) is None
        assert len(cache) == 0

    def test_no_partial_objects_on_failed_write(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), b"ok")
        leftovers = [n for n in os.listdir(cache.objects_dir)
                     if n.endswith(".tmp")]
        assert leftovers == []
