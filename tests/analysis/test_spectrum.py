"""Energy-spectrum analysis tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (radial_energy_spectrum, spectral_relative_error,
                            spectrum_slope)
from repro.data import JHTDBSynthetic


class TestRadialSpectrum:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), h=st.integers(8, 32),
           w=st.integers(8, 32))
    def test_parseval_partition(self, seed, h, w):
        """sum(E) equals the mean square of the field exactly."""
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((h, w))
        _, e = radial_energy_spectrum(u)
        assert np.isclose(e.sum(), (u ** 2).mean(), rtol=1e-10)

    def test_stack_averages_frames(self):
        rng = np.random.default_rng(0)
        stack = rng.standard_normal((4, 16, 16))
        _, e_stack = radial_energy_spectrum(stack)
        singles = [radial_energy_spectrum(f)[1] for f in stack]
        np.testing.assert_allclose(e_stack, np.mean(singles, axis=0))

    def test_pure_mode_lands_in_its_band(self):
        h = w = 32
        ys, xs = np.mgrid[0:h, 0:w]
        k0 = 5
        u = np.cos(2 * np.pi * k0 * xs / w)
        k, e = radial_energy_spectrum(u)
        assert e.argmax() == k0
        assert e[k0] > 0.99 * e.sum()

    def test_constant_field_is_all_dc(self):
        k, e = radial_energy_spectrum(np.full((8, 8), 3.0))
        assert np.isclose(e[0], 9.0)
        assert np.allclose(e[1:], 0.0)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            radial_energy_spectrum(np.zeros(8))
        with pytest.raises(ValueError):
            radial_energy_spectrum(np.zeros((2, 2, 2, 2)))


class TestSpectralError:
    def test_identical_fields_zero_error(self):
        rng = np.random.default_rng(1)
        u = rng.standard_normal((16, 16))
        err = spectral_relative_error(u, u.copy())
        assert np.allclose(err, 0.0)

    def test_spurious_energy_in_empty_band_is_inf(self):
        h = w = 32
        ys, xs = np.mgrid[0:h, 0:w]
        orig = np.cos(2 * np.pi * 3 * xs / w)
        recon = orig + 0.5 * np.cos(2 * np.pi * 9 * xs / w)
        err = spectral_relative_error(orig, recon)
        assert np.isinf(err[9])
        assert err[3] < 1e-10

    def test_k_max_truncates(self):
        rng = np.random.default_rng(2)
        u = rng.standard_normal((16, 16))
        err = spectral_relative_error(u, u, k_max=4)
        assert err.shape == (5,)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            spectral_relative_error(np.zeros((8, 8)), np.zeros((8, 9)))


class TestSpectrumSlope:
    def test_recovers_powerlaw(self):
        k = np.arange(64)
        e = np.zeros(64)
        e[1:] = k[1:] ** (-5.0 / 3.0)
        slope = spectrum_slope(k, e, (2, 30))
        assert np.isclose(slope, -5.0 / 3.0, atol=1e-6)

    def test_jhtdb_synthetic_inertial_range(self):
        """The turbulence generator carries its k^-5/3 inertial range."""
        frames = JHTDBSynthetic(t=4, h=64, w=64, seed=0).frames(0)
        k, e = radial_energy_spectrum(frames)
        slope = spectrum_slope(k, e, (3, 16))
        assert -2.6 < slope < -1.0  # inertial-range-like decay

    def test_rejects_degenerate_ranges(self):
        k = np.arange(16)
        e = np.ones(16)
        with pytest.raises(ValueError):
            spectrum_slope(k, e, (0, 8))
        with pytest.raises(ValueError):
            spectrum_slope(k, e, (15, 15))  # single band, no fit
