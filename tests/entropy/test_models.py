"""Factorized-prior and Gaussian-conditional entropy-model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (FactorizedDensity, GaussianConditional, SCALE_MIN,
                           build_scale_table, gaussian_likelihood)
from repro.nn import Tensor
from repro.nn.optim import Adam


class TestGaussianLikelihood:
    def test_sums_to_one_over_integers(self):
        """Bin masses over a wide integer support sum to ~1."""
        ks = np.arange(-50, 51, dtype=np.float64)
        mu = np.zeros_like(ks) + 0.3
        sigma = np.full_like(ks, 2.0)
        like = gaussian_likelihood(Tensor(ks), Tensor(mu),
                                   Tensor(sigma)).numpy()
        # each bin is floored at 1e-9, so allow that much slack per bin
        assert like.sum() == pytest.approx(1.0, abs=1e-6)

    def test_peak_at_mean(self):
        ks = np.arange(-5, 6, dtype=np.float64)
        like = gaussian_likelihood(
            Tensor(ks), Tensor(np.zeros(11)), Tensor(np.ones(11))).numpy()
        assert np.argmax(like) == 5

    def test_scale_lower_bound_applied(self):
        like = gaussian_likelihood(
            Tensor(np.zeros(1)), Tensor(np.zeros(1)),
            Tensor(np.full(1, 1e-8))).numpy()
        # with sigma clamped to SCALE_MIN the central mass is finite < 1
        assert like[0] <= 1.0
        assert np.isfinite(like[0])

    def test_gradients_flow_to_mu_sigma(self):
        y = Tensor(np.array([1.0, -2.0]))
        mu = Tensor(np.array([0.5, 0.0]), requires_grad=True)
        sigma = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        bits = GaussianConditional().bits(y, mu, sigma)
        bits.backward()
        assert mu.grad is not None and np.all(np.isfinite(mu.grad))
        assert sigma.grad is not None and np.all(np.isfinite(sigma.grad))


class TestGaussianConditionalCodec:
    def make_data(self, seed=0, shape=(2, 4, 6, 6)):
        rng = np.random.default_rng(seed)
        mu = rng.normal(0, 2, size=shape)
        sigma = rng.uniform(0.2, 4.0, size=shape)
        y = np.rint(mu + rng.normal(size=shape) * sigma)
        return y, mu, sigma

    def test_roundtrip(self):
        y, mu, sigma = self.make_data()
        gc = GaussianConditional()
        data, header = gc.compress(y, mu, sigma)
        back = gc.decompress(data, mu, sigma, header)
        np.testing.assert_array_equal(back, y)

    def test_rate_tracks_estimate(self):
        """Actual coded size is close to the model's bit estimate."""
        y, mu, sigma = self.make_data(seed=1, shape=(1, 8, 16, 16))
        gc = GaussianConditional()
        data, _ = gc.compress(y, mu, sigma)
        est = gc.bits(Tensor(y), Tensor(mu), Tensor(sigma)).item()
        actual = len(data) * 8
        # mean-centering approximation + table quantization overhead
        assert actual <= est * 1.30 + 128
        assert actual >= est * 0.5

    def test_small_sigma_roundtrip(self):
        shape = (1, 2, 4, 4)
        mu = np.zeros(shape)
        sigma = np.full(shape, 1e-6)
        y = np.zeros(shape)
        gc = GaussianConditional()
        data, header = gc.compress(y, mu, sigma)
        back = gc.decompress(data, mu, sigma, header)
        np.testing.assert_array_equal(back, y)

    def test_scale_table_monotone(self):
        table = build_scale_table()
        assert table[0] == pytest.approx(SCALE_MIN)
        assert np.all(np.diff(table) > 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_gaussian_codec_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    shape = (1, rng.integers(1, 4), rng.integers(2, 6), rng.integers(2, 6))
    mu = rng.normal(0, 3, size=shape)
    sigma = rng.uniform(0.05, 8.0, size=shape)
    y = np.rint(mu + rng.normal(size=shape) * sigma)
    gc = GaussianConditional()
    data, header = gc.compress(y, mu, sigma)
    back = gc.decompress(data, mu, sigma, header)
    np.testing.assert_array_equal(back, y)


class TestFactorizedDensity:
    def test_cdf_monotone_in_x(self):
        fd = FactorizedDensity(channels=3)
        xs = np.linspace(-20, 20, 101)
        grid = Tensor(np.broadcast_to(xs, (3, 1, 101)).copy())
        cdf = fd.cdf(grid).numpy()
        assert np.all(np.diff(cdf, axis=-1) >= -1e-12)
        assert np.all(cdf >= 0) and np.all(cdf <= 1)

    def test_likelihood_shape_and_range(self):
        fd = FactorizedDensity(channels=4)
        z = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3, 3)))
        like = fd.likelihood(z)
        assert like.shape == z.shape
        vals = like.numpy()
        assert np.all(vals > 0) and np.all(vals <= 1 + 1e-9)

    def test_channel_mismatch_raises(self):
        fd = FactorizedDensity(channels=4)
        with pytest.raises(ValueError):
            fd.likelihood(Tensor(np.zeros((1, 3, 2, 2))))

    def test_training_reduces_bits(self):
        """Fitting the prior to data lowers the estimated bit-rate."""
        rng = np.random.default_rng(0)
        fd = FactorizedDensity(channels=2, init_scale=10.0)
        data = rng.normal(0, 0.5, size=(8, 2, 4, 4))  # much narrower
        opt = Adam(fd.parameters(), lr=5e-2)

        def bits():
            noisy = Tensor(data + rng.uniform(-0.5, 0.5, size=data.shape))
            return fd.bits(noisy)

        before = bits().item()
        for _ in range(60):
            opt.zero_grad()
            loss = bits()
            loss.backward()
            opt.step()
        after = bits().item()
        assert after < before * 0.9

    def test_codec_roundtrip(self):
        rng = np.random.default_rng(3)
        fd = FactorizedDensity(channels=3)
        z = np.rint(rng.normal(0, 3, size=(2, 3, 5, 5)))
        data, header = fd.compress(z)
        back = fd.decompress(data, z.shape, header)
        np.testing.assert_array_equal(back, z)

    def test_codec_rate_tracks_estimate(self):
        rng = np.random.default_rng(4)
        fd = FactorizedDensity(channels=2)
        z = np.rint(rng.normal(0, 2, size=(4, 2, 8, 8)))
        data, header = fd.compress(z)
        est = fd.bits(Tensor(z)).item()
        assert len(data) * 8 <= est * 1.3 + 128

    def test_codec_extreme_values(self):
        fd = FactorizedDensity(channels=1)
        z = np.array([[[[-40.0, 40.0], [0.0, 1.0]]]])
        data, header = fd.compress(z)
        back = fd.decompress(data, z.shape, header)
        np.testing.assert_array_equal(back, z)


class TestModelTableMemoization:
    """The quantized coding tables of both models are cached in the
    process TableCache — repeat compress calls with identical weights
    and support must reuse them, and stale weights must not."""

    def test_factorized_tables_cached_across_calls(self):
        from repro.entropy import get_table_cache

        rng = np.random.default_rng(5)
        fd = FactorizedDensity(channels=2)
        z = np.rint(rng.normal(0, 2, size=(2, 2, 6, 6)))
        cache = get_table_cache()
        cache.clear()
        data, header = fd.compress(z)
        before = cache.stats()["hits"]
        # decompress + a second window with the same support reuse it
        np.testing.assert_array_equal(
            fd.decompress(data, z.shape, header), z)
        fd.compress(z)
        assert cache.stats()["hits"] >= before + 2

    def test_factorized_cache_keys_on_weights(self):
        rng = np.random.default_rng(6)
        fd = FactorizedDensity(channels=2)
        z = np.rint(rng.normal(0, 2, size=(2, 2, 6, 6)))
        t1 = fd._integer_cdf_tables(-5, 5)
        # perturb a weight: the cached entry must not be reused
        p = fd.parameters()[0]
        p.data = p.data + 0.25
        t2 = fd._integer_cdf_tables(-5, 5)
        assert not np.array_equal(t1, t2)
        data, header = fd.compress(z)
        np.testing.assert_array_equal(
            fd.decompress(data, z.shape, header), z)

    def test_gaussian_tables_cached_across_calls(self):
        from repro.entropy import get_table_cache

        gc = GaussianConditional()
        cache = get_table_cache()
        cache.clear()
        t1 = gc._offset_tables(12)
        before = cache.stats()["hits"]
        t2 = gc._offset_tables(12)
        assert t2 is t1  # same cached object
        assert cache.stats()["hits"] == before + 1
        # a different scale table must not collide
        other = GaussianConditional(build_scale_table(levels=8))
        t3 = other._offset_tables(12)
        assert t3.shape != t1.shape
