"""Unit tests for the lane-vectorized interleaved rANS coder."""

import numpy as np
import pytest

from repro.entropy.coder import pmf_to_cumulative
from repro.entropy.rans import encode_symbols_rans
from repro.entropy.vrans import (MAX_LANES, decode_symbols_vrans,
                                 encode_symbols_vrans, lane_count)


def _case(seed, n, n_ctx=5, alphabet=17, total=None):
    rng = np.random.default_rng(seed)
    pmf = rng.random((n_ctx, alphabet)) + 0.01
    tables = (pmf_to_cumulative(pmf) if total is None
              else pmf_to_cumulative(pmf, total=total))
    contexts = rng.integers(0, n_ctx, size=n)
    symbols = rng.integers(0, alphabet, size=n)
    return symbols, tables, contexts


class TestVransRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 63, 64, 65, 511, 512,
                                   513, 1000, 4096, 5000])
    def test_roundtrip_across_lane_boundaries(self, n):
        symbols, tables, contexts = _case(n, n)
        data = encode_symbols_vrans(symbols, tables, contexts)
        out = decode_symbols_vrans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    @pytest.mark.parametrize("lanes", [1, 2, 3, 8, 64, MAX_LANES])
    def test_explicit_lane_width(self, lanes):
        symbols, tables, contexts = _case(1, 700)
        data = encode_symbols_vrans(symbols, tables, contexts,
                                    lanes=lanes)
        assert data[0] == lanes  # header records the width
        out = decode_symbols_vrans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_non_power_of_two_totals(self):
        # exercises the vectorized b-uniqueness rescale on both sides
        symbols, tables, contexts = _case(2, 800, total=1000)
        data = encode_symbols_vrans(symbols, tables, contexts)
        out = decode_symbols_vrans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_single_symbol_alphabet(self):
        tables = pmf_to_cumulative(np.ones((3, 1)))
        contexts = np.random.default_rng(3).integers(0, 3, size=200)
        symbols = np.zeros(200, dtype=np.int64)
        data = encode_symbols_vrans(symbols, tables, contexts)
        out = decode_symbols_vrans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_mixed_per_row_totals_fallback(self):
        # rows with different totals cannot use the flattened
        # searchsorted key; the masked-comparison fallback must agree
        tables = np.array([[0, 1, 3], [0, 2, 4], [0, 3, 7]],
                          dtype=np.int64)
        rng = np.random.default_rng(4)
        contexts = rng.integers(0, 3, size=600)
        symbols = rng.integers(0, 2, size=600)
        data = encode_symbols_vrans(symbols, tables, contexts)
        out = decode_symbols_vrans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_empty_stream(self):
        _, tables, _ = _case(5, 10)
        empty = np.zeros(0, dtype=np.int64)
        data = encode_symbols_vrans(empty, tables, empty)
        out = decode_symbols_vrans(data, tables, empty)
        assert out.size == 0

    def test_size_close_to_scalar_rans(self):
        """Lane interleaving costs only the per-lane state header."""
        symbols, tables, contexts = _case(6, 4000)
        v = encode_symbols_vrans(symbols, tables, contexts)
        r = encode_symbols_rans(symbols, tables, contexts)
        lanes = v[0]
        assert len(v) <= len(r) + 1 + 8 * lanes + 4 * lanes

    def test_lane_count_is_deterministic(self):
        assert lane_count(10) == 1
        assert lane_count(1000) == 7
        assert lane_count(100000) == 64
        # the state header stays a bounded fraction of the payload
        assert all(8 * lane_count(n) <= max(9, n // 12)
                   for n in range(0, 20000, 37))


class TestVransValidation:
    def test_rejects_out_of_range_symbols(self):
        symbols, tables, contexts = _case(7, 10)
        bad = symbols.copy()
        bad[0] = tables.shape[1]  # >= alphabet
        with pytest.raises(ValueError):
            encode_symbols_vrans(bad, tables, contexts)

    def test_rejects_bad_contexts(self):
        symbols, tables, contexts = _case(8, 10)
        for bad_value in (-1, tables.shape[0]):
            bad = contexts.copy()
            bad[3] = bad_value
            with pytest.raises(ValueError, match="context id"):
                encode_symbols_vrans(symbols, tables, bad)
            with pytest.raises(ValueError, match="context id"):
                decode_symbols_vrans(b"\x01" + b"\x00" * 8, tables, bad)

    def test_rejects_length_mismatch(self):
        symbols, tables, contexts = _case(9, 10)
        with pytest.raises(ValueError):
            encode_symbols_vrans(symbols[:5], tables, contexts)

    def test_rejects_bad_lane_request(self):
        symbols, tables, contexts = _case(10, 10)
        for lanes in (0, MAX_LANES + 1):
            with pytest.raises(ValueError):
                encode_symbols_vrans(symbols, tables, contexts,
                                     lanes=lanes)


class TestVransCorruption:
    def _encoded(self, n=900):
        symbols, tables, contexts = _case(11, n)
        data = encode_symbols_vrans(symbols, tables, contexts)
        return symbols, tables, contexts, data

    def test_truncated_words_raise(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(ValueError, match="corrupted vrans"):
            decode_symbols_vrans(data[:-4], tables, contexts)

    def test_trailing_words_raise(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(ValueError, match="corrupted vrans"):
            decode_symbols_vrans(data + b"\x00\x00\x00\x00", tables,
                                 contexts)

    def test_misaligned_tail_raises(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(ValueError, match="truncated"):
            decode_symbols_vrans(data + b"\x00", tables, contexts)

    def test_empty_or_headerless_raise(self):
        _, tables, contexts, _ = self._encoded()
        with pytest.raises(ValueError):
            decode_symbols_vrans(b"", tables, contexts)
        with pytest.raises(ValueError):
            decode_symbols_vrans(b"\x00", tables, contexts)  # 0 lanes
        with pytest.raises(ValueError):
            decode_symbols_vrans(b"\x04" + b"\x00" * 8, tables,
                                 contexts)  # 4 lanes, 1 state

    def test_flipped_state_raises(self):
        _, tables, contexts, data = self._encoded()
        mutated = bytearray(data)
        mutated[5] ^= 0xFF  # inside the lane-state header
        with pytest.raises(ValueError, match="corrupted vrans"):
            decode_symbols_vrans(bytes(mutated), tables, contexts)

    def test_mixed_total_slot_out_of_table_range_raises(self):
        """The mixed-total fallback must bounds-check the decoded slot
        *before* fancy-indexing the cumulative rows.

        A table whose rows do not start at zero leaves slots below
        ``row[0]`` unclaimed; a state that lands there yields symbol
        index -1, and ``cumulative[ctx, s + 1]`` would silently wrap
        to a valid-looking row entry and decode garbage.  It must be
        an EntropyDecodeError instead."""
        import struct

        from repro.entropy.coder import EntropyDecodeError

        # mixed totals (4 vs 8) force the masked-row fallback; row 0
        # leaves slot 0 unclaimed (cum starts at 1, violating the row
        # contract the encoder normally guarantees)
        tables = np.array([[1, 2, 4], [0, 3, 8]], dtype=np.int64)
        contexts = np.zeros(1, dtype=np.int64)
        # single lane whose state slot (x % 4 == 0) falls below row[0]
        state = (1 << 31) | 0  # slot 0 under total 4
        data = struct.pack("<B", 1) + struct.pack("<Q", state)
        with pytest.raises(EntropyDecodeError,
                           match="outside the cumulative table"):
            decode_symbols_vrans(data, tables, contexts)
