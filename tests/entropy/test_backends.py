"""Pluggable entropy-backend suite.

Covers the registry contract, the process-default scoping, the
property-based cross-backend round-trip guarantee (random tables,
non-power-of-two totals, single-symbol alphabets), bit-identical
legacy behaviour of the arithmetic default, strict rANS end-of-stream
checking, and the byte-identical fast path of ``BitWriter.write_run``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (DEFAULT_BACKEND, BitWriter, EntropyBackend,
                           backend_from_tag, decode_symbols,
                           decode_symbols_rans, encode_symbols,
                           encode_symbols_rans, get_backend,
                           get_default_backend, list_backends,
                           register_backend, set_default_backend,
                           using_backend)
from repro.entropy.coder import pmf_to_cumulative
from repro.entropy.tablecoder import (encode_symbols_trans,
                                      get_table_cache)
from repro.entropy.vrans import encode_symbols_vrans

ALL_BACKENDS = ("arithmetic", "rans", "trans", "vrans")


def _random_stream(seed, n, n_ctx, alphabet, total=None):
    rng = np.random.default_rng(seed)
    pmf = rng.random((n_ctx, alphabet)) + 0.01
    total = total or max(alphabet, 1 << 16)
    tables = pmf_to_cumulative(pmf, total=total)
    contexts = rng.integers(0, n_ctx, size=n)
    symbols = rng.integers(0, alphabet, size=n)
    return symbols, tables, contexts


class TestRegistry:
    def test_all_backends_registered(self):
        assert list_backends() == sorted(ALL_BACKENDS)

    def test_get_backend_resolves_names_and_instances(self):
        for name in ALL_BACKENDS:
            backend = get_backend(name)
            assert backend.name == name
            assert get_backend(backend) is backend
            assert get_backend(name.upper()) is backend  # normalized

    def test_tags_are_unique_one_byte(self):
        tags = [get_backend(n).tag for n in ALL_BACKENDS]
        assert len(set(tags)) == len(tags)
        assert all(1 <= t <= 255 for t in tags)

    def test_tag_roundtrip(self):
        for name in ALL_BACKENDS:
            backend = get_backend(name)
            assert backend_from_tag(backend.tag) is backend

    def test_legacy_tag_is_arithmetic(self):
        assert backend_from_tag(0).name == "arithmetic"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="arithmetic"):
            get_backend("huffman")

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="tag"):
            backend_from_tag(200)

    def test_register_rejects_collisions(self):
        class Clash(EntropyBackend):
            name = "vrans"
            tag = 77

        class TagClash(EntropyBackend):
            name = "other"
            tag = get_backend("arithmetic").tag

        with pytest.raises(ValueError):
            register_backend(Clash())
        with pytest.raises(ValueError):
            register_backend(TagClash())


class TestDefaultScoping:
    def test_default_is_arithmetic(self):
        assert get_default_backend().name == DEFAULT_BACKEND == "arithmetic"

    def test_set_and_restore(self):
        previous = set_default_backend("vrans")
        try:
            assert previous == "arithmetic"
            assert get_default_backend().name == "vrans"
        finally:
            set_default_backend(previous)
        assert get_default_backend().name == "arithmetic"

    def test_using_backend_scopes_and_restores_on_error(self):
        with using_backend("rans") as backend:
            assert backend.name == "rans"
            assert get_default_backend().name == "rans"
            with using_backend("vrans"):
                assert get_default_backend().name == "vrans"
            assert get_default_backend().name == "rans"
        assert get_default_backend().name == "arithmetic"
        with pytest.raises(RuntimeError):
            with using_backend("vrans"):
                raise RuntimeError("boom")
        assert get_default_backend().name == "arithmetic"

    def test_using_none_is_a_no_op(self):
        with using_backend(None) as backend:
            assert backend.name == "arithmetic"

    def test_non_lifo_same_name_scopes(self):
        """Engine thread pools hold one scope per concurrent window
        job and exit in completion order — exits must not restore
        stale values mid-sweep or leak the name afterwards."""
        first = using_backend("vrans")
        second = using_backend("vrans")
        first.__enter__()
        second.__enter__()
        first.__exit__(None, None, None)  # job 1 finishes first
        # job 2 is still compressing: the selection must survive
        assert get_default_backend().name == "vrans"
        second.__exit__(None, None, None)
        assert get_default_backend().name == "arithmetic"

    def test_scopes_shadow_the_base_default(self):
        previous = set_default_backend("rans")
        try:
            with using_backend("vrans"):
                assert get_default_backend().name == "vrans"
            assert get_default_backend().name == "rans"
        finally:
            set_default_backend(previous)
        assert get_default_backend().name == "arithmetic"

    def test_concurrent_scopes_stress_threads(self):
        """Hammer same-name scopes from a pool: the default must read
        'vrans' whenever at least one scope is active and fall back to
        arithmetic once all exit."""
        import threading

        errors = []
        barrier = threading.Barrier(8)

        def work():
            try:
                barrier.wait(timeout=5)
                for _ in range(200):
                    with using_backend("vrans"):
                        if get_default_backend().name != "vrans":
                            errors.append("lost selection mid-scope")
                            return
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert get_default_backend().name == "arithmetic"


class TestLegacyBitIdentity:
    """The named backends must be the exact historical functions."""

    def test_arithmetic_backend_matches_legacy_bytes(self):
        symbols, tables, contexts = _random_stream(0, 700, 4, 19)
        backend = get_backend("arithmetic")
        assert (backend.encode(symbols, tables, contexts)
                == encode_symbols(symbols, tables, contexts))

    def test_rans_backend_matches_module_bytes(self):
        symbols, tables, contexts = _random_stream(1, 700, 4, 19)
        backend = get_backend("rans")
        assert (backend.encode(symbols, tables, contexts)
                == encode_symbols_rans(symbols, tables, contexts))

    def test_untagged_stream_decodes_via_arithmetic(self):
        """A pre-backend stream (raw encode_symbols bytes) decodes
        bit-identically through the default selection path."""
        symbols, tables, contexts = _random_stream(2, 400, 3, 11)
        legacy = encode_symbols(symbols, tables, contexts)
        out = get_backend(DEFAULT_BACKEND).decode(legacy, tables,
                                                  contexts)
        np.testing.assert_array_equal(out, symbols)


class TestCrossBackendProperty:
    """Random tables — including non-power-of-two totals and
    single-symbol alphabets — must round-trip identically under every
    registered backend."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), n=st.integers(0, 400),
           n_ctx=st.integers(1, 6), alphabet=st.integers(1, 40),
           pad=st.integers(0, 999))
    def test_roundtrip_all_backends(self, seed, n, n_ctx, alphabet,
                                    pad):
        total = alphabet + pad  # frequently not a power of two
        symbols, tables, contexts = _random_stream(seed, n, n_ctx,
                                                   alphabet, total)
        for name in ALL_BACKENDS:
            backend = get_backend(name)
            data = backend.encode(symbols, tables, contexts)
            out = backend.decode(data, tables, contexts)
            np.testing.assert_array_equal(out, symbols, err_msg=name)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 9))
    def test_vrans_agrees_with_scalar_backends(self, seed):
        symbols, tables, contexts = _random_stream(seed, 300, 4, 23,
                                                   total=5000)
        decoded = {
            name: get_backend(name).decode(
                get_backend(name).encode(symbols, tables, contexts),
                tables, contexts)
            for name in ALL_BACKENDS}
        for name, out in decoded.items():
            np.testing.assert_array_equal(out, symbols, err_msg=name)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), n=st.integers(0, 300),
           n_ctx=st.integers(1, 5), alphabet=st.integers(1, 12))
    def test_mixed_per_context_totals(self, seed, n, n_ctx, alphabet):
        """Rows with *different* totals (vrans's slow path, trans's
        LUT rescale) must round-trip under every backend."""
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 50, size=(n_ctx, alphabet))
        tables = np.concatenate(
            [np.zeros((n_ctx, 1), dtype=np.int64),
             np.cumsum(counts, axis=1)], axis=1)
        contexts = rng.integers(0, n_ctx, size=n)
        symbols = rng.integers(0, alphabet, size=n)
        for name in ALL_BACKENDS:
            backend = get_backend(name)
            data = backend.encode(symbols, tables, contexts)
            out = backend.decode(data, tables, contexts)
            np.testing.assert_array_equal(out, symbols, err_msg=name)

    def test_cold_and_warm_cache_are_byte_identical(self):
        """The cache-using backends must produce the same stream
        whether the table entry is freshly built or reused."""
        symbols, tables, contexts = _random_stream(12, 500, 4, 19,
                                                   total=777)
        for name in ("rans", "trans"):
            backend = get_backend(name)
            get_table_cache().clear()
            cold = backend.encode(symbols, tables, contexts)
            before = get_table_cache().stats()["hits"]
            warm = backend.encode(symbols, tables, contexts)
            assert cold == warm, name
            # the second encode reused the entry built by the first
            assert get_table_cache().stats()["hits"] > before, name
            np.testing.assert_array_equal(
                backend.decode(warm, tables, contexts), symbols,
                err_msg=name)


class TestContextValidation:
    """Negative or oversized context ids must raise, not wrap."""

    def _stream(self):
        return _random_stream(3, 50, 4, 9)

    @pytest.mark.parametrize("bad_value", [-1, -7, 4, 99])
    def test_encode_rejects_bad_contexts(self, bad_value):
        symbols, tables, contexts = self._stream()
        contexts = contexts.copy()
        contexts[10] = bad_value
        for encode in (encode_symbols, encode_symbols_rans,
                       encode_symbols_vrans, encode_symbols_trans):
            with pytest.raises(ValueError, match="context id"):
                encode(symbols, tables, contexts)

    @pytest.mark.parametrize("bad_value", [-1, 4])
    def test_decode_rejects_bad_contexts(self, bad_value):
        symbols, tables, contexts = self._stream()
        streams = {name: get_backend(name).encode(symbols, tables,
                                                  contexts)
                   for name in ALL_BACKENDS}
        contexts = contexts.copy()
        contexts[10] = bad_value
        for name, data in streams.items():
            with pytest.raises(ValueError, match="context id"):
                get_backend(name).decode(data, tables, contexts)


class TestRansStrictEndOfStream:
    def _encoded(self):
        symbols, tables, contexts = _random_stream(4, 600, 4, 21)
        return (symbols, tables, contexts,
                encode_symbols_rans(symbols, tables, contexts))

    def test_trailing_garbage_raises(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(ValueError, match="corrupted rANS"):
            decode_symbols_rans(data + b"\x00\x00\x00\x00", tables,
                                contexts)

    def test_truncated_stream_raises(self):
        _, tables, contexts, data = self._encoded()
        assert len(data) > 12  # carries at least one word
        with pytest.raises(ValueError, match="corrupted rANS"):
            decode_symbols_rans(data[:-4], tables, contexts)

    def test_intact_stream_still_decodes(self):
        symbols, tables, contexts, data = self._encoded()
        out = decode_symbols_rans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)


class TestBitWriterRuns:
    """write_run's whole-byte fast path must stay byte-identical."""

    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(st.tuples(st.integers(0, 1),
                                  st.integers(0, 70)),
                        min_size=0, max_size=12))
    def test_write_run_matches_bitwise_reference(self, ops):
        fast = BitWriter()
        reference = BitWriter()
        for bit, count in ops:
            fast.write_run(bit, count)
            for _ in range(count):
                reference.write(bit)
        assert fast.getvalue() == reference.getvalue()
        assert len(fast) == len(reference)

    def test_long_runs_cover_byte_path(self):
        w = BitWriter()
        w.write(1)            # partial byte first
        w.write_run(0, 23)    # top-up + 2 whole bytes + stub
        w.write_run(1, 16)    # whole bytes on a byte boundary
        reference = BitWriter()
        for bit, count in ((1, 1), (0, 23), (1, 16)):
            for _ in range(count):
                reference.write(bit)
        assert w.getvalue() == reference.getvalue()
