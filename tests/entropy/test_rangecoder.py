"""Arithmetic coder unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.coder import pmf_to_cumulative
from repro.entropy.rangecoder import MAX_TOTAL


class TestBitIO:
    def test_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        w = BitWriter()
        for b in bits:
            w.write(b)
        r = BitReader(w.getvalue())
        assert [r.read() for _ in range(len(bits))] == bits

    def test_reads_zero_past_end(self):
        r = BitReader(b"\xff")
        vals = [r.read() for _ in range(16)]
        assert vals[:8] == [1] * 8
        assert vals[8:] == [0] * 8

    def test_len_counts_bits(self):
        w = BitWriter()
        for _ in range(11):
            w.write(1)
        assert len(w) == 11


def roundtrip(symbols, freqs):
    """Encode/decode ``symbols`` under the static table ``freqs``."""
    cum = np.concatenate([[0], np.cumsum(freqs)]).astype(np.int64)
    total = int(cum[-1])
    enc = ArithmeticEncoder()
    for s in symbols:
        enc.encode(int(cum[s]), int(cum[s + 1]), total)
    data = enc.finish()
    dec = ArithmeticDecoder(data)
    out = []
    for _ in symbols:
        target = dec.decode_target(total)
        s = int(np.searchsorted(cum, target, side="right")) - 1
        dec.advance(int(cum[s]), int(cum[s + 1]), total)
        out.append(s)
    return out, data


class TestArithmeticCoder:
    def test_simple_roundtrip(self):
        symbols = [0, 1, 2, 1, 0, 2, 2, 1]
        out, _ = roundtrip(symbols, [1, 2, 5])
        assert out == symbols

    def test_single_symbol_stream(self):
        out, data = roundtrip([3] * 100, [1, 1, 1, 97])
        assert out == [3] * 100
        # a highly probable symbol should compress well below 1 bit each
        assert len(data) < 100 // 8 + 8

    def test_skewed_matches_entropy(self):
        rng = np.random.default_rng(0)
        p = np.array([0.90, 0.05, 0.03, 0.02])
        n = 4000
        symbols = rng.choice(4, size=n, p=p)
        freqs = np.maximum((p * 2 ** 14).astype(int), 1)
        out, data = roundtrip(symbols.tolist(), freqs.tolist())
        assert out == symbols.tolist()
        entropy = -(p * np.log2(p)).sum()
        # within 5% + small constant of the source entropy
        assert len(data) * 8 <= entropy * n * 1.05 + 64

    def test_invalid_range_raises(self):
        enc = ArithmeticEncoder()
        with pytest.raises(ValueError):
            enc.encode(5, 5, 10)
        with pytest.raises(ValueError):
            enc.encode(0, 1, MAX_TOTAL * 2)

    def test_finish_twice_raises(self):
        enc = ArithmeticEncoder()
        enc.encode(0, 1, 2)
        enc.finish()
        with pytest.raises(RuntimeError):
            enc.finish()
        with pytest.raises(RuntimeError):
            enc.encode(0, 1, 2)

    def test_empty_stream(self):
        enc = ArithmeticEncoder()
        data = enc.finish()
        assert isinstance(data, bytes)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_roundtrip_property(data):
    """Random alphabet / frequencies / message always round-trips."""
    alphabet = data.draw(st.integers(2, 24), label="alphabet")
    freqs = data.draw(
        st.lists(st.integers(1, 500), min_size=alphabet, max_size=alphabet),
        label="freqs")
    n = data.draw(st.integers(0, 120), label="n")
    symbols = data.draw(
        st.lists(st.integers(0, alphabet - 1), min_size=n, max_size=n),
        label="symbols")
    out, _ = roundtrip(symbols, freqs)
    assert out == symbols


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_pmf_to_cumulative_property(data):
    """Quantized tables are valid: monotone, exact total, no zero bins."""
    alphabet = data.draw(st.integers(1, 40))
    rows = data.draw(st.integers(1, 5))
    pmf = np.array(
        data.draw(st.lists(
            st.lists(st.floats(1e-6, 1e3), min_size=alphabet,
                     max_size=alphabet),
            min_size=rows, max_size=rows)))
    cum = pmf_to_cumulative(pmf)
    assert cum.shape == (rows, alphabet + 1)
    assert (cum[:, 0] == 0).all()
    assert (cum[:, -1] == cum[0, -1]).all()
    assert (np.diff(cum, axis=1) >= 1).all()


class TestPmfToCumulative:
    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            pmf_to_cumulative(np.ones((1, 10)), total=5)
        with pytest.raises(ValueError):
            pmf_to_cumulative(np.ones((1, 4)), total=MAX_TOTAL * 2)

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            pmf_to_cumulative(np.zeros((1, 4)))

    def test_proportionality(self):
        cum = pmf_to_cumulative(np.array([[1.0, 3.0]]), total=4096)
        freqs = np.diff(cum[0])
        assert freqs[1] / freqs[0] == pytest.approx(3.0, rel=0.05)
