"""rANS coder unit and property tests (mirrors the arithmetic suite)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (decode_symbols, decode_symbols_rans,
                           encode_symbols, encode_symbols_rans)
from repro.entropy.coder import pmf_to_cumulative
from repro.entropy.rans import RANS_L, RansDecoder, RansEncoder
from repro.entropy.rangecoder import MAX_TOTAL


def roundtrip(symbols, freqs):
    cum = np.concatenate([[0], np.cumsum(freqs)]).astype(np.int64)
    total = int(cum[-1])
    enc = RansEncoder()
    for s in reversed(symbols):
        enc.push(int(cum[s]), int(cum[s + 1]), total)
    data = enc.finish()
    dec = RansDecoder(data)
    out = []
    for _ in symbols:
        slot = dec.peek(total)
        s = int(np.searchsorted(cum, slot, side="right")) - 1
        dec.advance(int(cum[s]), int(cum[s + 1]), total)
        out.append(s)
    return out, data


class TestRansCore:
    def test_simple_roundtrip(self):
        symbols = [0, 1, 2, 1, 0, 2, 2, 1]
        out, _ = roundtrip(symbols, [1, 2, 5])
        assert out == symbols

    def test_empty_stream_is_just_state(self):
        enc = RansEncoder()
        data = enc.finish()
        assert len(data) == 8
        dec = RansDecoder(data)
        assert dec._state == RANS_L

    def test_skewed_distribution_compresses(self):
        rng = np.random.default_rng(0)
        symbols = rng.choice(2, size=4000, p=[0.99, 0.01]).tolist()
        out, data = roundtrip(symbols, [990, 10])
        assert out == symbols
        # entropy ~0.08 bits/symbol -> ~40 bytes; allow generous slack
        assert len(data) < 200

    def test_uniform_distribution_near_incompressible(self):
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 256, size=1000).tolist()
        out, data = roundtrip(symbols, [1] * 256)
        assert out == symbols
        assert len(data) >= 990  # ~8 bits/symbol

    def test_rejects_invalid_ranges(self):
        enc = RansEncoder()
        with pytest.raises(ValueError):
            enc.push(5, 5, 10)
        with pytest.raises(ValueError):
            enc.push(0, 1, MAX_TOTAL + 1)

    def test_finish_twice_raises(self):
        enc = RansEncoder()
        enc.finish()
        with pytest.raises(RuntimeError):
            enc.finish()
        with pytest.raises(RuntimeError):
            enc.push(0, 1, 2)

    def test_decoder_rejects_short_or_corrupt(self):
        with pytest.raises(ValueError):
            RansDecoder(b"\x00" * 4)
        with pytest.raises(ValueError):
            RansDecoder(b"\x00" * 8)  # state below RANS_L

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10 ** 9), alphabet=st.integers(2, 40),
           n=st.integers(0, 300))
    def test_roundtrip_property(self, seed, alphabet, n):
        rng = np.random.default_rng(seed)
        freqs = rng.integers(1, 50, size=alphabet)
        p = freqs / freqs.sum()
        symbols = rng.choice(alphabet, size=n, p=p).tolist()
        out, _ = roundtrip(symbols, freqs.tolist())
        assert out == symbols


class TestSymbolStreamInterface:
    def _random_case(self, seed, n=500, alphabet=17, n_ctx=3):
        rng = np.random.default_rng(seed)
        pmf = rng.random((n_ctx, alphabet)) + 0.01
        tables = pmf_to_cumulative(pmf)
        contexts = rng.integers(0, n_ctx, size=n)
        # draw each symbol from its context's distribution
        symbols = np.array([
            rng.choice(alphabet, p=pmf[c] / pmf[c].sum())
            for c in contexts], dtype=np.int64)
        return symbols, tables, contexts

    def test_roundtrip_contextual(self):
        symbols, tables, contexts = self._random_case(0)
        data = encode_symbols_rans(symbols, tables, contexts)
        out = decode_symbols_rans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_size_matches_arithmetic_backend(self):
        """Both backends sit within a few bytes of the entropy."""
        symbols, tables, contexts = self._random_case(1, n=2000)
        a = encode_symbols(symbols, tables, contexts)
        r = encode_symbols_rans(symbols, tables, contexts)
        assert abs(len(a) - len(r)) < 0.02 * len(a) + 16

    def test_rejects_out_of_range_symbols(self):
        symbols, tables, contexts = self._random_case(2, n=10)
        bad = symbols.copy()
        bad[0] = tables.shape[1]  # >= alphabet
        with pytest.raises(ValueError):
            encode_symbols_rans(bad, tables, contexts)

    def test_rejects_length_mismatch(self):
        symbols, tables, contexts = self._random_case(3, n=10)
        with pytest.raises(ValueError):
            encode_symbols_rans(symbols[:5], tables, contexts)

    def test_empty_symbol_stream(self):
        _, tables, _ = self._random_case(4, n=10)
        empty = np.zeros(0, dtype=np.int64)
        data = encode_symbols_rans(empty, tables, empty)
        out = decode_symbols_rans(data, tables, empty)
        assert out.size == 0

    def test_memoized_rescale_is_byte_identical(self):
        """The memoized power-of-two table path must emit exactly the
        bytes a per-push ``RansEncoder`` produces from the raw
        (non-power-of-two) rows — the identity PR 5 streams rely on."""
        rng = np.random.default_rng(7)
        n_ctx, alphabet, n = 3, 11, 400
        counts = rng.integers(1, 40, size=(n_ctx, alphabet))
        tables = np.concatenate(
            [np.zeros((n_ctx, 1), dtype=np.int64),
             np.cumsum(counts, axis=1)], axis=1)  # mixed, non-pow2
        contexts = rng.integers(0, n_ctx, size=n)
        symbols = rng.integers(0, alphabet, size=n)

        fast = encode_symbols_rans(symbols, tables, contexts)
        enc = RansEncoder()  # reference: raw rows, per-push rescale
        for s, c in zip(symbols[::-1].tolist(), contexts[::-1].tolist()):
            enc.push(int(tables[c, s]), int(tables[c, s + 1]),
                     int(tables[c, -1]))
        assert fast == enc.finish()
        np.testing.assert_array_equal(
            decode_symbols_rans(fast, tables, contexts), symbols)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 9))
    def test_cross_backend_agreement(self, seed):
        """Arithmetic and rANS decode each other's exact symbols."""
        symbols, tables, contexts = self._random_case(seed, n=200)
        via_arith = decode_symbols(
            encode_symbols(symbols, tables, contexts), tables, contexts)
        via_rans = decode_symbols_rans(
            encode_symbols_rans(symbols, tables, contexts), tables, contexts)
        np.testing.assert_array_equal(via_arith, via_rans)
