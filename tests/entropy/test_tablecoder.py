"""Unit tests for the table-cached LUT rANS coder (``trans``)."""

import struct

import numpy as np
import pytest

from repro.entropy.coder import EntropyDecodeError, pmf_to_cumulative
from repro.entropy.tablecoder import (MAX_LANES, TableCache, TransTables,
                                      build_trans_tables,
                                      decode_symbols_trans,
                                      encode_symbols_trans,
                                      get_table_cache, lane_count)
from repro.entropy.vrans import encode_symbols_vrans


def _case(seed, n, n_ctx=5, alphabet=17, total=None):
    rng = np.random.default_rng(seed)
    pmf = rng.random((n_ctx, alphabet)) + 0.01
    tables = (pmf_to_cumulative(pmf) if total is None
              else pmf_to_cumulative(pmf, total=total))
    contexts = rng.integers(0, n_ctx, size=n)
    symbols = rng.integers(0, alphabet, size=n)
    return symbols, tables, contexts


def _mixed_case(seed, n, n_ctx=4, alphabet=9):
    """Rows with *different*, non-power-of-two totals."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 60, size=(n_ctx, alphabet))
    tables = np.concatenate(
        [np.zeros((n_ctx, 1), dtype=np.int64),
         np.cumsum(counts, axis=1)], axis=1)
    contexts = rng.integers(0, n_ctx, size=n)
    symbols = rng.integers(0, alphabet, size=n)
    return symbols, tables, contexts


class TestBuildTransTables:
    def test_lut_covers_every_slot_exactly(self):
        _, tables, _ = _case(0, 0, n_ctx=3, alphabet=11, total=97)
        t = build_trans_tables(tables)
        size = 1 << t.precision
        assert t.sym.shape == (3 * size,)
        assert t.freq.shape == (3 * size,)
        assert t.bias.shape == (3 * size,)
        # per-context slot walk: the LUT must agree with the rescaled
        # cumulative rows symbol by symbol
        for c in range(3):
            row = t.scaled[c].astype(np.int64)
            base = c << t.precision
            for slot in range(size):
                s = int(t.sym[base | slot])
                assert row[s] <= slot < row[s + 1]
                assert t.freq[base | slot] == row[s + 1] - row[s]
                assert t.bias[base | slot] == slot - row[s]

    def test_precision_is_shared_and_minimal(self):
        tables = np.array([[0, 1, 3], [0, 2, 4], [0, 3, 7]],
                          dtype=np.int64)  # max total 7 -> p = 3
        t = build_trans_tables(tables)
        assert t.precision == 3
        assert np.all(t.scaled[:, -1] == 8)  # every row rescaled to 2^p

    def test_pow2_rows_pass_through_unscaled(self):
        _, tables, _ = _case(1, 0, n_ctx=2, alphabet=5)  # pmf default pow2
        t = build_trans_tables(tables)
        np.testing.assert_array_equal(t.scaled.astype(np.int64), tables)

    def test_rejects_malformed_tables(self):
        with pytest.raises(ValueError, match="start at 0"):
            build_trans_tables(np.array([[1, 2, 4]], dtype=np.int64))
        with pytest.raises(ValueError, match="monotone"):
            build_trans_tables(np.array([[0, 3, 2]], dtype=np.int64))
        with pytest.raises(ValueError, match="MAX_TOTAL"):
            build_trans_tables(np.array([[0, 1 << 17]], dtype=np.int64))
        with pytest.raises(ValueError, match="shape"):
            build_trans_tables(np.zeros((3,), dtype=np.int64))

    def test_degenerate_zero_total_row_is_unusable_not_fatal(self):
        tables = np.array([[0, 2, 4], [0, 0, 0]], dtype=np.int64)
        t = build_trans_tables(tables)
        size = 1 << t.precision
        # the degenerate row's slots carry zero frequency, so any
        # stream claiming context 1 trips the strict decode checks
        assert np.all(t.freq[size:2 * size] == 0)
        with pytest.raises(ValueError, match="zero-frequency"):
            encode_symbols_trans(np.zeros(4, dtype=np.int64), tables,
                                 np.ones(4, dtype=np.int64))

    def test_luts_are_read_only(self):
        _, tables, _ = _case(2, 0)
        t = build_trans_tables(tables)
        for arr in (t.scaled, t.sym, t.freq, t.bias):
            with pytest.raises(ValueError):
                arr[0] = 0


class TestTransRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 7, 127, 128, 129, 1000, 4096,
                                   33000])
    def test_roundtrip_across_lane_boundaries(self, n):
        symbols, tables, contexts = _case(n, n)
        data = encode_symbols_trans(symbols, tables, contexts)
        out = decode_symbols_trans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    @pytest.mark.parametrize("lanes", [1, 2, 3, 64, 100, MAX_LANES])
    def test_explicit_lane_width(self, lanes):
        symbols, tables, contexts = _case(1, 900)
        data = encode_symbols_trans(symbols, tables, contexts,
                                    lanes=lanes)
        assert data[0] == lanes  # header records the width
        out = decode_symbols_trans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_non_power_of_two_totals(self):
        symbols, tables, contexts = _case(2, 800, total=1000)
        data = encode_symbols_trans(symbols, tables, contexts)
        out = decode_symbols_trans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_mixed_per_row_totals(self):
        """vrans's slow path; trans handles it through the shared
        rescale with no fallback at all."""
        symbols, tables, contexts = _mixed_case(3, 1200)
        data = encode_symbols_trans(symbols, tables, contexts)
        out = decode_symbols_trans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_single_symbol_alphabet(self):
        tables = pmf_to_cumulative(np.ones((3, 1)))
        contexts = np.random.default_rng(4).integers(0, 3, size=300)
        symbols = np.zeros(300, dtype=np.int64)
        data = encode_symbols_trans(symbols, tables, contexts)
        out = decode_symbols_trans(data, tables, contexts)
        np.testing.assert_array_equal(out, symbols)

    def test_empty_stream(self):
        _, tables, _ = _case(5, 10)
        empty = np.zeros(0, dtype=np.int64)
        data = encode_symbols_trans(empty, tables, empty)
        assert len(data) == 1 + 8  # header + one idle lane
        out = decode_symbols_trans(data, tables, empty)
        assert out.size == 0

    def test_size_close_to_vrans(self):
        """Same rANS math, so only the wider state header differs."""
        symbols, tables, contexts = _case(6, 8000)
        tr = encode_symbols_trans(symbols, tables, contexts)
        vr = encode_symbols_vrans(symbols, tables, contexts)
        extra_lanes = tr[0] - vr[0]
        assert len(tr) <= len(vr) + 12 * max(extra_lanes, 0) + 16

    def test_lane_count_is_deterministic(self):
        assert lane_count(10) == 1
        assert lane_count(1000) == 7
        assert lane_count(100000) == MAX_LANES
        assert all(1 <= lane_count(n) <= MAX_LANES
                   for n in range(0, 50000, 101))


class TestTransValidation:
    def test_rejects_out_of_range_symbols(self):
        symbols, tables, contexts = _case(7, 10)
        bad = symbols.copy()
        bad[0] = tables.shape[1]  # >= alphabet
        with pytest.raises(ValueError):
            encode_symbols_trans(bad, tables, contexts)

    def test_rejects_bad_contexts(self):
        symbols, tables, contexts = _case(8, 10)
        for bad_value in (-1, tables.shape[0]):
            bad = contexts.copy()
            bad[3] = bad_value
            with pytest.raises(ValueError, match="context id"):
                encode_symbols_trans(symbols, tables, bad)
            with pytest.raises(ValueError, match="context id"):
                decode_symbols_trans(b"\x01" + b"\x00" * 8, tables, bad)

    def test_rejects_length_mismatch(self):
        symbols, tables, contexts = _case(9, 10)
        with pytest.raises(ValueError):
            encode_symbols_trans(symbols[:5], tables, contexts)

    def test_rejects_bad_lane_request(self):
        symbols, tables, contexts = _case(10, 10)
        for lanes in (0, MAX_LANES + 1):
            with pytest.raises(ValueError):
                encode_symbols_trans(symbols, tables, contexts,
                                     lanes=lanes)


class TestTransCorruption:
    def _encoded(self, n=900):
        symbols, tables, contexts = _case(11, n)
        data = encode_symbols_trans(symbols, tables, contexts)
        return symbols, tables, contexts, data

    def test_truncated_words_raise(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(EntropyDecodeError, match="corrupted trans"):
            decode_symbols_trans(data[:-4], tables, contexts)

    def test_trailing_words_raise(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(EntropyDecodeError, match="corrupted trans"):
            decode_symbols_trans(data + b"\x00" * 4, tables, contexts)

    def test_misaligned_tail_raises(self):
        _, tables, contexts, data = self._encoded()
        with pytest.raises(EntropyDecodeError, match="truncated"):
            decode_symbols_trans(data + b"\x00", tables, contexts)

    def test_empty_or_headerless_raise(self):
        _, tables, contexts, _ = self._encoded()
        with pytest.raises(EntropyDecodeError):
            decode_symbols_trans(b"", tables, contexts)
        with pytest.raises(EntropyDecodeError):
            decode_symbols_trans(b"\x00", tables, contexts)  # 0 lanes
        with pytest.raises(EntropyDecodeError):
            decode_symbols_trans(b"\x04" + b"\x00" * 8, tables,
                                 contexts)  # 4 lanes, 1 state

    def test_flipped_state_raises(self):
        _, tables, contexts, data = self._encoded()
        mutated = bytearray(data)
        mutated[5] ^= 0xFF  # inside the lane-state header
        with pytest.raises(EntropyDecodeError, match="corrupted trans"):
            decode_symbols_trans(bytes(mutated), tables, contexts)

    def test_degenerate_context_stream_raises(self):
        """A stream claiming a zero-total context collapses into the
        strict checks (zero LUT frequency pins the state at zero)."""
        tables = np.array([[0, 2, 4], [0, 0, 0]], dtype=np.int64)
        contexts = np.ones(4, dtype=np.int64)
        data = struct.pack("<B", 1) + struct.pack("<Q", 1 << 31)
        with pytest.raises(EntropyDecodeError):
            decode_symbols_trans(data, tables, contexts)


class TestTableCache:
    def test_hit_returns_same_object(self):
        cache = TableCache(max_entries=4)
        built = []

        def build():
            built.append(1)
            return np.arange(5)

        a = cache.get(("k",), build)
        b = cache.get(("k",), build)
        assert a is b
        assert built == [1]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_by_entries(self):
        cache = TableCache(max_entries=2)
        cache.get(("a",), lambda: np.arange(3))
        cache.get(("b",), lambda: np.arange(3))
        cache.get(("a",), lambda: np.arange(3))  # refresh a
        cache.get(("c",), lambda: np.arange(3))  # evicts b, not a
        assert len(cache) == 2
        rebuilt = []
        cache.get(("a",), lambda: rebuilt.append("a"))
        cache.get(("b",), lambda: rebuilt.append("b") or np.arange(3))
        assert rebuilt == ["b"]

    def test_byte_bound_eviction_keeps_newest(self):
        cache = TableCache(max_entries=8, max_bytes=100)
        cache.get(("small",), lambda: np.zeros(4, dtype=np.uint8))
        big = cache.get(("big",), lambda: np.zeros(400, dtype=np.uint8))
        # the oversized entry itself survives (never evict the value
        # being returned) but pushed the older entry out
        assert big.nbytes == 400
        assert len(cache) == 1
        assert cache.stats()["bytes"] == 400

    def test_digest_distinguishes_content_dtype_and_shape(self):
        a = np.arange(6, dtype=np.int64)
        assert TableCache.digest(a) == TableCache.digest(a.copy())
        assert TableCache.digest(a) != TableCache.digest(a + 1)
        assert (TableCache.digest(a)
                != TableCache.digest(a.astype(np.int32)))
        assert (TableCache.digest(a)
                != TableCache.digest(a.reshape(2, 3)))
        assert TableCache.digest(a, 1) != TableCache.digest(a, 2)

    def test_cold_vs_warm_streams_are_byte_identical(self):
        """The wire format must not depend on cache state."""
        symbols, tables, contexts = _mixed_case(12, 700)
        cold_cache = TableCache()
        warm_cache = TableCache()
        warm_cache.get(("trans", TableCache.digest(
            np.asarray(tables))), lambda: build_trans_tables(tables))
        cold = encode_symbols_trans(symbols, tables, contexts,
                                    cache=cold_cache)
        warm = encode_symbols_trans(symbols, tables, contexts,
                                    cache=warm_cache)
        assert cold == warm
        np.testing.assert_array_equal(
            decode_symbols_trans(warm, tables, contexts,
                                 cache=TableCache()),
            symbols)

    def test_process_cache_reused_across_windows(self):
        cache = get_table_cache()
        symbols, tables, contexts = _case(13, 400)
        cache.clear()
        encode_symbols_trans(symbols, tables, contexts)
        before = cache.stats()["hits"]
        for _ in range(3):  # further "windows" sharing the table
            encode_symbols_trans(symbols, tables, contexts)
        assert cache.stats()["hits"] >= before + 3

    def test_thread_safety_under_contention(self):
        import threading

        cache = TableCache(max_entries=2)
        errors = []

        def work(seed):
            try:
                rng = np.random.default_rng(seed % 3)  # 3 distinct keys
                key = ("k", int(rng.integers(0, 3)))
                for _ in range(200):
                    v = cache.get(key, lambda: np.arange(10))
                    if v.shape != (10,):
                        errors.append("bad value")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TableCache(max_entries=0)
