"""Chunked out-of-core ingestion: byte identity with the in-memory
path, source dispatch, and the defaults the streaming loop applies."""

import numpy as np
import pytest

from repro.api import Archive, Bound, Session, SessionError
from repro.pipeline.sources import ArrayStackSource, NpyStackSource

BOUND = Bound.nrmse(1e-3)
T = 36


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(9)
    return np.cumsum(rng.standard_normal((T, 8, 8)), axis=0)


@pytest.fixture(scope="module")
def npy_path(tmp_path_factory, frames):
    path = tmp_path_factory.mktemp("ooc") / "stack.npy"
    np.save(path, frames)
    return path


@pytest.fixture(scope="module")
def session():
    with Session(codec="szlike", executor="serial") as s:
        yield s


@pytest.fixture(scope="module")
def in_memory(session, frames):
    return session.compress(frames, bound=BOUND, shards=6)


class TestByteIdentity:
    @pytest.mark.parametrize("chunk_shards", [1, 2, 4, 6])
    def test_chunked_equals_in_memory(self, session, frames, in_memory,
                                      chunk_shards):
        chunked = session.compress(ArrayStackSource(frames),
                                   bound=BOUND, shards=6,
                                   chunk_shards=chunk_shards)
        assert chunked.data == in_memory.data
        assert chunked.stats["chunk_shards"] == chunk_shards

    def test_npy_path_equals_in_memory(self, session, npy_path,
                                       in_memory):
        for source in (str(npy_path), npy_path):
            chunked = session.compress(source, bound=BOUND, shards=6,
                                       chunk_shards=2)
            assert chunked.data == in_memory.data

    def test_memmap_equals_in_memory(self, session, npy_path,
                                     in_memory):
        mapped = np.load(npy_path, mmap_mode="r")
        chunked = session.compress(mapped, bound=BOUND, shards=6,
                                   chunk_shards=2)
        assert chunked.data == in_memory.data

    def test_thread_and_process_match_serial(self, npy_path, in_memory):
        for executor in ("thread", "process"):
            with Session(codec="szlike", executor=executor,
                         workers=2) as par:
                chunked = par.compress(str(npy_path), bound=BOUND,
                                       shards=6, chunk_shards=2)
                assert chunked.data == in_memory.data

    def test_label_matches_sharded_stack(self, session, frames,
                                         npy_path):
        mem = session.compress(frames, bound=BOUND, shards=3,
                               label="clim")
        ooc = session.compress(str(npy_path), bound=BOUND, shards=3,
                               chunk_shards=1, label="clim")
        assert ooc.data == mem.data
        assert all(m.key.startswith("clim/") for m in ooc.index())


class TestRoundtrip:
    def test_decode_matches_source_within_bound(self, session, frames,
                                                npy_path):
        archive = session.compress(str(npy_path), bound=BOUND, shards=6,
                                   chunk_shards=2)
        out = session.decompress(archive)
        assert out.shape == frames.shape
        rng_ = float(frames.max() - frames.min())
        nrmse = float(np.sqrt(np.mean((out - frames) ** 2))) / rng_
        assert nrmse <= 1e-3 * (1 + 1e-9)

    def test_partial_read_back(self, session, frames, npy_path,
                               tmp_path):
        archive = session.compress(str(npy_path), bound=BOUND, shards=6,
                                   chunk_shards=3)
        path = tmp_path / "a.shrd"
        archive.save(path)
        full = session.decompress(archive)
        window = session.decompress(Archive.open(path),
                                    select=slice(10, 20))
        np.testing.assert_array_equal(window, full[10:20])


class TestDefaultsAndErrors:
    def test_default_shards_one_per_16_frames(self, session, tmp_path):
        path = tmp_path / "s48.npy"
        np.save(path, np.cumsum(
            np.random.default_rng(1).standard_normal((48, 6, 6)),
            axis=0))
        archive = session.compress(str(path), bound=BOUND,
                                   chunk_shards=1)
        assert archive.stats["shards"] == 3
        assert [m.frames for m in archive.index()] == [16, 16, 16]

    def test_default_chunk_shards_tracks_workers(self, npy_path,
                                                 in_memory):
        with Session(codec="szlike", executor="serial",
                     workers=2) as ses:
            archive = ses.compress(str(npy_path), bound=BOUND, shards=6)
            assert archive.stats["chunk_shards"] == 2
            assert archive.data == in_memory.data

    def test_bad_chunk_shards(self, session, npy_path):
        with pytest.raises(SessionError, match="chunk_shards"):
            session.compress(str(npy_path), bound=BOUND, shards=2,
                             chunk_shards=0)

    def test_missing_file(self, session, tmp_path):
        with pytest.raises(SessionError, match="cannot open"):
            session.compress(str(tmp_path / "nope.npy"), bound=BOUND)

    def test_wrong_rank_npy(self, session, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.zeros((4, 4)))
        with pytest.raises(SessionError, match="cannot open"):
            session.compress(str(path), bound=BOUND)
