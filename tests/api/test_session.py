"""Session facade tests: dispatch per input shape, bit-exact file
round-trips, codec resolution, and executor byte-identity through the
facade (the acceptance criteria of the api redesign)."""

import numpy as np
import pytest

from repro.api import Archive, Bound, Session, SessionError
from repro.data import get_dataset
from repro.metrics import nrmse

SHAPE_OVERRIDES = {"t": 12, "h": 16, "w": 16}


@pytest.fixture(scope="module")
def frames():
    ds = get_dataset("e3sm", t=12, h=16, w=16, seed=9)
    return ds.frames(0)


def _roundtrip(session, archive, tmp_path, name):
    """compress -> save -> Archive.open -> decompress, bit-identically
    (the file path must change nothing)."""
    path = tmp_path / name
    archive.save(path)
    reopened = Archive.open(path)
    assert reopened.to_bytes() == archive.to_bytes()
    direct = session.decompress(archive)
    from_file = session.decompress(reopened)
    if isinstance(direct, dict):
        assert sorted(direct) == sorted(from_file)
        for key in direct:
            np.testing.assert_array_equal(direct[key], from_file[key])
    else:
        np.testing.assert_array_equal(direct, from_file)
    return from_file


class TestRoundTrips:
    """One round-trip per input shape, per the acceptance criteria."""

    def test_array(self, frames, tmp_path):
        with Session(codec="szlike") as s:
            archive = s.compress(frames, bound=Bound.nrmse(0.02))
            assert archive.kind == "envelope"
            out = _roundtrip(s, archive, tmp_path, "array.cdx")
        assert out.shape == frames.shape
        assert nrmse(frames, out) <= 0.02 * (1 + 1e-9)

    def test_array_sharded(self, frames, tmp_path):
        with Session(codec="szlike", executor="serial") as s:
            archive = s.compress(frames, bound=Bound.nrmse(0.02),
                                 shards=3)
            assert archive.kind == "shard"
            assert archive.stats["shards"] == 3
            out = _roundtrip(s, archive, tmp_path, "sharded.cdx")
        assert nrmse(frames, out) <= 0.02 * (1 + 1e-9)

    def test_dataset_name(self, tmp_path):
        with Session(codec="szlike", executor="serial") as s:
            archive = s.compress("e3sm", bound=Bound.nrmse(0.02),
                                 variables=[0], shards=4,
                                 dataset_overrides=SHAPE_OVERRIDES)
            assert archive.kind == "shard"
            out = _roundtrip(s, archive, tmp_path, "dataset.cdx")
        original = get_dataset("e3sm", **SHAPE_OVERRIDES).frames(0)
        assert out.shape == original.shape
        assert nrmse(original, out) <= 0.02 * (1 + 1e-9)

    def test_dataset_spec_defaults_to_all_variables(self, tmp_path):
        from repro.data import get_dataset_spec
        spec = get_dataset_spec("e3sm", **SHAPE_OVERRIDES)
        with Session(codec="dpcm", executor="serial") as s:
            archive = s.compress(spec, bound=Bound.nrmse(0.05))
            out = _roundtrip(s, archive, tmp_path, "spec.cdx")
        ds = spec.build()
        assert out.shape == spec.shape  # (V, T, H, W)
        for v in range(spec.num_vars):
            assert nrmse(ds.frames(v), out[v]) <= 0.05 * (1 + 1e-9)

    def test_multivar_mapping(self, frames, tmp_path):
        stacks = {"u": frames, "v": frames * 2.0 + 1.0}
        with Session(codec="szlike") as s:
            archive = s.compress(stacks, bound=Bound.nrmse(0.02))
            assert archive.kind == "multivar"
            out = _roundtrip(s, archive, tmp_path, "multivar.cdx")
        assert sorted(out) == ["u", "v"]
        for name, stack in stacks.items():
            assert nrmse(stack, out[name]) <= 0.02 * (1 + 1e-9)

    def test_multivar_array_with_names(self, frames):
        arr = np.stack([frames, frames * 2.0])
        with Session(codec="szlike") as s:
            archive = s.compress(arr, names=["a", "b"],
                                 bound=Bound.nrmse(0.05))
            out = s.decompress(archive)
        assert sorted(out) == ["a", "b"]

    def test_chunk_iterator(self, frames, tmp_path):
        with Session(codec="szlike", chunk_windows=2) as s:
            archive = s.compress(iter(frames), bound=Bound.nrmse(0.02))
            assert archive.kind == "stream"
            assert archive.stats["frames"] == frames.shape[0]
            out = _roundtrip(s, archive, tmp_path, "stream.cdx")
        assert out.shape == frames.shape
        assert nrmse(frames, out) <= 0.02 * (1 + 1e-9)

    def test_compress_is_deterministic(self, frames):
        with Session(codec="szlike") as s:
            a = s.compress(frames, bound=Bound.nrmse(0.02))
            b = s.compress(frames, bound=Bound.nrmse(0.02))
        assert a.to_bytes() == b.to_bytes()

    def test_legacy_kwargs_equal_bound_object(self, frames):
        with Session(codec="szlike") as s:
            typed = s.compress(frames, bound=Bound.nrmse(0.02))
            legacy = s.compress(frames, nrmse_bound=0.02)
        assert typed.to_bytes() == legacy.to_bytes()


class TestTrainedArtifactSweep:
    """Acceptance: a trained-artifact sweep via Session(executor=
    "process") is byte-identical to executor="serial"."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("api-artifacts")
        path = root / "vae-sr.npz"
        session = Session(seed=1)
        codec, manifest = session.train(
            "vae-sr", "e3sm", save=str(path),
            dataset_overrides=SHAPE_OVERRIDES,
            vae_iters=3, sr_iters=2, seed=1)
        assert codec.name == "vae-sr"
        assert manifest.training["vae_iters"] == 3
        assert manifest.dataset["name"] == "e3sm"
        return str(path)

    def test_process_sweep_matches_serial(self, artifact):
        archives = {}
        for executor in ("serial", "process"):
            with Session(artifact=artifact, executor=executor,
                         workers=2) as s:
                archives[executor] = s.compress(
                    "e3sm", bound=Bound.nrmse(0.5), variables=[0],
                    shards=4, dataset_overrides=SHAPE_OVERRIDES)
        assert archives["process"].to_bytes() \
            == archives["serial"].to_bytes()

    def test_artifact_roundtrip_through_facade(self, artifact,
                                               tmp_path):
        with Session(artifact=artifact) as s:
            archive = s.compress("e3sm", bound=Bound.nrmse(0.5),
                                 variables=[0], shards=2,
                                 dataset_overrides=SHAPE_OVERRIDES)
            out = _roundtrip(s, archive, tmp_path, "trained.cdx")
        original = get_dataset("e3sm", **SHAPE_OVERRIDES).frames(0)
        assert nrmse(original, out) <= 0.5 * (1 + 1e-9)

    def test_artifact_name_mismatch_rejected(self, artifact):
        with pytest.raises(SessionError, match="holds codec 'vae-sr'"):
            Session(codec="gcd", artifact=artifact)


class TestCodecResolution:
    def test_unknown_codec_lists_registry(self):
        with pytest.raises(KeyError, match="szlike"):
            Session(codec="nope").resolve_codec()

    def test_ours_requires_model(self):
        with pytest.raises(SessionError, match="trained model bundle"):
            Session().resolve_codec()

    def test_untrained_learned_codec_hints_at_artifact(self):
        with pytest.raises(SessionError, match="repro train"):
            Session(codec="vae-sr").resolve_codec()

    def test_codec_instance_and_native_object_adopted(self, frames):
        from repro.codecs import get_codec
        codec = get_codec("szlike")
        assert Session(codec=codec).resolve_codec() is codec
        native = codec.impl  # the raw SZ-like compressor object
        assert Session(codec=native).resolve_codec().name == "szlike"

    def test_expect_codec_mismatch(self, frames):
        with Session(codec="szlike") as s:
            archive = s.compress(frames, bound=Bound.nrmse(0.05))
            with pytest.raises(SessionError, match="szlike"):
                s.decompress(archive, expect_codec="mgard")

    def test_bad_source_types(self):
        s = Session(codec="szlike")
        with pytest.raises(SessionError, match="T, H, W"):
            s.compress(np.zeros((4, 4)))
        with pytest.raises(SessionError, match="cannot compress"):
            s.compress(42)
        with pytest.raises(ValueError, match="not several"):
            s.compress(np.zeros((4, 8, 8)), bound=Bound.nrmse(0.1),
                       nrmse_bound=0.1)

    def test_train_rejects_model_free_codec(self):
        with pytest.raises(SessionError, match="model-free"):
            Session().train("szlike", np.zeros((8, 8, 8)), save="x.npz")

    def test_train_requires_destination(self):
        with pytest.raises(SessionError, match="ArtifactStore"):
            Session().train("vae-sr", np.zeros((8, 8, 8)))

    def test_dataset_instance_honours_overrides(self):
        """Overrides must not be silently dropped for instances."""
        ds = get_dataset("e3sm", t=32, h=16, w=16)
        with Session(codec="szlike", executor="serial") as s:
            archive = s.compress(ds, bound=Bound.nrmse(0.05),
                                 variables=[0],
                                 dataset_overrides={"t": 12})
            out = s.decompress(archive)
        assert out.shape[0] == 12

    def test_train_ours_builds_compressor_once(self, monkeypatch,
                                               tmp_path):
        """The corrector fit (inside build_compressor) is the
        expensive training tail; it must run exactly once."""
        from repro.pipeline.training import TwoStageTrainer
        calls = []
        original = TwoStageTrainer.build_compressor

        def counting(self, *a, **kw):
            calls.append(1)
            return original(self, *a, **kw)

        monkeypatch.setattr(TwoStageTrainer, "build_compressor",
                            counting)
        session = Session(seed=0)
        codec, manifest = session.train(
            "ours", "e3sm", save=str(tmp_path / "ours-tiny.npz"),
            dataset_overrides=SHAPE_OVERRIDES,
            vae_iters=2, diffusion_iters=2, seed=0)
        assert codec.name == "ours"
        assert manifest.training["vae_iters"] == 2
        assert len(calls) == 1

    def test_train_into_store(self, tmp_path):
        from repro.pipeline.artifacts import ArtifactStore
        store = ArtifactStore(tmp_path / "store")
        session = Session(store=store, seed=1)
        codec, key = session.train(
            "vae-sr", "e3sm", dataset_overrides=SHAPE_OVERRIDES,
            vae_iters=2, sr_iters=1, seed=1)
        assert key in store
        clone = store.get(key)
        assert clone.name == "vae-sr"
