"""Partial decode through the footer index: ``select=`` semantics,
executor parity, the bytes-read contract, legacy-version fallback and
checksum enforcement."""

import numpy as np
import pytest

from repro.api import Archive, ArchiveIndexError, Bound, Session, \
    SessionError
from repro.pipeline.container import CountingReader
from repro.pipeline.plan import pack_shard_archive, \
    unpack_shard_archive

BOUND = Bound.nrmse(1e-3)
T = 24


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(5)
    return np.cumsum(rng.standard_normal((T, 8, 8)), axis=0)


@pytest.fixture(scope="module")
def session():
    with Session(codec="szlike", executor="serial") as s:
        yield s


@pytest.fixture(scope="module")
def archive(session, frames):
    return session.compress(frames, bound=BOUND, shards=4)


@pytest.fixture(scope="module")
def full(session, archive):
    return session.decompress(archive)


class TestSelectMatrix:
    def test_shard_id_equals_slice_of_full(self, session, archive, full):
        m = archive.index()[1]
        window = session.decompress(archive, select=m.key)
        np.testing.assert_array_equal(window, full[m.t0:m.t1])

    def test_time_range(self, session, archive, full):
        window = session.decompress(archive, select=slice(4, 17))
        np.testing.assert_array_equal(window, full[4:17])

    def test_range_not_aligned_to_shards_trims_exactly(self, session,
                                                       archive, full):
        # inside a single 6-frame shard: overhang on both sides
        window = session.decompress(archive, select=slice(7, 9))
        np.testing.assert_array_equal(window, full[7:9])

    def test_open_and_negative_ranges(self, session, archive, full):
        np.testing.assert_array_equal(
            session.decompress(archive, select=slice(None, 6)), full[:6])
        np.testing.assert_array_equal(
            session.decompress(archive, select=slice(-6, None)),
            full[-6:])

    def test_variable_select(self, session, archive, full):
        got = session.decompress(archive, select=0)
        np.testing.assert_array_equal(got, full)

    def test_sequence_union_keeps_file_order(self, session, archive,
                                             full):
        keys = [m.key for m in archive.index()]
        got = session.decompress(archive, select=[keys[1], keys[0]])
        np.testing.assert_array_equal(got, full[:12])

    def test_lazy_path_open(self, session, archive, full, tmp_path):
        path = tmp_path / "a.shrd"
        archive.save(path)
        lazy = Archive.open(path)
        assert lazy.indexed()
        assert lazy.index() == archive.index()
        window = session.decompress(lazy, select=slice(6, 12))
        np.testing.assert_array_equal(window, full[6:12])


class TestSelectErrors:
    def test_empty_range(self, session, archive):
        with pytest.raises(SessionError, match="empty time range"):
            session.decompress(archive, select=slice(9, 9))

    def test_strided_range(self, session, archive):
        with pytest.raises(SessionError, match="step 1"):
            session.decompress(archive, select=slice(0, 8, 2))

    def test_unknown_variable(self, session, archive):
        with pytest.raises(SessionError, match="holds variables"):
            session.decompress(archive, select=7)

    def test_unknown_shard_id(self, session, archive):
        with pytest.raises(SessionError, match="archive holds"):
            session.decompress(archive, select="nope/v0/t0000-0006")

    def test_bad_selector_type(self, session, archive):
        with pytest.raises(SessionError, match="cannot select"):
            session.decompress(archive, select=1.5)

    def test_select_needs_multipart(self, session, frames):
        envelope = session.compress(frames, bound=BOUND)
        with pytest.raises(SessionError, match="multi-part"):
            session.decompress(envelope, select=slice(0, 4))


class TestExecutorParity:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_partial_equals_serial(self, archive, full,
                                            executor):
        with Session(codec="szlike", executor=executor,
                     workers=2) as par:
            window = par.decompress(archive, select=slice(2, 20))
            np.testing.assert_array_equal(window, full[2:20])
            np.testing.assert_array_equal(par.decompress(archive), full)


class TestBytesReadContract:
    def test_partial_reads_footer_plus_member(self, session, archive,
                                              tmp_path):
        path = tmp_path / "a.shrd"
        archive.save(path)
        size = path.stat().st_size
        members = archive.index()
        target = members[2]
        overhead = size - max(m.offset + m.length for m in members)
        with open(path, "rb") as fh:
            counter = CountingReader(fh)
            session.decompress(Archive.open(counter), select=target.key)
            # head sniff + container-header cross-checks +
            # trailer/footer + exactly one member
            assert counter.bytes_read <= 64 + overhead + target.length
            assert counter.bytes_read < size


class TestLegacyAndIntegrity:
    def test_v1_archive_still_selects(self, session, archive, full):
        entries = unpack_shard_archive(archive.data)
        v1 = Archive.open(pack_shard_archive(entries, version=1))
        assert not v1.indexed()
        np.testing.assert_array_equal(session.decompress(v1), full)
        window = session.decompress(v1, select=slice(6, 12))
        np.testing.assert_array_equal(window, full[6:12])

    def test_indexed_full_decode_matches_v1_decode(self, session,
                                                   archive):
        entries = unpack_shard_archive(archive.data)
        v1 = Archive.open(pack_shard_archive(entries, version=1))
        np.testing.assert_array_equal(session.decompress(archive),
                                      session.decompress(v1))

    def test_corrupt_member_fails_checksum(self, session, archive):
        target = archive.index()[1]
        bad = bytearray(archive.data)
        bad[target.offset + target.length // 2] ^= 0xFF
        with pytest.raises(ArchiveIndexError, match="checksum"):
            session.decompress(Archive.open(bytes(bad)),
                               select=target.key)

    def test_expect_codec_enforced_on_partial(self, session, archive):
        key = archive.index()[0].key
        with pytest.raises(SessionError, match="written by codec"):
            session.decompress(archive, select=key,
                               expect_codec="zfplike")


class TestMultivarSelect:
    @pytest.fixture(scope="class")
    def mv_archive(self, session, frames):
        return session.compress({"u": frames, "v": frames * 2.0},
                                bound=BOUND)

    def test_name_select_matches_full(self, session, mv_archive):
        assert mv_archive.indexed()
        full = session.decompress(mv_archive)
        one = session.decompress(mv_archive, select="u")
        assert set(one) == {"u"}
        np.testing.assert_array_equal(one["u"], full["u"])
        both = session.decompress(mv_archive, select=["v", "u"])
        assert set(both) == {"u", "v"}
        np.testing.assert_array_equal(both["v"], full["v"])

    def test_unknown_name(self, session, mv_archive):
        with pytest.raises(SessionError, match="archive holds"):
            session.decompress(mv_archive, select="w")

    def test_bad_selector(self, session, mv_archive):
        with pytest.raises(SessionError, match="variable name"):
            session.decompress(mv_archive, select=3)
