"""Truncated/corrupted lazy archives must fail with the typed
ArchiveIndexError — never a bare struct.error or silently-short
bytes.  Covers the file-shrank-under-an-open-Archive race the
service's cached-object serving path can hit."""

import os
import struct

import numpy as np
import pytest

from repro.api import Archive, ArchiveIndexError, Bound, Session


@pytest.fixture(scope="module")
def archive_file(tmp_path_factory):
    """A real indexed shard archive on disk."""
    path = tmp_path_factory.mktemp("trunc") / "archive.bin"
    frames = np.random.default_rng(0).standard_normal(
        (6, 16, 16)).astype(np.float32)
    with Session() as session:
        archive = session.compress(frames, codec="szlike",
                                   bound=Bound.parse("nrmse:0.1"),
                                   shards=2, seed=1)
        archive.save(path)
    return str(path)


@pytest.fixture()
def truncatable(archive_file, tmp_path):
    """A private copy of the archive this test may mutilate."""
    import shutil
    path = tmp_path / "copy.bin"
    shutil.copy(archive_file, path)
    return str(path)


class TestTruncationMidRead:
    def test_to_bytes_raises_typed_error(self, truncatable):
        lazy = Archive.open(truncatable)
        full = os.path.getsize(truncatable)
        with open(truncatable, "r+b") as fh:
            fh.truncate(full // 2)
        with pytest.raises(ArchiveIndexError, match="truncated"):
            lazy.to_bytes()

    def test_save_raises_typed_error(self, truncatable, tmp_path):
        lazy = Archive.open(truncatable)
        full = os.path.getsize(truncatable)
        with open(truncatable, "r+b") as fh:
            fh.truncate(full // 2)
        with pytest.raises(ArchiveIndexError, match="truncated"):
            lazy.save(tmp_path / "out.bin")

    def test_data_property_raises_typed_error(self, truncatable):
        lazy = Archive.open(truncatable)
        with open(truncatable, "r+b") as fh:
            fh.truncate(os.path.getsize(truncatable) - 1)
        with pytest.raises(ArchiveIndexError):
            lazy.data

    def test_intact_archive_unaffected(self, truncatable):
        lazy = Archive.open(truncatable)
        data = lazy.to_bytes()
        assert len(data) == os.path.getsize(truncatable)


class TestTruncationOnOpen:
    def test_indexed_below_header_is_typed(self, truncatable):
        with open(truncatable, "r+b") as fh:
            fh.truncate(5)
        lazy = Archive.open(truncatable)
        with pytest.raises(ArchiveIndexError, match="fixed header"):
            lazy.indexed()

    def test_index_with_clipped_trailer_is_typed(self, truncatable):
        with open(truncatable, "r+b") as fh:
            fh.truncate(os.path.getsize(truncatable) - 3)
        lazy = Archive.open(truncatable)
        with pytest.raises(ArchiveIndexError):
            lazy.index()

    def test_no_bare_struct_error_anywhere(self, truncatable):
        """Chop the file at every small prefix length that still
        sniffs as a shard container: indexed()/index() may raise only
        the typed error."""
        with open(truncatable, "rb") as fh:
            original = fh.read()
        for cut in (6, 8, 12, 20, len(original) // 3):
            with open(truncatable, "wb") as fh:
                fh.write(original[:cut])
            lazy = Archive.open(truncatable)
            for op in (lazy.indexed, lazy.index):
                try:
                    op()
                except ArchiveIndexError:
                    pass
                except struct.error as exc:  # pragma: no cover
                    raise AssertionError(
                        f"bare struct.error at cut={cut}: {exc}")


class TestCorruptedFooter:
    def test_corrupt_footer_crc_is_typed(self, truncatable):
        size = os.path.getsize(truncatable)
        with open(truncatable, "r+b") as fh:
            fh.seek(size - 24)  # inside the footer/trailer region
            fh.write(b"\xff\xff\xff\xff")
        lazy = Archive.open(truncatable)
        with pytest.raises(ArchiveIndexError, match="checksum"):
            lazy.index()

    def test_replaced_file_detected_by_size_pin(self, truncatable):
        """A file replaced with different-length content after open is
        caught by the open-time size pin."""
        lazy = Archive.open(truncatable)
        with open(truncatable, "ab") as fh:
            fh.write(b"garbage appended after open")
        with pytest.raises(ArchiveIndexError, match="open time"):
            lazy.to_bytes()
