"""Bound value-type tests: constructors, conversions, legacy interop."""

import numpy as np
import pytest

from repro.bound import BOUND_KINDS, Bound


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(3)
    return rng.normal(size=(5, 12, 12)).cumsum(axis=0)


class TestConstructors:
    def test_kinds(self):
        assert Bound.pointwise(0.5).kind == "pointwise"
        assert Bound.rmse(0.1).kind == "rmse"
        assert Bound.l2(25.0).kind == "l2"
        assert Bound.tau(25.0) == Bound.l2(25.0)  # paper alias
        assert Bound.nrmse(1e-3).kind == "nrmse"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="bound kind"):
            Bound("max-abs", 0.1)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"),
                                       float("inf")])
    def test_invalid_value_rejected(self, value):
        with pytest.raises(ValueError, match="finite and positive"):
            Bound.nrmse(value)

    def test_parse(self):
        assert Bound.parse("nrmse:1e-3") == Bound.nrmse(1e-3)
        assert Bound.parse("l2:25") == Bound.l2(25.0)
        assert Bound.parse("POINTWISE: 0.5") == Bound.pointwise(0.5)
        assert Bound.parse("0.01") == Bound.nrmse(0.01)  # bare number
        with pytest.raises(ValueError):
            Bound.parse("junk:1")

    def test_frozen_hashable_picklable(self):
        import pickle
        b = Bound.nrmse(1e-3)
        with pytest.raises(Exception):
            b.value = 2.0
        assert pickle.loads(pickle.dumps(b)) == b
        assert len({b, Bound.nrmse(1e-3), Bound.l2(1.0)}) == 2


class TestConversions:
    @pytest.mark.parametrize("kind", BOUND_KINDS)
    def test_same_kind_is_identity(self, kind, frames):
        b = Bound(kind, 0.25)
        assert b.to(kind, frames=frames) is b

    @pytest.mark.parametrize("src", ["rmse", "l2", "nrmse"])
    @pytest.mark.parametrize("dst", ["rmse", "l2", "nrmse"])
    def test_exact_subgroup_roundtrips(self, src, dst, frames):
        """rmse/l2/nrmse are exact linear bijections of each other."""
        b = Bound(src, 0.125)
        back = b.to(dst, frames=frames).to(src, frames=frames)
        assert back.kind == src
        assert back.value == pytest.approx(b.value, rel=1e-12)

    @pytest.mark.parametrize("dst", ["rmse", "l2", "nrmse"])
    def test_pointwise_roundtrips_are_conservative(self, dst, frames):
        """Conversions through pointwise contract (never loosen)."""
        b = Bound.pointwise(0.125)
        back = b.to(dst, frames=frames).to("pointwise", frames=frames)
        assert back.value <= b.value * (1 + 1e-12)
        other = Bound(dst, 0.125)
        there = other.to("pointwise", frames=frames).to(dst,
                                                       frames=frames)
        assert there.value <= other.value * (1 + 1e-12)

    def test_pointwise_source_routes_through_l2(self, frames):
        """max|err| <= ||err||_2: a pointwise target converts to the
        *same* L2 value, and to rmse as value / sqrt(n) — enforcing
        either guarantees the pointwise bound."""
        n = frames.size
        b = Bound.pointwise(0.5)
        assert b.to("l2", frames=frames).value == 0.5
        assert b.to("rmse", frames=frames).value \
            == pytest.approx(0.5 / np.sqrt(n))

    def test_pointwise_bound_holds_on_l2_native_codec(self):
        """Regression: Bound.pointwise must actually bound max|err|
        when enforced by an rmse/l2-native codec."""
        from repro.codecs import get_codec
        rng = np.random.default_rng(11)
        frames = rng.normal(size=(8, 16, 16)).cumsum(axis=0)
        codec = get_codec("tthresh")  # rmse-native
        target = 0.05
        native = Bound.pointwise(target).native_for(codec, frames)
        res = codec.compress(frames, native)
        assert np.abs(res.reconstruction - frames).max() \
            <= target * (1 + 1e-9)

    def test_matches_legacy_table(self, frames):
        """The exact formulas of the retired codecs/base.py table."""
        n = frames.size
        rng_ = float(frames.max() - frames.min())
        # nrmse -> native kinds
        assert Bound.nrmse(0.01).to("pointwise", frames=frames).value \
            == pytest.approx(0.01 * rng_)
        assert Bound.nrmse(0.01).to("l2", frames=frames).value \
            == pytest.approx(0.01 * rng_ * np.sqrt(n))
        # l2 tau -> native kinds
        assert Bound.l2(5.0).to("rmse", frames=frames).value \
            == pytest.approx(5.0 / np.sqrt(n))
        assert Bound.l2(5.0).to("l2", frames=frames).value == 5.0

    def test_explicit_stats_instead_of_frames(self):
        assert Bound.nrmse(0.1).to("rmse", data_range=2.0).value \
            == pytest.approx(0.2)
        assert Bound.rmse(0.5).to("l2", n=100).value \
            == pytest.approx(5.0)

    def test_missing_stats_raise(self):
        with pytest.raises(ValueError, match="element count"):
            Bound.rmse(0.5).to("l2")
        with pytest.raises(ValueError, match="data range"):
            Bound.rmse(0.5).to("nrmse")
        with pytest.raises(ValueError, match="bound kind"):
            Bound.rmse(0.5).to("junk")

    def test_native_for_codec(self, frames):
        from repro.codecs import get_codec
        sz = get_codec("szlike")       # pointwise-native
        tt = get_codec("tthresh")      # rmse-native
        b = Bound.nrmse(0.01)
        rng_ = float(frames.max() - frames.min())
        assert b.native_for(sz, frames) == pytest.approx(0.01 * rng_)
        assert b.native_for(tt, frames) == pytest.approx(0.01 * rng_)

    def test_native_bound_delegates_to_bound(self, frames):
        """Codec.native_bound keeps its legacy semantics exactly."""
        from repro.codecs import get_codec
        codec = get_codec("szlike")
        legacy = codec.native_bound(frames, nrmse_bound=0.02)
        typed = codec.native_bound(frames, bound=Bound.nrmse(0.02))
        assert legacy == typed


class TestCoalesce:
    def test_single_source(self):
        assert Bound.coalesce(error_bound=5.0) == Bound.l2(5.0)
        assert Bound.coalesce(nrmse_bound=0.1) == Bound.nrmse(0.1)
        b = Bound.pointwise(1.0)
        assert Bound.coalesce(bound=b) is b
        assert Bound.coalesce() is None

    def test_multiple_sources_rejected(self):
        with pytest.raises(ValueError, match="not several"):
            Bound.coalesce(error_bound=1.0, nrmse_bound=0.1)
        with pytest.raises(ValueError, match="not several"):
            Bound.coalesce(bound=Bound.l2(1.0), nrmse_bound=0.1)

    def test_raw_float_rejected_with_hint(self):
        with pytest.raises(TypeError, match="Codec.compress"):
            Bound.coalesce(bound=0.5)

    def test_legacy_kwargs(self):
        frames = np.zeros((2, 4, 4)) + np.arange(2)[:, None, None]
        assert Bound.nrmse(0.1).legacy_kwargs() == {
            "error_bound": None, "nrmse_bound": 0.1}
        assert Bound.l2(5.0).legacy_kwargs() == {
            "error_bound": 5.0, "nrmse_bound": None}
        kw = Bound.rmse(0.5).legacy_kwargs(frames)
        assert kw["nrmse_bound"] is None
        assert kw["error_bound"] == pytest.approx(
            0.5 * np.sqrt(frames.size))
