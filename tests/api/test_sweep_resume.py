"""Resumable sweeps: crash after K of N shards, resume, byte-identity.

The fault injector rides the runtime's event stream: raising from the
``on_event`` observer at the Kth ``completed`` event aborts the sweep
*after* the journal write for that shard (``on_result`` — and thus the
journal append — fires before the event), which is exactly the state a
SIGKILL between shards leaves behind.
"""

import json

import pytest

from repro.api import Session, SessionError

SHAPE = {"t": 16, "h": 12, "w": 12}
SWEEP = dict(shards=4, nrmse_bound=0.01, seed=7, variables=[0],
             dataset_overrides=SHAPE)
N = 4


class _CrashAfter:
    """on_event observer that kills the sweep after K completions."""

    def __init__(self, k):
        self.k = k
        self.completed = 0

    def __call__(self, event):
        if event.kind == "completed":
            self.completed += 1
            if self.completed >= self.k:
                raise KeyboardInterrupt(
                    f"injected crash after {self.k} shards")


class _CountEvents:
    def __init__(self):
        self.kinds = []

    def __call__(self, event):
        self.kinds.append(event.kind)


def _task_lines(journal_path):
    lines = []
    for line in journal_path.read_text().splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("kind") == "task":
            lines.append(record)
    return lines


@pytest.fixture()
def session():
    with Session(codec="szlike", executor="serial") as s:
        yield s


def _reference(session):
    return session.sweep("e3sm", **SWEEP).to_bytes()


class TestCrashResume:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_kill_after_k_resume_recomputes_n_minus_k(
            self, session, tmp_path, k):
        reference = _reference(session)
        journal = tmp_path / "sweep.journal"

        with pytest.raises(KeyboardInterrupt):
            session.sweep("e3sm", journal=journal,
                          on_event=_CrashAfter(k), **SWEEP)
        # the journal survived the crash with exactly k durable shards
        assert len(_task_lines(journal)) == k

        counter = _CountEvents()
        archive = session.sweep("e3sm", journal=journal,
                                on_event=counter, **SWEEP)
        assert archive.to_bytes() == reference
        # provably recomputed only the incomplete shards
        assert counter.kinds.count("completed") == N - k
        assert archive.stats["resumed_shards"] == k
        assert archive.stats["computed_shards"] == N - k

    def test_resumed_archive_matches_across_backends(self, tmp_path):
        with Session(codec="szlike", executor="serial") as s:
            reference = _reference(s)
            journal = tmp_path / "sweep.journal"
            with pytest.raises(KeyboardInterrupt):
                s.sweep("e3sm", journal=journal,
                        on_event=_CrashAfter(2), **SWEEP)
        # resume on a *different* backend: still byte-identical
        with Session(codec="szlike", executor="process", workers=2) as s:
            archive = s.sweep("e3sm", journal=journal, **SWEEP)
        assert archive.to_bytes() == reference

    def test_completed_sweep_replays_fully(self, session, tmp_path):
        journal = tmp_path / "sweep.journal"
        first = session.sweep("e3sm", journal=journal, **SWEEP)
        counter = _CountEvents()
        second = session.sweep("e3sm", journal=journal,
                               on_event=counter, **SWEEP)
        assert second.to_bytes() == first.to_bytes()
        assert counter.kinds.count("completed") == 0
        assert second.stats["resumed_shards"] == N


class TestDamageRecovery:
    def test_corrupted_line_recomputes_only_that_shard(
            self, session, tmp_path):
        reference = _reference(session)
        journal = tmp_path / "sweep.journal"
        session.sweep("e3sm", journal=journal, **SWEEP)

        # mangle one task line in place (bit rot / partial write)
        lines = journal.read_text().splitlines()
        broken = next(i for i, ln in enumerate(lines)
                      if '"kind":"task"' in ln)
        lines[broken] = lines[broken][: len(lines[broken]) // 2]
        journal.write_text("\n".join(lines) + "\n")

        counter = _CountEvents()
        archive = session.sweep("e3sm", journal=journal,
                                on_event=counter, **SWEEP)
        assert archive.to_bytes() == reference
        assert counter.kinds.count("completed") == 1
        assert archive.stats["resumed_shards"] == N - 1

    def test_corrupted_object_recomputes_only_that_shard(
            self, session, tmp_path):
        reference = _reference(session)
        journal = tmp_path / "sweep.journal"
        session.sweep("e3sm", journal=journal, **SWEEP)

        objects = sorted((tmp_path / "sweep.journal.objects").glob("*.bin"))
        objects[0].write_bytes(b"\x00" * objects[0].stat().st_size)

        counter = _CountEvents()
        archive = session.sweep("e3sm", journal=journal,
                                on_event=counter, **SWEEP)
        assert archive.to_bytes() == reference
        assert counter.kinds.count("completed") == 1


class TestGuards:
    def test_resume_false_refuses_nonempty_journal(
            self, session, tmp_path):
        journal = tmp_path / "sweep.journal"
        session.sweep("e3sm", journal=journal, **SWEEP)
        with pytest.raises(SessionError, match="already records"):
            session.sweep("e3sm", journal=journal, resume=False, **SWEEP)

    def test_changed_parameters_rejected(self, session, tmp_path):
        journal = tmp_path / "sweep.journal"
        session.sweep("e3sm", journal=journal, **SWEEP)
        changed = dict(SWEEP, nrmse_bound=0.02)
        with pytest.raises(SessionError, match="different parameters"):
            session.sweep("e3sm", journal=journal, **changed)

    def test_window_and_shards_are_exclusive(self, session, tmp_path):
        with pytest.raises(SessionError):
            session.sweep("e3sm", shards=4, window=8, nrmse_bound=0.01,
                          dataset_overrides=SHAPE)

    def test_window_mode_is_resumable(self, session, tmp_path):
        plain = session.sweep("e3sm", window=6, nrmse_bound=0.01,
                              seed=7, variables=[0],
                              dataset_overrides=SHAPE)
        journal = tmp_path / "sweep.journal"
        kwargs = dict(window=6, nrmse_bound=0.01, seed=7, variables=[0],
                      dataset_overrides=SHAPE, journal=journal)
        with pytest.raises(KeyboardInterrupt):
            session.sweep("e3sm", on_event=_CrashAfter(1), **kwargs)
        resumed = session.sweep("e3sm", **kwargs)
        assert resumed.to_bytes() == plain.to_bytes()
        assert resumed.stats["resumed_shards"] == 1
        # t=16, window=6 -> shards of 6, 6, 4 frames
        assert resumed.stats["shards"] == 3


class TestCliSweep:
    def test_cli_matches_api_and_resumes(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.cli import main
        monkeypatch.chdir(tmp_path)
        common = ["--codec", "szlike", "--shape", "16x12x12",
                  "--shards", "4", "--variable", "0",
                  "--nrmse-bound", "0.01", "--seed", "7",
                  "--executor", "serial"]
        assert main(["sweep", "e3sm", "ref.cdx"] + common) == 0
        assert main(["sweep", "e3sm", "j1.cdx", "--journal",
                     "sweep.journal"] + common) == 0
        # without --resume a warm journal is refused
        assert main(["sweep", "e3sm", "j2.cdx", "--journal",
                     "sweep.journal"] + common) == 2
        assert main(["sweep", "e3sm", "j3.cdx", "--journal",
                     "sweep.journal", "--resume"] + common) == 0
        out = capsys.readouterr().out
        assert "computed=0 resumed=4" in out
        ref = (tmp_path / "ref.cdx").read_bytes()
        assert (tmp_path / "j1.cdx").read_bytes() == ref
        assert (tmp_path / "j3.cdx").read_bytes() == ref

    def test_cli_sweep_matches_compress(self, tmp_path, capsys):
        from repro.cli import main
        sweep_out = tmp_path / "sweep.cdx"
        comp_out = tmp_path / "comp.cdx"
        common = ["--codec", "szlike", "--shape", "16x12x12",
                  "--shards", "4", "--nrmse-bound", "0.01",
                  "--executor", "serial"]
        assert main(["sweep", "e3sm", str(sweep_out), "--variable", "0"]
                    + common) == 0
        assert main(["compress", "--dataset", "e3sm", "--variable", "0",
                     str(comp_out)] + common) == 0
        assert sweep_out.read_bytes() == comp_out.read_bytes()
