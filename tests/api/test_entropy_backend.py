"""Entropy-backend selection end to end.

The acceptance criteria of the entropy-layer hardening: a session (or
the CLI) can pick ``arithmetic`` / ``rans`` / ``vrans`` / ``trans``
for every stream it writes, archives carry the backend tag so a
*fresh* session
decodes them with no hints, legacy (untagged / version-2) containers
keep decoding bit-identically, and executor backends stay
byte-interchangeable under a non-default coder.
"""

import numpy as np
import pytest

from repro.api import Archive, Bound, Session, SessionError
from repro.cli import main
from repro.data import get_dataset
from repro.entropy import get_default_backend, using_backend
from repro.metrics import nrmse
from repro.pipeline.blob import CompressedBlob
from repro.postprocess.coding import decode_ints, encode_ints

BOUND = Bound.nrmse(0.02)
TOL = 0.02 * (1 + 1e-9)


@pytest.fixture(scope="module")
def frames():
    return get_dataset("e3sm", t=12, h=16, w=16, seed=9).frames(0)


class TestSessionSelection:
    @pytest.mark.parametrize("backend", ["arithmetic", "rans", "vrans",
                                         "trans"])
    def test_array_roundtrip_with_fresh_session(self, frames, backend):
        with Session(codec="szlike", entropy_backend=backend) as s:
            archive = s.compress(frames, bound=BOUND)
        # decoding needs no backend hint: payloads self-describe
        with Session() as fresh:
            out = fresh.decompress(archive)
        assert nrmse(frames, out) <= TOL

    def test_per_call_override_beats_session_default(self, frames):
        with Session(codec="szlike", entropy_backend="vrans") as s:
            tagged = s.compress(frames, bound=BOUND)
            legacy = s.compress(frames, bound=BOUND,
                                entropy_backend="arithmetic")
            assert tagged.to_bytes() != legacy.to_bytes()
            np.testing.assert_array_equal(s.decompress(tagged),
                                          s.decompress(legacy))

    def test_arithmetic_selection_is_byte_identical_to_default(
            self, frames):
        """Selecting the default backend changes nothing on the wire —
        pre-backend archives and tagged-arithmetic archives are the
        same bytes."""
        with Session(codec="szlike") as plain, \
                Session(codec="szlike",
                        entropy_backend="arithmetic") as explicit:
            a = plain.compress(frames, bound=BOUND)
            b = explicit.compress(frames, bound=BOUND)
        assert a.to_bytes() == b.to_bytes()

    def test_default_restored_after_compress(self, frames):
        with Session(codec="szlike", entropy_backend="vrans") as s:
            s.compress(frames, bound=BOUND)
        assert get_default_backend().name == "arithmetic"

    def test_unknown_backend_raises_session_error(self, frames):
        with pytest.raises(SessionError, match="entropy backend"):
            Session(codec="szlike", entropy_backend="huffman")
        with Session(codec="szlike") as s:
            with pytest.raises(SessionError, match="entropy backend"):
                s.compress(frames, bound=BOUND,
                           entropy_backend="huffman")

    def test_multivar_and_stream_sources(self, frames):
        data = {"u": frames, "v": frames[::-1].copy()}
        with Session(codec="szlike", entropy_backend="vrans") as s:
            mv = s.compress(data, bound=BOUND)
            st = s.compress(iter(frames), bound=BOUND)
        with Session() as fresh:
            out = fresh.decompress(mv)
            assert sorted(out) == ["u", "v"]
            for key in data:
                assert nrmse(data[key], out[key]) <= TOL
            streamed = fresh.decompress(st)
        assert nrmse(frames, streamed) <= TOL


class TestExecutorByteIdentity:
    def _archive(self, executor):
        with Session(codec="szlike", executor=executor, seed=3,
                     entropy_backend="vrans") as s:
            return s.compress("e3sm", bound=BOUND, variables=[0],
                              shards=4,
                              dataset_overrides={"t": 12, "h": 16,
                                                 "w": 16},
                              keep_reconstruction=False).to_bytes()

    def test_serial_thread_process_identical_under_vrans(self):
        serial = self._archive("serial")
        assert self._archive("thread") == serial
        assert self._archive("process") == serial


class TestContainerTags:
    def _blob(self, backend):
        rng = np.random.default_rng(0)
        return CompressedBlob(
            shape=(4, 8, 8), window=4, keyframe_strategy="fixed",
            keyframe_interval=2, sampler="ddim", sample_steps=2,
            noise_seed=7,
            frame_norms=rng.random((4, 2)).astype("<f4"),
            y_stream=b"yy", z_stream=b"zz",
            y_header={"L": 3}, z_header={"zmin": -1, "zmax": 2},
            y_shape=(2, 1, 2, 2), z_shape=(2, 1, 1, 1),
            entropy_backend=backend)

    def test_arithmetic_blob_keeps_version_2_wire(self):
        data = self._blob("arithmetic").to_bytes()
        assert data[4] == 2  # version byte: legacy layout untouched
        back = CompressedBlob.from_bytes(data)
        assert back.entropy_backend == "arithmetic"
        assert back.y_header == {"L": 3}

    def test_tagged_blob_bumps_to_version_3(self):
        blob = self._blob("vrans")
        data = blob.to_bytes()
        assert data[4] == 3
        back = CompressedBlob.from_bytes(data)
        assert back.entropy_backend == "vrans"
        assert back.y_header == {"L": 3, "backend": "vrans"}
        assert back.z_header == {"zmin": -1, "zmax": 2,
                                 "backend": "vrans"}
        assert back.streams_dict()["entropy_backend"] == "vrans"

    def test_tagged_blob_is_one_byte_longer(self):
        assert (len(self._blob("rans").to_bytes())
                == len(self._blob("arithmetic").to_bytes()) + 1)

    def test_trans_blob_roundtrips_tag(self):
        back = CompressedBlob.from_bytes(self._blob("trans").to_bytes())
        assert back.entropy_backend == "trans"
        assert back.y_header == {"L": 3, "backend": "trans"}

    def test_encode_ints_tags_non_default_backends(self):
        values = np.repeat(np.arange(-40, 41), 40)
        legacy = encode_ints(values)
        for backend in ("rans", "vrans", "trans"):
            tagged = encode_ints(values, backend=backend)
            out, end = decode_ints(tagged)
            np.testing.assert_array_equal(out, values)
            assert end == len(tagged)
            assert tagged[:2] == b"RT"
        out, _ = decode_ints(legacy)
        np.testing.assert_array_equal(out, values)
        assert legacy[:2] in (b"RI", b"RV")

    def test_encode_ints_default_scopes_with_using_backend(self):
        values = np.repeat(np.arange(-40, 41), 40)
        with using_backend("vrans"):
            scoped = encode_ints(values)
        assert scoped == encode_ints(values, backend="vrans")
        out, _ = decode_ints(scoped)
        np.testing.assert_array_equal(out, values)


class TestCLI:
    def test_compress_decompress_with_entropy_flag(self, tmp_path,
                                                   capsys):
        out = tmp_path / "e3sm.cdx"
        restored = tmp_path / "restored.npy"
        rc = main(["compress", "--dataset", "e3sm", "--shape",
                   "12x16x16", "--codec", "szlike", "--nrmse-bound",
                   "0.02", "--entropy-backend", "vrans", str(out)])
        assert rc == 0
        archive = Archive.open(out)
        assert archive.kind == "shard"
        rc = main(["decompress", "-", str(out), str(restored)])
        assert rc == 0
        frames = get_dataset("e3sm", t=12, h=16, w=16).frames(0)
        assert nrmse(frames, np.load(restored)) <= TOL
        capsys.readouterr()

    def test_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compress", "--dataset", "e3sm", "--codec", "szlike",
                  "--entropy-backend", "nope",
                  str(tmp_path / "x.cdx")])
