"""Archive sniffing/loader tests across every container format,
including legacy v1 (blob-only) envelope containers and pre-manifest
model bundles."""

import numpy as np
import pytest

from repro.api import ARCHIVE_KINDS, Archive, SessionError, sniff_kind
from repro.codecs import get_codec, pack_envelope
from repro.pipeline.multivar import MultiVarArchive
from repro.pipeline.plan import ShardEntry, pack_shard_archive
from repro.pipeline.streaming import StreamArchive


@pytest.fixture(scope="module")
def szlike_payload():
    frames = np.random.default_rng(0).normal(size=(4, 8, 8)).cumsum(0)
    res = get_codec("szlike").compress(frames, 0.01)
    return res.payload


@pytest.fixture(scope="module")
def ours_blob():
    """A real pipeline blob (untrained tiny preset — smoke quality)."""
    frames = np.random.default_rng(1).normal(size=(12, 16, 16)).cumsum(0)
    return get_codec("ours").compress(frames).blob


class TestSniffing:
    def test_envelope(self, szlike_payload):
        data = pack_envelope("szlike", szlike_payload)
        assert sniff_kind(data) == "envelope"
        archive = Archive.open(data)
        assert archive.kind == "envelope"
        assert archive.codecs() == ["szlike"]
        name, payload = archive.envelope()
        assert (name, payload) == ("szlike", szlike_payload)

    def test_shard(self, szlike_payload):
        env = pack_envelope("szlike", szlike_payload)
        data = pack_shard_archive([
            ShardEntry("x/v0/t0000-0004", 0, 0, 4, env)])
        archive = Archive.open(data)
        assert archive.kind == "shard"
        assert archive.codecs() == ["szlike"]
        assert archive.describe()["variables"] == [0]

    def test_multivar_v2(self, szlike_payload):
        env = pack_envelope("szlike", szlike_payload)
        data = MultiVarArchive(envelopes={"u": env}).to_bytes()
        archive = Archive.open(data)
        assert archive.kind == "multivar"
        assert archive.codecs() == ["szlike"]

    def test_multivar_v1_legacy(self, ours_blob):
        """Version-1 container: blob entries only, pre-codec-registry."""
        data = MultiVarArchive(blobs={"var0": ours_blob}).to_bytes(
            version=1)
        # the v1 wire format has no entry-kind byte
        assert data[4] == 1
        archive = Archive.open(data)
        assert archive.kind == "multivar"
        assert archive.codecs() == ["ours"]
        assert archive.multivar().blobs["var0"].to_bytes() \
            == ours_blob.to_bytes()

    def test_stream_v2(self, szlike_payload):
        env = pack_envelope("szlike", szlike_payload)
        data = StreamArchive(envelopes=[((4, 8, 8), env)]).to_bytes()
        archive = Archive.open(data)
        assert archive.kind == "stream"
        assert archive.codecs() == ["szlike"]

    def test_stream_v1_legacy(self, ours_blob):
        data = StreamArchive(blobs=[ours_blob]).to_bytes()
        assert data[4] == 1
        archive = Archive.open(data)
        assert archive.kind == "stream"
        assert archive.codecs() == ["ours"]
        assert archive.describe()["frames"] == ours_blob.shape[0]

    def test_blob(self, ours_blob):
        archive = Archive.open(ours_blob.to_bytes())
        assert archive.kind == "blob"
        assert archive.codecs() == ["ours"]
        assert archive.blob().shape == ours_blob.shape

    def test_model_npz_is_not_an_archive(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez_compressed(path, weights=np.zeros(3))
        data = path.read_bytes()
        assert sniff_kind(data) == "model"
        with pytest.raises(SessionError, match="not an archive"):
            Archive.open(data)

    def test_unrecognized_magic(self):
        with pytest.raises(SessionError, match="unrecognized container"):
            Archive.open(b"JUNKJUNKJUNK")

    def test_kinds_cover_every_container(self):
        assert set(ARCHIVE_KINDS) == {"blob", "envelope", "multivar",
                                      "stream", "shard"}


class TestArchiveIO:
    def test_save_open_roundtrip(self, tmp_path, szlike_payload):
        data = pack_envelope("szlike", szlike_payload)
        archive = Archive.open(data)
        path = tmp_path / "a.cdx"
        archive.save(path)
        again = Archive.open(path)
        assert again == archive
        assert again.to_bytes() == data
        assert len(again) == len(data)

    def test_open_passes_archives_through(self, szlike_payload):
        archive = Archive.open(pack_envelope("szlike", szlike_payload))
        assert Archive.open(archive) is archive

    def test_wrong_kind_accessor(self, szlike_payload):
        archive = Archive.open(pack_envelope("szlike", szlike_payload))
        with pytest.raises(SessionError, match="not 'shard'"):
            archive.shard_entries()


class TestLegacyBundles:
    def test_pre_manifest_bundle_detected_by_info(self, tmp_path,
                                                  trained_compressor):
        """Legacy (pre-manifest) bundles are models, not archives —
        Session.info identifies them and Archive.open refuses."""
        from repro.api import Session
        from repro.pipeline.bundle import compressor_state
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **compressor_state(trained_compressor))
        info = Session().info(path)
        assert info["kind"] == "bundle"
        assert info["state_arrays"] > 0
        with pytest.raises(SessionError, match="not an archive"):
            Archive.open(path.read_bytes())

    def test_artifact_detected_by_info(self, tmp_path,
                                       trained_compressor):
        from repro.api import Session
        from repro.codecs import LatentDiffusionCodec
        from repro.pipeline.artifacts import save_artifact
        path = tmp_path / "artifact.npz"
        save_artifact(path, LatentDiffusionCodec(
            compressor=trained_compressor))
        info = Session().info(path)
        assert info["kind"] == "artifact"
        assert info["manifest"].codec == "ours"


@pytest.fixture(scope="module")
def trained_compressor():
    """An untrained tiny compressor is enough: bundle layout, not
    rate-distortion, is under test."""
    from repro.codecs import get_codec
    return get_codec("ours").compressor
