"""Deprecation shims for the retired top-level entry points."""

import warnings

import pytest


class TestTopLevelShims:
    @pytest.mark.parametrize("name", ["MultiVariableCompressor",
                                      "StreamingCompressor"])
    def test_warns_and_forwards(self, name):
        import repro
        import repro.pipeline
        with pytest.warns(DeprecationWarning, match="Session.compress"):
            cls = getattr(repro, name)
        assert cls is getattr(repro.pipeline, name)

    @pytest.mark.parametrize("name", ["MultiVariableCompressor",
                                      "StreamingCompressor"])
    def test_from_import_warns(self, name):
        with pytest.warns(DeprecationWarning):
            exec(f"from repro import {name}")

    def test_pipeline_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.pipeline import (MultiVariableCompressor,
                                        StreamingCompressor)
            assert MultiVariableCompressor and StreamingCompressor

    def test_shims_stay_functional(self):
        """The forwarded classes are the real, working implementations."""
        import numpy as np
        with pytest.warns(DeprecationWarning):
            from repro import StreamingCompressor
        frames = np.random.default_rng(0).normal(size=(8, 8, 8)).cumsum(0)
        sc = StreamingCompressor("szlike", chunk_windows=4)
        archive = sc.compress(iter(frames), nrmse_bound=0.05)
        assert archive.num_frames == frames.shape[0]

    def test_unknown_attribute_still_raises(self):
        import repro
        with pytest.raises(AttributeError):
            repro.NoSuchThing
