"""Session.close() lifecycle contract: idempotent, exception-safe,
and finalizer-free — what lets long-running owners (the compression
service) call it unconditionally from ``finally``."""

import numpy as np
import pytest

from repro.api import Session, SessionError


class TestCloseIdempotence:
    def test_double_close_is_harmless(self):
        session = Session()
        session.close()
        session.close()

    def test_close_after_context_exit(self):
        with Session() as session:
            pass
        session.close()  # the context already closed it

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_double_close_per_executor(self, executor):
        session = Session(executor=executor)
        session.close()
        session.close()


class TestCloseExceptionSafety:
    def test_close_on_partially_constructed_session(self):
        """__init__ validates the entropy backend before the executor
        exists; close() on the partially-built instance must not
        raise (service shutdown paths cannot know how far a failed
        constructor got)."""
        try:
            Session(entropy_backend="definitely-not-a-backend")
        except SessionError:
            pass
        shell = Session.__new__(Session)  # no __init__ at all
        shell.close()

    def test_close_swallows_executor_failure(self):
        session = Session()

        class ExplodingExecutor:
            name = "exploding"

            def close(self):
                raise RuntimeError("teardown failed")

        session.executor = ExplodingExecutor()
        session.close()  # must not propagate

    def test_close_after_executor_use(self):
        session = Session(executor="thread")
        frames = np.random.default_rng(0).standard_normal(
            (4, 8, 8)).astype(np.float32)
        session.compress(frames, codec="szlike", nrmse_bound=0.1,
                         shards=2, seed=0)
        session.close()
        session.close()


class TestNoFinalizer:
    def test_session_defines_no_del(self):
        """Cleanup is explicit (close/context manager); a __del__
        would make teardown order GC-dependent and mask executor
        leaks."""
        assert "__del__" not in Session.__dict__
        assert not hasattr(Session, "__del__")

    def test_usable_after_close_with_lazy_executors(self):
        """Pooled executors recreate lazily; a closed session can
        still serve a follow-up call (close releases resources, it
        does not poison the object)."""
        session = Session(executor="thread")
        session.close()
        frames = np.random.default_rng(0).standard_normal(
            (4, 8, 8)).astype(np.float32)
        archive = session.compress(frames, codec="szlike",
                                   nrmse_bound=0.1, shards=2, seed=0)
        assert archive.to_bytes()
        session.close()
