"""Tests for the FAZ-analogue (integer wavelet + modular auto-select)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fazlike import (FAZLikeCompressor, WaveletCoder,
                                     _corner_sizes, lift_forward,
                                     lift_inverse)


def _smooth_stack(t=8, h=16, w=16, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.linspace(0, 1, t)[:, None, None]
    ys = np.linspace(0, 1, h)[None, :, None]
    xs = np.linspace(0, 1, w)[None, None, :]
    return (np.sin(2 * np.pi * (xs + ts)) * np.cos(np.pi * ys)
            + 0.02 * rng.standard_normal((t, h, w)))


class TestLifting:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 33), seed=st.integers(0, 10 ** 6))
    def test_roundtrip_exact_any_length(self, n, seed):
        """Integer lifting must invert exactly for every length."""
        rng = np.random.default_rng(seed)
        x = rng.integers(-10 ** 6, 10 ** 6, size=(n, 3, 2))
        w = lift_forward(x, 0)
        back = lift_inverse(w, 0)
        np.testing.assert_array_equal(back, x)

    @settings(max_examples=25, deadline=None)
    @given(axis=st.integers(0, 2), seed=st.integers(0, 10 ** 6))
    def test_roundtrip_all_axes(self, axis, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-1000, 1000, size=(7, 9, 8))
        np.testing.assert_array_equal(
            lift_inverse(lift_forward(x, axis), axis), x)

    def test_detail_band_small_on_smooth_signal(self):
        """5/3 details vanish on locally linear signals."""
        x = np.arange(64, dtype=np.int64).reshape(64, 1, 1) * 10
        w = lift_forward(x, 0)
        # interior details vanish; the final one sees only the mirrored
        # left neighbour and keeps the ramp slope
        detail = w[32:-1]
        assert np.abs(detail).max() <= 1  # only rounding residue

    def test_band_layout(self):
        x = np.arange(8, dtype=np.int64).reshape(8, 1, 1)
        w = lift_forward(x, 0)
        assert w.shape == x.shape
        # approx band carries the signal's scale, detail is tiny
        assert np.abs(w[:4]).mean() > np.abs(w[4:]).mean()

    def test_short_axis_passthrough(self):
        x = np.array([[[5]]], dtype=np.int64)
        np.testing.assert_array_equal(lift_forward(x, 0), x)
        np.testing.assert_array_equal(lift_inverse(x, 0), x)


class TestCornerSizes:
    def test_dyadic(self):
        assert _corner_sizes((8, 8, 8), 2) == [(8, 8, 8), (4, 4, 4),
                                               (2, 2, 2)]

    def test_odd_sizes_ceil(self):
        assert _corner_sizes((9, 5, 7), 1) == [(9, 5, 7), (5, 3, 4)]

    def test_size_one_axes_stay(self):
        assert _corner_sizes((1, 8, 8), 1) == [(1, 8, 8), (1, 4, 4)]


class TestWaveletCoder:
    def test_pointwise_bound_honored(self):
        x = 100.0 * _smooth_stack()
        coder = WaveletCoder(levels=2)
        for eb in (1e-1, 1e-3):
            rec = coder.decompress(coder.compress(x, error_bound=eb))
            assert np.abs(x - rec).max() <= eb * (1 + 1e-9)

    def test_compresses_smooth_data(self):
        x = _smooth_stack(16, 32, 32)
        stream = WaveletCoder(levels=3).compress(x, error_bound=1e-3)
        assert len(stream) < x.size * 8 / 3

    def test_odd_shapes_roundtrip(self):
        x = _smooth_stack(7, 13, 11, seed=3)
        coder = WaveletCoder(levels=2)
        rec = coder.decompress(coder.compress(x, error_bound=1e-2))
        assert rec.shape == x.shape
        assert np.abs(x - rec).max() <= 1e-2 * (1 + 1e-9)

    def test_rejects_bad_inputs(self):
        coder = WaveletCoder()
        with pytest.raises(ValueError):
            coder.compress(np.zeros((4, 4)), error_bound=0.1)
        with pytest.raises(ValueError):
            coder.compress(np.zeros((4, 4, 4)), error_bound=0.0)
        with pytest.raises(ValueError):
            WaveletCoder(levels=0)
        with pytest.raises(ValueError):
            coder.decompress(b"JUNK" + b"\x00" * 16)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           t=st.integers(2, 9), h=st.integers(4, 12), w=st.integers(4, 12))
    def test_bound_property_random_shapes(self, seed, t, h, w):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((t, h, w)).cumsum(axis=2)
        eb = 0.03
        coder = WaveletCoder(levels=2)
        rec = coder.decompress(coder.compress(x, error_bound=eb))
        assert np.abs(x - rec).max() <= eb * (1 + 1e-9)


class TestFAZLike:
    def test_bound_and_roundtrip(self):
        x = _smooth_stack(8, 16, 16, seed=4)
        comp = FAZLikeCompressor(levels=2)
        for eb in (1e-1, 1e-3):
            rec = comp.decompress(comp.compress(x, error_bound=eb))
            assert np.abs(x - rec).max() <= eb * (1 + 1e-9)

    def test_never_larger_than_both_modules(self):
        x = _smooth_stack(8, 16, 16, seed=5)
        comp = FAZLikeCompressor(levels=2)
        eb = 1e-3
        combined = comp.compress(x, error_bound=eb)
        wav = comp.wavelet.compress(x, error_bound=eb)
        prd = comp.predictor.compress(x, error_bound=eb)
        assert len(combined) <= min(len(wav), len(prd)) + 5  # +tag/magic

    def test_chosen_module_reported(self):
        x = _smooth_stack(8, 16, 16, seed=6)
        comp = FAZLikeCompressor(levels=2)
        stream = comp.compress(x, error_bound=1e-3)
        assert comp.chosen_module(stream) in ("wavelet", "predictor")

    def test_rejects_foreign_stream(self):
        comp = FAZLikeCompressor()
        with pytest.raises(ValueError):
            comp.decompress(b"XXXX\x00" + b"\x00" * 8)
        with pytest.raises(ValueError):
            comp.chosen_module(b"XXXX\x00")
        with pytest.raises(ValueError):
            comp.decompress(b"FAZ1\x07" + b"\x00" * 8)  # bad tag
