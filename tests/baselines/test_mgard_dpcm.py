"""Tests for the MGARD-analogue and DPCM baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dpcm import DPCMCompressor
from repro.baselines.mgard import (MGARDLikeCompressor,
                                   _interpolate_from_level, _level_mask)


def _advecting_stack(t=9, h=17, w=16, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.linspace(0, 1, t)[:, None, None]
    ys = np.linspace(0, 1, h)[None, :, None]
    xs = np.linspace(0, 1, w)[None, None, :]
    base = np.sin(2 * np.pi * (xs - 0.5 * ts)) * np.cos(np.pi * ys)
    return 10.0 * base + 0.05 * rng.standard_normal((t, h, w))


class TestLevelHelpers:
    def test_level_mask_counts(self):
        mask = _level_mask((8, 8, 8), 1)
        assert mask.sum() == 4 * 4 * 4
        assert mask[0, 0, 0] and mask[2, 4, 6]
        assert not mask[1, 0, 0]

    def test_level0_mask_is_everything(self):
        assert _level_mask((4, 5, 6), 0).all()

    def test_interpolation_reproduces_linear_fields(self):
        """Multilinear interpolation is exact on multilinear data."""
        t, h, w = 9, 9, 9
        ts = np.arange(t)[:, None, None].astype(float)
        ys = np.arange(h)[None, :, None].astype(float)
        xs = np.arange(w)[None, None, :].astype(float)
        lin = 2 * ts + 3 * ys - xs + 1
        interp = _interpolate_from_level(lin, 2)
        np.testing.assert_allclose(interp, lin, atol=1e-10)

    def test_interpolation_is_convex_combination(self):
        """Interpolated values never exceed the lattice range."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((9, 9, 9))
        level = 2
        interp = _interpolate_from_level(x, level)
        lattice = x[::4, ::4, ::4]
        assert interp.max() <= lattice.max() + 1e-12
        assert interp.min() >= lattice.min() - 1e-12


class TestMGARDLike:
    def test_pointwise_bound_honored(self):
        x = _advecting_stack()
        comp = MGARDLikeCompressor(levels=2)
        for eb in (1e-1, 1e-2, 1e-3):
            rec = comp.decompress(comp.compress(x, error_bound=eb))
            assert np.abs(x - rec).max() <= eb * (1 + 1e-9)

    def test_compresses(self):
        x = _advecting_stack(16, 32, 32)
        stream = MGARDLikeCompressor(levels=3).compress(x, error_bound=1e-2)
        assert len(stream) < x.size * 8 / 4

    def test_progressive_decode_levels(self):
        """Coarser reads are smooth views with monotone error."""
        x = _advecting_stack(9, 17, 17, seed=1)
        comp = MGARDLikeCompressor(levels=3)
        stream = comp.compress(x, error_bound=1e-3)
        errs = []
        for lvl in range(4):
            rec = comp.decompress(stream, max_level=lvl)
            assert rec.shape == x.shape
            errs.append(np.abs(x - rec).max())
        # full decode is best; coarser never better than full
        assert errs[0] <= 1e-3 * (1 + 1e-9)
        assert all(e >= errs[0] for e in errs[1:])

    def test_progressive_level_out_of_range(self):
        x = _advecting_stack(5, 9, 9)
        comp = MGARDLikeCompressor(levels=2)
        stream = comp.compress(x, error_bound=1e-2)
        with pytest.raises(ValueError):
            comp.decompress(stream, max_level=3)

    def test_decoder_ignores_constructor_params(self):
        """Budget split travels in the header, not the object."""
        x = _advecting_stack(9, 16, 16, seed=2)
        stream = MGARDLikeCompressor(
            levels=2, budget_ratio=0.3).compress(x, error_bound=1e-2)
        rec = MGARDLikeCompressor(
            levels=4, budget_ratio=0.9).decompress(stream)
        assert np.abs(x - rec).max() <= 1e-2 * (1 + 1e-9)

    def test_rejects_bad_inputs(self):
        comp = MGARDLikeCompressor()
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4)), error_bound=0.1)
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4, 4)), error_bound=-1.0)
        with pytest.raises(ValueError):
            MGARDLikeCompressor(levels=0)
        with pytest.raises(ValueError):
            MGARDLikeCompressor(budget_ratio=1.0)
        with pytest.raises(ValueError):
            comp.decompress(b"ZZZZ" + b"\x00" * 32)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           t=st.integers(4, 10), h=st.integers(5, 12),
           w=st.integers(5, 12))
    def test_bound_property_random_shapes(self, seed, t, h, w):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((t, h, w)).cumsum(axis=1)
        eb = 0.05
        comp = MGARDLikeCompressor(levels=2)
        rec = comp.decompress(comp.compress(x, error_bound=eb))
        assert np.abs(x - rec).max() <= eb * (1 + 1e-9)


class TestDPCM:
    def test_pointwise_bound_honored_both_orders(self):
        x = _advecting_stack()
        for order in (1, 2):
            comp = DPCMCompressor(order=order)
            for eb in (1e-1, 1e-3):
                rec = comp.decompress(comp.compress(x, error_bound=eb))
                assert np.abs(x - rec).max() <= eb * (1 + 1e-9)

    def test_order2_beats_order1_on_linear_motion(self):
        """Linear extrapolation wins when frames drift linearly."""
        t = np.arange(12, dtype=float)[:, None, None]
        rng = np.random.default_rng(0)
        spatial = rng.standard_normal((1, 16, 16))
        x = spatial + 0.7 * t  # per-pixel linear ramp in time
        s1 = DPCMCompressor(order=1).compress(x, error_bound=1e-3)
        s2 = DPCMCompressor(order=2).compress(x, error_bound=1e-3)
        assert len(s2) < len(s1)

    def test_stream_records_order(self):
        x = _advecting_stack(6, 8, 8)
        stream = DPCMCompressor(order=2).compress(x, error_bound=1e-2)
        rec = DPCMCompressor(order=1).decompress(stream)
        assert np.abs(x - rec).max() <= 1e-2 * (1 + 1e-9)

    def test_static_sequence_is_cheap(self):
        x = np.tile(np.random.default_rng(1).standard_normal((1, 16, 16)),
                    (10, 1, 1))
        comp = DPCMCompressor(order=1)
        stream = comp.compress(x, error_bound=1e-3)
        # after frame 0 every residual is exactly zero
        assert len(stream) < x.size * 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DPCMCompressor(order=3)
        comp = DPCMCompressor()
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4)), error_bound=0.1)
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4, 4)), error_bound=0.0)
        with pytest.raises(ValueError):
            comp.decompress(b"NOPE" + b"\x00" * 16)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), order=st.sampled_from([1, 2]))
    def test_bound_property(self, seed, order):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((6, 7, 9))
        eb = 0.02
        comp = DPCMCompressor(order=order)
        rec = comp.decompress(comp.compress(x, error_bound=eb))
        assert np.abs(x - rec).max() <= eb * (1 + 1e-9)
