"""SZ3-like and ZFP-like rule-based compressor tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SZLikeCompressor, ZFPLikeCompressor
from repro.data import E3SMSynthetic, JHTDBSynthetic


def climate(t=8, h=24, w=24, seed=0):
    return E3SMSynthetic(t=t, h=h, w=w, seed=seed).frames(0)


class TestSZLike:
    def test_pointwise_bound(self):
        x = climate()
        eb = 0.05 * (x.max() - x.min())
        sz = SZLikeCompressor()
        back = sz.decompress(sz.compress(x, eb))
        assert back.shape == x.shape
        assert np.abs(back - x).max() <= eb * (1 + 1e-9)

    @pytest.mark.parametrize("shape", [(5, 17, 23), (8, 16, 16),
                                       (3, 33, 9)])
    def test_odd_shapes(self, shape):
        rng = np.random.default_rng(1)
        x = np.cumsum(rng.normal(size=shape), axis=1)
        eb = 0.1
        sz = SZLikeCompressor(max_level=3)
        back = sz.decompress(sz.compress(x, eb))
        assert np.abs(back - x).max() <= eb * (1 + 1e-9)

    def test_tighter_bound_bigger_stream(self):
        x = climate()
        rng_x = x.max() - x.min()
        sz = SZLikeCompressor()
        loose = sz.compress(x, 0.05 * rng_x)
        tight = sz.compress(x, 0.001 * rng_x)
        assert len(tight) > len(loose)

    def test_smooth_data_compresses_well(self):
        x = climate(t=8, h=32, w=32)
        sz = SZLikeCompressor()
        data = sz.compress(x, 0.01 * (x.max() - x.min()))
        assert x.size * 4 / len(data) > 4.0  # >4x at 1% bound

    def test_smooth_beats_noise(self):
        """Prediction-based coding exploits smoothness."""
        smooth = climate(t=4, h=32, w=32)
        rough = np.random.default_rng(0).normal(size=smooth.shape)
        rough *= smooth.std() / rough.std()
        sz = SZLikeCompressor()
        b_smooth = sz.compress(smooth, 0.01 * np.ptp(smooth))
        b_rough = sz.compress(rough, 0.01 * np.ptp(rough))
        assert len(b_smooth) < len(b_rough)

    def test_invalid(self):
        sz = SZLikeCompressor()
        with pytest.raises(ValueError):
            sz.compress(np.zeros((4, 4)), 0.1)
        with pytest.raises(ValueError):
            sz.compress(np.zeros((4, 8, 8)), 0.0)
        with pytest.raises(ValueError):
            SZLikeCompressor(max_level=0)
        with pytest.raises(ValueError):
            sz.decompress(b"nope" + b"\x00" * 30)


class TestZFPLike:
    def test_pointwise_bound(self):
        x = climate()
        eb = 0.05 * (x.max() - x.min())
        zfp = ZFPLikeCompressor()
        back = zfp.decompress(zfp.compress(x, eb))
        assert back.shape == x.shape
        assert np.abs(back - x).max() <= eb * (1 + 1e-9)

    @pytest.mark.parametrize("shape", [(2, 18, 22), (4, 16, 16),
                                       (1, 7, 5)])
    def test_odd_shapes(self, shape):
        rng = np.random.default_rng(2)
        x = np.cumsum(rng.normal(size=shape), axis=2)
        zfp = ZFPLikeCompressor()
        back = zfp.decompress(zfp.compress(x, 0.2))
        assert np.abs(back - x).max() <= 0.2 * (1 + 1e-9)

    def test_tighter_bound_bigger_stream(self):
        x = climate()
        rng_x = x.max() - x.min()
        zfp = ZFPLikeCompressor()
        assert (len(zfp.compress(x, 0.001 * rng_x))
                > len(zfp.compress(x, 0.05 * rng_x)))

    def test_invalid(self):
        zfp = ZFPLikeCompressor()
        with pytest.raises(ValueError):
            zfp.compress(np.zeros((4, 4)), 0.1)
        with pytest.raises(ValueError):
            zfp.compress(np.zeros((4, 8, 8)), -1.0)
        with pytest.raises(ValueError):
            zfp.decompress(b"nope" + b"\x00" * 30)

    def test_transform_is_invertible(self):
        from repro.baselines.zfplike import _ZFP_T, _ZFP_TI
        np.testing.assert_allclose(_ZFP_T @ _ZFP_TI, np.eye(4), atol=1e-12)


class TestOrdering:
    def test_sz_beats_zfp_on_smooth_data(self):
        """The paper reports SZ3 > ZFP on these fields (Sec. 4.7)."""
        x = climate(t=8, h=32, w=32)
        eb = 0.01 * (x.max() - x.min())
        sz_bytes = len(SZLikeCompressor().compress(x, eb))
        zfp_bytes = len(ZFPLikeCompressor().compress(x, eb))
        assert sz_bytes < zfp_bytes


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(1e-3, 0.2))
def test_both_bounds_property(seed, frac):
    rng = np.random.default_rng(seed)
    x = np.cumsum(np.cumsum(rng.normal(size=(3, 12, 14)), axis=1), axis=2)
    eb = frac * max(np.ptp(x), 1e-9)
    for comp in (SZLikeCompressor(max_level=2), ZFPLikeCompressor()):
        back = comp.decompress(comp.compress(x, eb))
        assert np.abs(back - x).max() <= eb * (1 + 1e-9), type(comp)
