"""Learned baseline (CDC / GCD / VAE-SR) tests — tiny training budgets."""

import numpy as np
import pytest

from repro.baselines import (CDCCompressor, GCDCompressor, VAESRCompressor)
from repro.config import DiffusionConfig, VAEConfig
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows

VAE1 = VAEConfig(in_channels=1, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
VAE3 = VAEConfig(in_channels=3, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
DIFF = DiffusionConfig(latent_channels=4, base_channels=8,
                       channel_mults=(1, 2), time_embed_dim=16,
                       num_frames=6, train_steps=8, finetune_steps=2,
                       num_groups=2)


@pytest.fixture(scope="module")
def data():
    ds = E3SMSynthetic(t=24, h=16, w=16, seed=1)
    frames = ds.normalized_frames(0) * 3.0
    train, _ = train_test_windows(frames, window=6, train_fraction=0.5,
                                  stride=3)
    return frames, train


class TestVAESR:
    @pytest.fixture(scope="class")
    def model(self, data):
        _, train = data
        m = VAESRCompressor(VAE1, sr_filters=8, seed=0)
        m.train(train, vae_iters=60, sr_iters=30)
        m.fit_corrector(train, max_windows=2)
        return m

    def test_compress_roundtrip(self, model, data):
        frames, _ = data
        res = model.compress(frames)
        assert res.reconstruction.shape == frames.shape
        assert res.ratio > 1.0
        assert np.isfinite(res.achieved_nrmse)

    def test_error_bound(self, model, data):
        frames, _ = data
        res = model.compress(frames, nrmse_bound=0.05)
        assert res.achieved_nrmse <= 0.05 * (1 + 1e-9)
        assert res.accounting.guarantee_bytes > 0

    def test_bound_without_corrector_raises(self, data):
        frames, _ = data
        m = VAESRCompressor(VAE1, seed=0)
        with pytest.raises(ValueError):
            m.compress(frames, nrmse_bound=0.1)

    def test_bad_input_shape(self, model):
        with pytest.raises(ValueError):
            model.compress(np.zeros((4, 4)))


class TestCDC:
    @pytest.fixture(scope="class")
    def model(self, data):
        _, train = data
        m = CDCCompressor(VAE3, DIFF, parameterization="eps", seed=0)
        m.train(train, vae_iters=40, diffusion_iters=40)
        return m

    def test_compress_roundtrip(self, model, data):
        frames, _ = data
        res = model.compress(frames)
        assert res.reconstruction.shape == frames.shape
        assert res.ratio > 1.0
        assert np.all(np.isfinite(res.reconstruction))

    def test_frame_padding_path(self, model, data):
        frames, _ = data
        res = model.compress(frames[:7])  # 7 % 3 != 0
        assert res.reconstruction.shape == (7, 16, 16)

    def test_x_parameterization(self, data):
        frames, train = data
        m = CDCCompressor(VAE3, DIFF, parameterization="x", seed=0)
        m.train(train, vae_iters=30, diffusion_iters=30)
        res = m.compress(frames)
        assert np.all(np.isfinite(res.reconstruction))
        assert m.name == "CDC-X"

    def test_invalid_parameterization(self):
        with pytest.raises(ValueError):
            CDCCompressor(VAE3, DIFF, parameterization="bogus")

    def test_requires_3channel_vae(self):
        with pytest.raises(ValueError):
            CDCCompressor(VAE1, DIFF)

    def test_name(self, model):
        assert model.name == "CDC-eps"


class TestGCD:
    @pytest.fixture(scope="class")
    def model(self, data):
        _, train = data
        m = GCDCompressor(VAE1, DIFF, seed=0)
        m.train(train, vae_iters=40, diffusion_iters=30)
        return m

    def test_compress_roundtrip(self, model, data):
        frames, _ = data
        res = model.compress(frames)
        assert res.reconstruction.shape == frames.shape
        assert res.ratio > 1.0
        assert np.all(np.isfinite(res.reconstruction))

    def test_requires_1channel_vae(self):
        with pytest.raises(ValueError):
            GCDCompressor(VAE3, DIFF)

    def test_bad_window_training(self, model):
        with pytest.raises(ValueError):
            model.train([np.zeros((4, 16, 16))], vae_iters=1,
                        diffusion_iters=1)


class TestStorageScaling:
    def test_every_frame_storage_grows_with_frames(self, data):
        """The core contrast of the paper: baselines code every frame,
        so latent bytes grow ~linearly in T even for static content."""
        frames, train = data
        m = VAESRCompressor(VAE1, seed=0)
        m.train(train, vae_iters=30, sr_iters=10)
        short = m.compress(frames[:6])
        full = m.compress(frames[:24])
        ratio = (full.accounting.latent_bytes
                 / max(short.accounting.latent_bytes, 1))
        assert ratio > 2.5  # ~4x frames -> much more latent storage
