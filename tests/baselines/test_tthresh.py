"""Tests for the TTHRESH-analogue (HOSVD transform coder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.tthresh import (TTHRESHLikeCompressor, hosvd,
                                     tucker_reconstruct)


def _smooth_stack(t=10, h=16, w=16, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.linspace(0, 1, t)[:, None, None]
    ys = np.linspace(0, 1, h)[None, :, None]
    xs = np.linspace(0, 1, w)[None, None, :]
    base = (np.sin(2 * np.pi * (xs + 0.3 * ts))
            * np.cos(2 * np.pi * (ys - 0.2 * ts)))
    return base + 0.01 * rng.standard_normal((t, h, w))


class TestHOSVD:
    def test_roundtrip_exact(self):
        x = _smooth_stack(6, 8, 8)
        core, factors = hosvd(x)
        rec = tucker_reconstruct(core, factors)
        np.testing.assert_allclose(rec, x, atol=1e-10)

    def test_factors_orthogonal(self):
        x = _smooth_stack(6, 8, 8, seed=1)
        _, factors = hosvd(x)
        for u in factors:
            np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]),
                                       atol=1e-10)

    def test_core_energy_preserved(self):
        x = _smooth_stack(5, 8, 8, seed=2)
        core, _ = hosvd(x)
        assert np.isclose((core ** 2).sum(), (x ** 2).sum())

    def test_core_energy_concentrated(self):
        """Smooth data concentrates energy in the low-index corner."""
        x = _smooth_stack(8, 16, 16, seed=3)
        core, _ = hosvd(x)
        corner = core[:4, :4, :4]
        assert (corner ** 2).sum() > 0.95 * (core ** 2).sum()


class TestTTHRESHLike:
    def test_rmse_bound_honored(self):
        x = _smooth_stack()
        comp = TTHRESHLikeCompressor()
        for bound in (1e-1, 1e-2, 1e-3):
            stream = comp.compress(x, rmse_bound=bound)
            rec = comp.decompress(stream)
            rmse = float(np.sqrt(((x - rec) ** 2).mean()))
            assert rmse <= bound * (1 + 1e-9)

    def test_compresses_smooth_data(self):
        x = _smooth_stack(12, 16, 16)
        stream = TTHRESHLikeCompressor().compress(x, rmse_bound=1e-2)
        assert len(stream) < x.size * 8

    def test_looser_bound_smaller_stream(self):
        x = _smooth_stack(10, 16, 16, seed=4)
        comp = TTHRESHLikeCompressor()
        tight = comp.compress(x, rmse_bound=1e-4)
        loose = comp.compress(x, rmse_bound=1e-1)
        assert len(loose) < len(tight)

    def test_truncation_reduces_factor_storage(self):
        # rank-1 outer product: all but rank-1 slabs should be dropped
        t = np.linspace(1, 2, 8)
        h = np.linspace(1, 2, 16)
        w = np.linspace(1, 2, 16)
        x = t[:, None, None] * h[None, :, None] * w[None, None, :]
        comp = TTHRESHLikeCompressor(truncation_share=0.5)
        stream = comp.compress(x, rmse_bound=1e-3)
        rec = comp.decompress(stream)
        assert np.sqrt(((x - rec) ** 2).mean()) <= 1e-3
        # rank-1 data: stream should be far below even 1 float per value
        assert len(stream) < x.size

    def test_rejects_bad_inputs(self):
        comp = TTHRESHLikeCompressor()
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4)), rmse_bound=0.1)
        with pytest.raises(ValueError):
            comp.compress(np.zeros((4, 4, 4)), rmse_bound=0.0)
        with pytest.raises(ValueError):
            TTHRESHLikeCompressor(truncation_share=1.0)
        with pytest.raises(ValueError):
            comp.decompress(b"XXXX" + b"\x00" * 64)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           bound=st.sampled_from([1e-1, 1e-2, 1e-3]))
    def test_bound_property(self, seed, bound):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((5, 8, 8)).cumsum(axis=0)
        comp = TTHRESHLikeCompressor()
        rec = comp.decompress(comp.compress(x, rmse_bound=bound))
        assert np.sqrt(((x - rec) ** 2).mean()) <= bound * (1 + 1e-9)

    def test_nonuniform_shape(self):
        x = _smooth_stack(7, 12, 20, seed=5)
        comp = TTHRESHLikeCompressor()
        rec = comp.decompress(comp.compress(x, rmse_bound=1e-2))
        assert rec.shape == x.shape
        assert np.sqrt(((x - rec) ** 2).mean()) <= 1e-2 * (1 + 1e-9)
