"""Configuration preset and validation tests."""

import pytest

from repro.config import (DiffusionConfig, PipelineConfig, ReproConfig,
                          VAEConfig, paper, small, tiny)


class TestPresets:
    @pytest.mark.parametrize("factory", [tiny, small, paper])
    def test_presets_are_internally_consistent(self, factory):
        cfg = factory()  # __post_init__ validates cross-links
        assert cfg.vae.latent_channels == cfg.diffusion.latent_channels
        assert cfg.pipeline.window == cfg.diffusion.num_frames

    def test_paper_records_section43(self):
        """The paper() preset matches Sec. 4.3 verbatim."""
        cfg = paper()
        assert cfg.vae.latent_channels == 64
        assert cfg.diffusion.num_frames == 16
        assert cfg.diffusion.train_steps == 1000
        assert cfg.diffusion.finetune_steps == 32
        assert cfg.pipeline.keyframe_interval == 3

    def test_tiny_smaller_than_small(self):
        assert tiny().vae.latent_channels < small().vae.latent_channels
        assert tiny().diffusion.train_steps <= small().diffusion.train_steps


class TestValidation:
    def test_vae_rejects_bad_values(self):
        with pytest.raises(ValueError):
            VAEConfig(num_down=0)
        with pytest.raises(ValueError):
            VAEConfig(kernel_size=4)

    def test_vae_downsample_factor(self):
        assert VAEConfig(num_down=3).downsample_factor == 8

    def test_diffusion_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DiffusionConfig(train_steps=0)
        with pytest.raises(ValueError):
            DiffusionConfig(num_frames=0)

    def test_pipeline_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PipelineConfig(keyframe_strategy="nope")
        with pytest.raises(ValueError):
            PipelineConfig(keyframe_interval=0)
        with pytest.raises(ValueError):
            PipelineConfig(window=1)

    def test_bundle_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            ReproConfig(vae=VAEConfig(latent_channels=8),
                        diffusion=DiffusionConfig(latent_channels=4))

    def test_bundle_rejects_window_mismatch(self):
        with pytest.raises(ValueError):
            ReproConfig(
                vae=VAEConfig(latent_channels=8),
                diffusion=DiffusionConfig(latent_channels=8, num_frames=8),
                pipeline=PipelineConfig(window=6))
