"""SSIM and temporal-correlation metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (decorrelation_time, ssim,
                           temporal_autocorrelation)


def _frames(t=16, h=16, w=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((t, h, w))


class TestSSIM:
    def test_identity_is_one(self):
        x = _frames()
        assert ssim(x, x.copy()) == pytest.approx(1.0)

    def test_bounded_above_by_one(self):
        x = _frames(seed=1)
        y = x + 0.1 * _frames(seed=2)
        assert ssim(x, y) <= 1.0

    def test_noise_monotone(self):
        """More noise, lower SSIM."""
        rng = np.random.default_rng(3)
        x = np.cumsum(rng.standard_normal((8, 32, 32)), axis=1)
        noise = rng.standard_normal(x.shape)
        vals = [ssim(x, x + s * noise) for s in (0.01, 0.1, 0.5, 2.0)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_2d_input_accepted(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((32, 32))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_constant_images(self):
        x = np.full((8, 8), 3.0)
        assert ssim(x, x.copy()) == 1.0
        assert ssim(x, x + 1.0) == 0.0  # zero range, unequal

    def test_mean_shift_hurts_less_than_structure_loss(self):
        """SSIM's point: luminance shifts are mild, shuffles are fatal."""
        rng = np.random.default_rng(5)
        x = np.cumsum(rng.standard_normal((4, 32, 32)), axis=2)
        shift = x + 0.05 * (x.max() - x.min())
        shuffled = rng.permutation(x.ravel()).reshape(x.shape)
        assert ssim(x, shift) > ssim(x, shuffled)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            ssim(np.zeros(4), np.zeros(4))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), scale=st.floats(0.01, 10.0))
    def test_scale_invariance_with_explicit_range(self, seed, scale):
        """SSIM(ax, ay) with data_range a*r equals SSIM(x, y) with r."""
        rng = np.random.default_rng(seed)
        x = np.cumsum(rng.standard_normal((2, 16, 16)), axis=1)
        y = x + 0.1 * rng.standard_normal(x.shape)
        r = float(x.max() - x.min())
        a = ssim(x, y, data_range=r)
        b = ssim(scale * x, scale * y, data_range=scale * r)
        assert a == pytest.approx(b, rel=1e-9)


class TestTemporalAutocorrelation:
    def test_lag_zero_is_one(self):
        rho = temporal_autocorrelation(_frames())
        assert rho[0] == 1.0

    def test_white_noise_decorrelates_immediately(self):
        rho = temporal_autocorrelation(_frames(t=64, seed=6))
        assert abs(rho[1]) < 0.2

    def test_static_structure_plus_noise(self):
        """A frozen pattern with tiny noise stays correlated."""
        rng = np.random.default_rng(7)
        pattern = rng.standard_normal((1, 16, 16))
        x = np.tile(pattern, (32, 1, 1))
        # per-pixel centring kills a constant sequence; add slow drift
        drift = np.linspace(0, 1, 32)[:, None, None] * pattern
        rho = temporal_autocorrelation(x + drift
                                       + 0.01 * rng.standard_normal(x.shape))
        assert rho[1] > 0.8

    def test_max_lag_truncates(self):
        rho = temporal_autocorrelation(_frames(t=10), max_lag=3)
        assert rho.shape == (4,)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            temporal_autocorrelation(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            temporal_autocorrelation(np.zeros((1, 4, 4)))

    def test_decorrelation_time_orderings(self):
        """Climate-like drift outlives turbulence-like churn."""
        from repro.data import E3SMSynthetic, JHTDBSynthetic
        smooth = E3SMSynthetic(t=32, h=16, w=16, seed=0).frames(0)
        churn = JHTDBSynthetic(t=32, h=16, w=16, seed=0).frames(0)
        assert (decorrelation_time(smooth)
                >= decorrelation_time(churn))

    def test_decorrelation_time_white_noise_is_short(self):
        assert decorrelation_time(_frames(t=64, seed=8)) <= 2

    def test_never_decorrelates_returns_max_lag(self):
        """Unreachable threshold exercises the no-crossing fallback."""
        x = _frames(t=16, seed=9)
        assert decorrelation_time(x, threshold=-2.0) == 15
