"""Cube-sphere projection tests (E3SM preprocessing substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.projection import (CUBE_FACES, cube_to_latlon,
                                   face_directions, latlon_to_cube)


def _smooth_sphere_field(n_lat=48, n_lon=96, seed=0):
    """Low-order spherical harmonic mix — exactly representable at any
    reasonable resolution, so resampling errors are pure method error."""
    lat = -np.pi / 2 + (np.arange(n_lat) + 0.5) * np.pi / n_lat
    lon = -np.pi + (np.arange(n_lon) + 0.5) * 2 * np.pi / n_lon
    la, lo = np.meshgrid(lat, lon, indexing="ij")
    return (np.sin(la) + 0.5 * np.cos(la) * np.cos(lo)
            + 0.3 * np.cos(la) ** 2 * np.sin(2 * lo))


class TestFaceDirections:
    def test_unit_vectors(self):
        a = np.linspace(-np.pi / 4, np.pi / 4, 7)
        aa, bb = np.meshgrid(a, a)
        for face in range(CUBE_FACES):
            x, y, z = face_directions(face, aa, bb)
            np.testing.assert_allclose(x * x + y * y + z * z, 1.0,
                                       atol=1e-12)

    def test_face_centers_hit_axes(self):
        zero = np.zeros(1)
        expected = [(1, 0, 0), (0, 1, 0), (-1, 0, 0), (0, -1, 0),
                    (0, 0, 1), (0, 0, -1)]
        for face, (ex, ey, ez) in enumerate(expected):
            x, y, z = face_directions(face, zero, zero)
            np.testing.assert_allclose([x[0], y[0], z[0]], [ex, ey, ez],
                                       atol=1e-12)

    def test_faces_cover_sphere(self):
        """Random directions always have exactly one dominant face."""
        rng = np.random.default_rng(0)
        v = rng.standard_normal((1000, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        ax = np.abs(v)
        assert (ax.max(axis=1) > 0).all()

    def test_invalid_face_raises(self):
        with pytest.raises(ValueError):
            face_directions(6, np.zeros(1), np.zeros(1))


class TestLatlonToCube:
    def test_output_shape_is_paper_layout(self):
        field = _smooth_sphere_field()
        strip = latlon_to_cube(field, face_n=24)
        assert strip.shape == (24, 6 * 24)  # the 240 x 1440 layout, scaled

    def test_stack_input(self):
        field = np.stack([_smooth_sphere_field(seed=i) for i in range(3)])
        strip = latlon_to_cube(field, face_n=16)
        assert strip.shape == (3, 16, 96)

    def test_constant_field_projects_constant(self):
        field = np.full((24, 48), 7.5)
        strip = latlon_to_cube(field, face_n=12)
        np.testing.assert_allclose(strip, 7.5, atol=1e-12)

    def test_value_range_preserved(self):
        """Bilinear sampling cannot overshoot the input range."""
        field = _smooth_sphere_field(seed=1)
        strip = latlon_to_cube(field, face_n=32)
        assert strip.max() <= field.max() + 1e-12
        assert strip.min() >= field.min() - 1e-12

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            latlon_to_cube(np.zeros(8), face_n=8)
        with pytest.raises(ValueError):
            latlon_to_cube(np.zeros((8, 16)), face_n=1)


class TestRoundTrip:
    def test_roundtrip_accuracy(self):
        field = _smooth_sphere_field(48, 96)
        strip = latlon_to_cube(field, face_n=48)
        back = cube_to_latlon(strip, 48, 96)
        rng = field.max() - field.min()
        err = np.abs(back - field).max() / rng
        assert err < 0.02  # two bilinear resamplings on a smooth field

    def test_roundtrip_error_shrinks_with_resolution(self):
        field_lo = _smooth_sphere_field(24, 48)
        field_hi = _smooth_sphere_field(96, 192)

        def rt_err(field, face_n):
            n_lat, n_lon = field.shape
            back = cube_to_latlon(latlon_to_cube(field, face_n),
                                  n_lat, n_lon)
            return np.abs(back - field).max() / (field.max() - field.min())

        assert rt_err(field_hi, 96) < rt_err(field_lo, 24)

    def test_cube_to_latlon_shapes(self):
        strip = np.zeros((16, 96))
        out = cube_to_latlon(strip, 24, 48)
        assert out.shape == (24, 48)
        stack = np.zeros((2, 16, 96))
        assert cube_to_latlon(stack, 24, 48).shape == (2, 24, 48)

    def test_cube_to_latlon_rejects_non_strip(self):
        with pytest.raises(ValueError):
            cube_to_latlon(np.zeros((16, 64)), 24, 48)  # 64 != 6*16

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_roundtrip_property_smooth_fields(self, seed):
        rng = np.random.default_rng(seed)
        n_lat, n_lon = 36, 72
        lat = -np.pi / 2 + (np.arange(n_lat) + 0.5) * np.pi / n_lat
        lon = -np.pi + (np.arange(n_lon) + 0.5) * 2 * np.pi / n_lon
        la, lo = np.meshgrid(lat, lon, indexing="ij")
        c = rng.standard_normal(4)
        field = (c[0] + c[1] * np.sin(la) + c[2] * np.cos(la) * np.cos(lo)
                 + c[3] * np.cos(la) * np.sin(lo))
        strip = latlon_to_cube(field, face_n=36)
        back = cube_to_latlon(strip, n_lat, n_lon)
        rng_ = field.max() - field.min()
        if rng_ > 1e-6:
            assert np.abs(back - field).max() / rng_ < 0.05
