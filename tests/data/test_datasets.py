"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.data import (DATASETS, DatasetInfo, E3SMSynthetic, JHTDBSynthetic,
                        S3DSynthetic, train_test_windows)


@pytest.fixture(params=list(DATASETS))
def dataset(request):
    cls = DATASETS[request.param]
    return cls(t=16, h=16, w=16, seed=3)


class TestCommonProperties:
    def test_shape(self, dataset):
        x = dataset.frames(0)
        assert x.shape == (16, 16, 16)
        assert np.all(np.isfinite(x))

    def test_deterministic_in_seed(self, dataset):
        cls = type(dataset)
        a = cls(t=8, h=16, w=16, seed=5).frames(0)
        b = cls(t=8, h=16, w=16, seed=5).frames(0)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, dataset):
        cls = type(dataset)
        a = cls(t=8, h=16, w=16, seed=1).frames(0)
        b = cls(t=8, h=16, w=16, seed=2).frames(0)
        assert not np.allclose(a, b)

    def test_variables_differ(self, dataset):
        if dataset.num_vars < 2:
            pytest.skip("single-variable config")
        a = dataset.frames(0)
        b = dataset.frames(1)
        assert not np.allclose(a, b)

    def test_variable_out_of_range(self, dataset):
        with pytest.raises(ValueError):
            dataset.frames(dataset.num_vars)

    def test_temporal_coherence(self, dataset):
        """Adjacent frames correlate far better than distant ones."""
        x = dataset.frames(0)
        flat = x.reshape(x.shape[0], -1)
        flat = flat - flat.mean(axis=1, keepdims=True)
        norm = np.linalg.norm(flat, axis=1)
        corr_adj = np.mean([
            flat[i] @ flat[i + 1] / (norm[i] * norm[i + 1])
            for i in range(x.shape[0] - 1)])
        corr_far = flat[0] @ flat[-1] / (norm[0] * norm[-1])
        assert corr_adj > 0.5
        assert corr_adj > corr_far - 1e-9

    def test_normalized_frames_statistics(self, dataset):
        xn = dataset.normalized_frames(0)
        np.testing.assert_allclose(xn.mean(axis=(1, 2)), 0.0, atol=1e-9)
        ranges = xn.max(axis=(1, 2)) - xn.min(axis=(1, 2))
        assert np.all(ranges <= 1.0 + 1e-9)

    def test_degenerate_shape_rejected(self, dataset):
        cls = type(dataset)
        with pytest.raises(ValueError):
            cls(t=0, h=16, w=16)
        with pytest.raises(ValueError):
            cls(t=4, h=2, w=16)


class TestTable1Metadata:
    def test_paper_shapes(self):
        assert E3SMSynthetic.info.paper_shape == (5, 8640, 240, 1440)
        assert S3DSynthetic.info.paper_shape == (58, 200, 512, 512)
        assert JHTDBSynthetic.info.paper_shape == (64, 256, 512, 512)

    def test_paper_sizes_match_shapes(self):
        """Published GB figures agree with float32 x published shape."""
        for cls in (E3SMSynthetic, S3DSynthetic, JHTDBSynthetic):
            info: DatasetInfo = cls.info
            assert info.computed_size_gb() == pytest.approx(
                info.paper_size_gb, rel=0.02), info.name


class TestDomainCharacter:
    def test_e3sm_is_smooth(self):
        x = E3SMSynthetic(t=4, h=32, w=32, seed=0).frames(0)
        gx = np.abs(np.diff(x, axis=2)).mean()
        spread = x.std()
        assert gx < spread  # gradients small relative to variability

    def test_e3sm_plausible_temperature_range(self):
        x = E3SMSynthetic(t=4, h=16, w=16, seed=0).frames(0)
        assert 180 < x.mean() < 360

    def test_s3d_fronts_grow_monotonically(self):
        ds = S3DSynthetic(t=24, h=32, w=32, seed=1)
        x = ds.frames(1)  # product-like species
        burned = (x > 0.5 * x.max()).mean(axis=(1, 2))
        assert burned[-1] > burned[0]
        # mostly monotone growth
        assert np.mean(np.diff(burned) >= -1e-6) > 0.8

    def test_s3d_has_sharp_fronts(self):
        x = S3DSynthetic(t=8, h=32, w=32, seed=1).frames(1)
        last = x[-1] / max(x[-1].max(), 1e-12)
        gx = np.abs(np.diff(last, axis=1)).max()
        assert gx > 0.2  # a near-discontinuity exists

    def test_jhtdb_spectrum_slope(self):
        """Radial power spectrum follows ~k^-5/3 in the inertial range."""
        ds = JHTDBSynthetic(t=2, h=64, w=64, seed=0, decorrelation=0.0)
        x = ds.frames(0)[0]
        f = np.abs(np.fft.fft2(x)) ** 2
        ky = np.fft.fftfreq(64)[:, None] * 64
        kx = np.fft.fftfreq(64)[None, :] * 64
        k = np.sqrt(kx ** 2 + ky ** 2).ravel()
        p = f.ravel()
        bins = np.arange(2, 20)
        which = np.digitize(k, bins)
        spectrum = np.array([p[which == i].mean()
                             for i in range(1, len(bins))])
        ks = 0.5 * (bins[:-1] + bins[1:])
        slope = np.polyfit(np.log(ks), np.log(spectrum), 1)[0]
        # E(k) ~ k^-5/3 => P_2d(k) ~ k^(-5/3 - 1); tolerance is loose
        assert -3.5 < slope < -1.5

    def test_jhtdb_decorrelates_faster_at_small_scales(self):
        ds = JHTDBSynthetic(t=24, h=32, w=32, seed=0, advection=0.0,
                            decorrelation=0.15)
        x = ds.frames(0)
        spec = np.fft.fft2(x)
        ky = np.fft.fftfreq(32)[:, None] * 32
        kx = np.fft.fftfreq(32)[None, :] * 32
        k = np.sqrt(kx ** 2 + ky ** 2)
        lo = (k > 1) & (k <= 4)
        hi = (k > 8) & (k <= 14)

        def coherence(mask):
            a, b = spec[0][mask], spec[-1][mask]
            num = np.abs(np.vdot(a, b))
            den = np.linalg.norm(a) * np.linalg.norm(b)
            return num / den

        assert coherence(lo) > coherence(hi)


class TestWindowing:
    def test_split_is_chronological(self):
        frames = np.arange(40)[:, None, None] * np.ones((1, 4, 4))
        train, test = train_test_windows(frames, window=8,
                                         train_fraction=0.5)
        max_train_t = max(w.max() for w in train)
        min_test_t = min(w.min() for w in test)
        assert max_train_t < min_test_t + 8  # train strictly earlier start

    def test_window_shapes(self):
        frames = np.zeros((32, 6, 6))
        train, test = train_test_windows(frames, window=8)
        for wdw in train + test:
            assert wdw.shape == (8, 6, 6)

    def test_too_few_frames_raises(self):
        with pytest.raises(ValueError):
            train_test_windows(np.zeros((10, 4, 4)), window=8)

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_windows(np.zeros((32, 4, 4)), window=8,
                               train_fraction=1.5)

    def test_custom_stride(self):
        frames = np.zeros((32, 4, 4))
        dense, _ = train_test_windows(frames, window=8, stride=2)
        sparse, _ = train_test_windows(frames, window=8, stride=8)
        assert len(dense) > len(sparse)
