"""Dataset registry and DatasetSpec round-trip tests."""

import pickle

import numpy as np
import pytest

from repro.data import (DATASETS, DatasetSpec, E3SMSynthetic,
                        dataset_entries, dataset_from_spec, get_dataset,
                        get_dataset_spec, list_datasets, spec_of)
from repro.data.base import SpatiotemporalDataset
from repro.data.registry import register_dataset


class TestRegistry:
    def test_all_three_registered(self):
        assert list_datasets() == ["e3sm", "jhtdb", "s3d"]

    def test_legacy_datasets_dict_matches_registry(self):
        assert set(DATASETS) == set(list_datasets())
        for name, cls in DATASETS.items():
            assert dataset_entries()[name].cls is cls

    def test_get_dataset_applies_overrides(self):
        ds = get_dataset("e3sm", t=10, h=16, w=16, seed=9)
        assert isinstance(ds, E3SMSynthetic)
        assert (ds.t, ds.h, ds.w, ds.seed) == (10, 16, 16, 9)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="e3sm, jhtdb, s3d"):
            get_dataset("nope")

    def test_name_canonicalization(self):
        assert type(get_dataset("E3SM")) is type(get_dataset("e3sm"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_dataset("s3d")
            class Dup(SpatiotemporalDataset):  # pragma: no cover
                pass

    def test_non_dataset_registration_rejected(self):
        with pytest.raises(TypeError):
            register_dataset("bogus")(object)


class TestDatasetSpec:
    @pytest.mark.parametrize("name", ["e3sm", "jhtdb", "s3d"])
    def test_spec_roundtrip_bit_identical(self, name):
        ds = get_dataset(name, t=6, h=12, w=12, seed=5)
        spec = ds.to_spec()
        rebuilt = dataset_from_spec(spec)
        np.testing.assert_array_equal(ds.frames(0), rebuilt.frames(0))

    def test_spec_survives_pickling(self):
        spec = get_dataset_spec("s3d", t=6, h=12, w=12, seed=2)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        np.testing.assert_array_equal(spec.build().frames(1),
                                      clone.build().frames(1))

    def test_spec_captures_generator_params(self):
        ds = get_dataset("s3d", t=6, h=12, w=12, num_kernels=3)
        spec = spec_of(ds)
        assert dict(spec.params)["num_kernels"] == 3
        assert dataset_from_spec(spec).num_kernels == 3

    def test_spec_shape_and_kwargs(self):
        spec = get_dataset_spec("jhtdb", t=6, h=12, w=12)
        assert spec.shape == (spec.num_vars, 6, 12, 12)
        assert spec.kwargs()["t"] == 6

    def test_override_common_and_params(self):
        spec = get_dataset_spec("e3sm", t=6, h=12, w=12)
        new = spec.override(seed=7, num_blobs=2)
        assert new.seed == 7
        assert dict(new.params)["num_blobs"] == 2
        assert spec.seed == 0  # original untouched

    def test_spec_of_unregistered_rejected(self):
        class Loose(SpatiotemporalDataset):
            def _generate(self, rng, variable):  # pragma: no cover
                return np.zeros((self.t, self.h, self.w))

        with pytest.raises(TypeError, match="not a registered"):
            spec_of(Loose(t=4, h=8, w=8))

    def test_spec_is_cheap_to_ship(self):
        spec = get_dataset_spec("e3sm")  # full default extent
        assert len(pickle.dumps(spec)) < 1024
