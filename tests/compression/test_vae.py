"""VAE + hyperprior transform-coding tests."""

import numpy as np
import pytest

from repro.compression import (Decoder, Encoder, RDLoss, VAEHyperprior,
                               dequantize_minmax, minmax_normalize,
                               quantize_noise, quantize_round, quantize_ste)
from repro.compression.rd_loss import LambdaSchedule
from repro.config import VAEConfig, tiny
from repro.nn import Tensor, no_grad
from repro.nn.optim import Adam

CFG = tiny().vae
RNG = np.random.default_rng(0)


def frames(b=2, h=16, w=16, seed=0):
    rng = np.random.default_rng(seed)
    # smooth field: random low-frequency Fourier sum
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w),
                         indexing="ij")
    out = np.zeros((b, 1, h, w))
    for i in range(b):
        for _ in range(4):
            fx, fy = rng.integers(1, 4, size=2)
            ph = rng.uniform(0, 2 * np.pi)
            out[i, 0] += rng.normal() * np.sin(
                2 * np.pi * (fx * xx + fy * yy) + ph)
    return out


class TestShapes:
    def test_encoder_downsamples(self):
        enc = Encoder(CFG, rng=np.random.default_rng(1))
        y = enc(Tensor(frames()))
        f = CFG.downsample_factor
        assert y.shape == (2, CFG.latent_channels, 16 // f, 16 // f)

    def test_decoder_inverts_shape(self):
        enc = Encoder(CFG, rng=np.random.default_rng(1))
        dec = Decoder(CFG, rng=np.random.default_rng(2))
        x = Tensor(frames())
        assert dec(enc(x)).shape == x.shape

    def test_hyperprior_shapes(self):
        model = VAEHyperprior(CFG, rng=np.random.default_rng(1))
        out = model(Tensor(frames()), rng=np.random.default_rng(9))
        assert out.mu.shape == out.y.shape
        assert out.sigma.shape == out.y.shape
        assert np.all(out.sigma.numpy() >= 0)
        assert out.x_hat.shape == (2, 1, 16, 16)
        assert out.bits_y.size == 1 and out.bits_z.size == 1

    def test_eval_mode_uses_rounding(self):
        model = VAEHyperprior(CFG, rng=np.random.default_rng(1))
        model.eval()
        out = model(Tensor(frames()))
        y_tilde = out.y_tilde.numpy()
        np.testing.assert_array_equal(y_tilde, np.rint(y_tilde))


class TestQuantization:
    def test_noise_bounded(self):
        y = Tensor(np.zeros((4, 4)))
        q = quantize_noise(y, np.random.default_rng(0)).numpy()
        assert np.all(np.abs(q) <= 0.5)

    def test_round(self):
        q = quantize_round(Tensor(np.array([0.4, 0.6, -1.2]))).numpy()
        np.testing.assert_array_equal(q, [0.0, 1.0, -1.0])

    def test_ste_forward_rounds_backward_passes(self):
        y = Tensor(np.array([0.4, 1.6]), requires_grad=True)
        q = quantize_ste(y)
        np.testing.assert_array_equal(q.numpy(), [0.0, 2.0])
        q.sum().backward()
        np.testing.assert_array_equal(y.grad, [1.0, 1.0])

    def test_minmax_roundtrip(self):
        y = RNG.normal(size=(3, 5)) * 7 + 2
        norm, lo, hi = minmax_normalize(y)
        assert norm.min() == pytest.approx(-1.0)
        assert norm.max() == pytest.approx(1.0)
        np.testing.assert_allclose(dequantize_minmax(norm, lo, hi), y,
                                   atol=1e-12)

    def test_minmax_degenerate(self):
        y = np.full((2, 2), 3.0)
        norm, lo, hi = minmax_normalize(y)
        np.testing.assert_array_equal(norm, 0.0)
        np.testing.assert_array_equal(dequantize_minmax(norm, lo, hi), y)


class TestRDLoss:
    def test_loss_combines_terms(self):
        model = VAEHyperprior(CFG, rng=np.random.default_rng(1))
        x = Tensor(frames())
        out = model(x, rng=np.random.default_rng(5))
        res = RDLoss(lam=1e-3)(x, out)
        assert res.loss.size == 1
        assert res.distortion >= 0
        assert res.bits_per_element > 0

    def test_lambda_schedule_doubles(self):
        sched = LambdaSchedule(lam0=1e-5, total_steps=100)
        assert sched.at(0) == pytest.approx(1e-5)
        assert sched.at(49) == pytest.approx(1e-5)
        assert sched.at(50) == pytest.approx(2e-5)

    def test_lambda_schedule_invalid(self):
        with pytest.raises(ValueError):
            LambdaSchedule(total_steps=0)


class TestTraining:
    def test_short_training_improves_reconstruction(self):
        model = VAEHyperprior(CFG, rng=np.random.default_rng(1))
        data = frames(b=4, seed=3)
        x = Tensor(data)
        loss_fn = RDLoss(lam=1e-4)
        opt = Adam(model.parameters(), lr=3e-3)
        rng = np.random.default_rng(0)

        def eval_mse():
            model.eval()
            with no_grad():
                out = model(x)
            model.train()
            return float(np.mean((out.x_hat.numpy() - data) ** 2))

        before = eval_mse()
        for _ in range(30):
            opt.zero_grad()
            res = loss_fn(x, model(x, rng=rng))
            res.loss.backward()
            opt.step()
        after = eval_mse()
        assert after < before


class TestCodecPath:
    def make_trained(self):
        model = VAEHyperprior(CFG, rng=np.random.default_rng(1))
        return model

    def test_compress_decompress_latents_lossless(self):
        """Entropy coding of latents is bit-exact."""
        model = self.make_trained()
        model.eval()
        x = frames(b=2, seed=7)
        streams, y_int = model.compress(x)
        back = model.decompress_latents(streams)
        np.testing.assert_array_equal(back, y_int)

    def test_decompress_matches_direct_decode(self):
        model = self.make_trained()
        model.eval()
        x = frames(b=1, seed=8)
        streams, y_int = model.compress(x)
        x_hat_stream = model.decompress(streams)
        x_hat_direct = model.decode_latents(y_int)
        np.testing.assert_allclose(x_hat_stream, x_hat_direct, atol=1e-12)

    def test_stream_sizes_positive(self):
        model = self.make_trained()
        x = frames(b=1, seed=9)
        streams, _ = model.compress(x)
        assert len(streams["y_stream"]) > 0
        assert len(streams["z_stream"]) > 0
