"""CLI coverage for the generalized train command and artifact-backed
compression (`train --codec`, `--codec-artifact`, `info` provenance)."""

import numpy as np
import pytest

from repro.cli import main
from repro.metrics import nrmse


@pytest.fixture(scope="module")
def vae_sr_artifact(tmp_path_factory):
    """Train vae-sr on a tiny registered dataset through the CLI."""
    root = tmp_path_factory.mktemp("cli-artifacts")
    model = root / "vae-sr.npz"
    rc = main(["train", "--codec", "vae-sr", "--dataset", "e3sm",
               "--shape", "12x16x16", "--save", str(model),
               "--vae-iters", "3", "--sr-iters", "2", "--seed", "1"])
    assert rc == 0
    return root, model


class TestGeneralizedTrain:
    def test_artifact_written_with_provenance(self, vae_sr_artifact,
                                              capsys):
        _, model = vae_sr_artifact
        assert model.exists()
        rc = main(["info", str(model)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "model artifact   : vae-sr" in out
        assert "state hash" in out
        assert "name=e3sm" in out          # training dataset spec
        assert "vae_iters=3" in out        # training config

    def test_model_free_codec_rejected(self, tmp_path, capsys):
        rc = main(["train", "--codec", "szlike", "--dataset", "e3sm",
                   "--shape", "12x16x16",
                   "--save", str(tmp_path / "x.npz")])
        assert rc == 2
        assert "model-free" in capsys.readouterr().err

    def test_missing_save_path_rejected(self, capsys):
        rc = main(["train", "--codec", "vae-sr", "--dataset", "e3sm"])
        assert rc == 2
        assert "output model path" in capsys.readouterr().err

    def test_missing_data_rejected(self, tmp_path, capsys):
        rc = main(["train", "--codec", "vae-sr",
                   "--save", str(tmp_path / "x.npz")])
        assert rc == 2
        assert "--dataset" in capsys.readouterr().err


class TestCompressWithArtifact:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_sharded_roundtrip(self, vae_sr_artifact, executor,
                               tmp_path, capsys):
        _, model = vae_sr_artifact
        stream = tmp_path / f"sweep-{executor}.cdx"
        rc = main(["compress", "--dataset", "e3sm", "--shape",
                   "12x16x16", "--codec", "vae-sr",
                   "--codec-artifact", str(model),
                   "--executor", executor, "--shards", "4",
                   "--nrmse-bound", "0.5",
                   "--", "-", "-", str(stream)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "shards=4" in printed and f"executor={executor}" in printed
        out = tmp_path / f"back-{executor}.npy"
        rc = main(["decompress", "-", str(stream), str(out),
                   "--codec-artifact", str(model)])
        assert rc == 0
        restored = np.load(out)
        from repro.data import get_dataset
        original = get_dataset("e3sm", t=12, h=16, w=16).frames(0)
        assert restored.shape == original.shape
        assert nrmse(original, restored) <= 0.5 * (1 + 1e-9)

    def test_backends_identical_archives(self, vae_sr_artifact,
                                         tmp_path):
        _, model = vae_sr_artifact
        blobs = {}
        for executor in ("serial", "thread", "process"):
            stream = tmp_path / f"eq-{executor}.cdx"
            rc = main(["compress", "--dataset", "e3sm", "--shape",
                       "12x16x16", "--codec", "vae-sr",
                       "--codec-artifact", str(model),
                       "--executor", executor, "--shards", "4",
                       "--", "-", "-", str(stream)])
            assert rc == 0
            blobs[executor] = stream.read_bytes()
        assert blobs["thread"] == blobs["serial"]
        assert blobs["process"] == blobs["serial"]

    def test_mismatched_codec_name_rejected(self, vae_sr_artifact,
                                            tmp_path, capsys):
        _, model = vae_sr_artifact
        rc = main(["compress", "--dataset", "e3sm", "--codec", "gcd",
                   "--codec-artifact", str(model),
                   "--", "-", "-", str(tmp_path / "x.cdx")])
        assert rc == 2
        assert "holds codec 'vae-sr'" in capsys.readouterr().err

    def test_untrained_learned_codec_hints_at_artifact(self, tmp_path,
                                                       capsys):
        rc = main(["compress", "--dataset", "e3sm", "--codec", "vae-sr",
                   "--", "-", "-", str(tmp_path / "x.cdx")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--codec-artifact" in err and "repro train" in err

    def test_single_file_compression_with_artifact(self, vae_sr_artifact,
                                                   tmp_path, capsys):
        _, model = vae_sr_artifact
        frames = np.random.default_rng(4).normal(
            size=(4, 16, 16)).cumsum(axis=0)
        data = tmp_path / "frames.npy"
        np.save(data, frames)
        stream = tmp_path / "frames.lcx"
        rc = main(["compress", "-", str(data), str(stream),
                   "--codec", "vae-sr", "--codec-artifact", str(model)])
        assert rc == 0
        out = tmp_path / "back.npy"
        rc = main(["decompress", "-", str(stream), str(out),
                   "--codec-artifact", str(model)])
        assert rc == 0
        assert np.load(out).shape == frames.shape
