"""Codec-registry contract tests.

One parametrized round-trip test covers **every** registered codec —
the nine baselines and the latent-diffusion pipeline — under the shared
contract: the declared bound kind holds, ``decompress(payload)`` is
deterministic, and it reproduces the reconstruction reported at
compression time.  A second parametrized test pins the acceptance
criterion of the execution engine: parallel execution is bit-identical
to serial for every codec.
"""

import numpy as np
import pytest

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.codecs import (Codec, LatentDiffusionCodec, as_codec,
                          codec_specs, get_codec, list_codecs,
                          register_codec)
from repro.config import DiffusionConfig, VAEConfig
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.metrics import nrmse
from repro.pipeline.engine import CodecEngine

#: loose relative target every codec must honour through the
#: normalized compress_bounded() path
NRMSE_TARGET = 0.08

VAE1 = VAEConfig(in_channels=1, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
VAE3 = VAEConfig(in_channels=3, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
DIFF = DiffusionConfig(latent_channels=4, base_channels=8,
                       channel_mults=(1, 2), time_embed_dim=16,
                       num_frames=6, train_steps=4, finetune_steps=2,
                       num_groups=2)

#: minimal training budgets per learned family (contract, not quality)
_TRAIN_KW = {
    "cdc-eps": dict(vae_iters=6, diffusion_iters=4),
    "cdc-x": dict(vae_iters=6, diffusion_iters=4),
    "gcd": dict(vae_iters=6, diffusion_iters=4),
    "vae-sr": dict(vae_iters=6, sr_iters=4),
}
_CTOR_KW = {
    "cdc-eps": dict(vae_cfg=VAE3, diff_cfg=DIFF),
    "cdc-x": dict(vae_cfg=VAE3, diff_cfg=DIFF),
    "gcd": dict(vae_cfg=VAE1, diff_cfg=DIFF),
    "vae-sr": dict(vae_cfg=VAE1),
}


@pytest.fixture(scope="module")
def frames():
    ds = E3SMSynthetic(t=12, h=16, w=16, seed=7)
    return ds.normalized_frames(0) * 3.0 + 1.0


@pytest.fixture(scope="module")
def train_windows(frames):
    train, _ = train_test_windows(frames, window=6, train_fraction=0.5,
                                  stride=3)
    return train


@pytest.fixture(scope="module")
def codecs_by_name(frames, train_windows):
    """Every registered codec, trained just enough to honour bounds."""
    out = {}
    for name in list_codecs():
        if name == "ours":
            trainer = TwoStageTrainer(
                tiny(), TrainingConfig(vae_iters=20, diffusion_iters=30,
                                       finetune_iters=0), seed=0)
            trainer.train_vae(train_windows)
            trainer.train_diffusion(train_windows)
            codec = LatentDiffusionCodec(
                compressor=trainer.build_compressor(train_windows))
        else:
            codec = get_codec(name, **_CTOR_KW.get(name, {}))
            if codec.capabilities.needs_training:
                codec.train(train_windows, **_TRAIN_KW[name])
                codec.fit_corrector(train_windows, max_windows=1)
        out[name] = codec
    return out


@pytest.mark.parametrize("name", sorted(codec_specs()))
def test_roundtrip_contract(name, codecs_by_name, frames):
    """Bound holds, payload decodes deterministically and exactly."""
    codec = codecs_by_name[name]
    res = codec.compress_bounded(frames, nrmse_bound=NRMSE_TARGET,
                                 seed=3)
    assert res.codec == name
    assert len(res.payload) > 0
    assert res.accounting.latent_bytes > 0
    assert res.accounting.original_bytes == frames.size * 4

    # the normalized NRMSE target holds for every bound kind
    assert res.achieved_nrmse <= NRMSE_TARGET * (1 + 1e-9)
    assert nrmse(frames, res.reconstruction) <= NRMSE_TARGET * (1 + 1e-9)

    # the native bound kind holds against the *decoded* stream
    rec1 = codec.decompress(res.payload)
    kind = codec.capabilities.bound_kind
    native = codec.native_bound(frames, nrmse_bound=NRMSE_TARGET)
    if kind == "pointwise":
        assert np.abs(frames - rec1).max() <= native * (1 + 1e-9)
    elif kind == "rmse":
        assert np.sqrt(((frames - rec1) ** 2).mean()) <= \
            native * (1 + 1e-9)
    else:  # l2
        assert np.linalg.norm(frames - rec1) <= native * (1 + 1e-9)

    # deterministic decode that reproduces the compression-time output
    rec2 = codec.decompress(res.payload)
    np.testing.assert_array_equal(rec1, rec2)
    np.testing.assert_allclose(rec1, res.reconstruction, atol=1e-9)


@pytest.mark.parametrize("name", sorted(codec_specs()))
def test_parallel_engine_bit_identical(name, codecs_by_name, frames):
    """Acceptance: engine output is bit-identical to serial, per codec."""
    codec = codecs_by_name[name]
    stacks = [frames, frames * 0.5 + 2.0]
    serial = CodecEngine(codec, max_workers=1, base_seed=11).compress(
        stacks, nrmse_bound=0.1)
    parallel = CodecEngine(codec, max_workers=3, base_seed=11).compress(
        stacks, nrmse_bound=0.1)
    assert len(serial.results) == len(parallel.results) == 2
    for a, b in zip(serial.results, parallel.results):
        assert a.payload == b.payload
        np.testing.assert_array_equal(a.reconstruction, b.reconstruction)
        assert a.seed == b.seed
    # aggregation is order-independent too
    assert serial.accounting().compressed_bytes == \
        parallel.accounting().compressed_bytes
    assert serial.reports[0].seed == 11
    assert serial.reports[1].seed == 11 + 7919


class TestRegistry:
    def test_all_families_registered(self):
        names = set(list_codecs())
        assert {"szlike", "zfplike", "tthresh", "mgard", "dpcm",
                "fazlike", "cdc-eps", "cdc-x", "gcd", "vae-sr",
                "ours"} <= names

    def test_unknown_codec_raises_with_known_names(self):
        with pytest.raises(KeyError, match="szlike"):
            get_codec("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_codec("szlike")
            class Dup(Codec):  # pragma: no cover - never constructed
                def compress(self, frames, bound=None, *, seed=0):
                    raise NotImplementedError

                def decompress(self, payload):
                    raise NotImplementedError

    def test_name_normalization(self):
        assert get_codec("  SZLike ").name == "szlike"
        assert get_codec("CDC_EPS").name == "cdc-eps"

    def test_as_codec_wraps_native_objects(self):
        from repro.baselines import SZLikeCompressor, TTHRESHLikeCompressor
        c = as_codec(SZLikeCompressor(max_level=3))
        assert c.name == "szlike" and c.impl.max_level == 3
        assert as_codec(TTHRESHLikeCompressor()).name == "tthresh"
        assert as_codec("mgard").name == "mgard"
        assert as_codec(c) is c
        with pytest.raises(TypeError):
            as_codec(object())

    def test_as_codec_distinguishes_cdc_parameterizations(self):
        from repro.baselines import CDCCompressor
        eps = as_codec(CDCCompressor(VAE3, DIFF, parameterization="eps"))
        x = as_codec(CDCCompressor(VAE3, DIFF, parameterization="x"))
        assert eps.name == "cdc-eps"
        assert x.name == "cdc-x"

    def test_rule_based_requires_bound(self):
        with pytest.raises(ValueError, match="bound"):
            get_codec("szlike").compress(np.zeros((4, 4, 4)))

    def test_bound_normalization_table(self):
        frames = np.linspace(0.0, 2.0, 4 * 4 * 4).reshape(4, 4, 4)
        n = frames.size
        pw = get_codec("szlike")
        assert pw.native_bound(frames, nrmse_bound=0.1) == \
            pytest.approx(0.1 * 2.0)
        assert pw.native_bound(frames, error_bound=8.0) == \
            pytest.approx(8.0 / np.sqrt(n))
        rm = get_codec("tthresh")
        assert rm.native_bound(frames, error_bound=8.0) == \
            pytest.approx(8.0 / np.sqrt(n))
        l2 = get_codec("ours")
        assert l2.native_bound(frames, error_bound=8.0) == 8.0
        assert l2.native_bound(frames, nrmse_bound=0.1) == \
            pytest.approx(0.1 * 2.0 * np.sqrt(n))
        with pytest.raises(ValueError):
            pw.native_bound(frames, error_bound=1.0, nrmse_bound=0.1)
        assert pw.native_bound(frames) is None
