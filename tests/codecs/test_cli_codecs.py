"""CLI coverage for the codec registry (`codecs`, `--codec NAME`)."""

import numpy as np
import pytest

from repro.cli import main
from repro.codecs import list_codecs
from repro.data import E3SMSynthetic
from repro.metrics import nrmse


@pytest.fixture(scope="module")
def data_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli_codecs")
    frames = E3SMSynthetic(t=12, h=16, w=16, seed=4).frames(0)
    path = root / "frames.npy"
    np.save(path, frames)
    return root, path, frames


def test_codecs_lists_registry(capsys):
    assert main(["codecs"]) == 0
    out = capsys.readouterr().out
    for name in list_codecs():
        assert name in out


@pytest.mark.parametrize("codec", ["szlike", "zfplike", "tthresh",
                                   "mgard", "dpcm", "fazlike"])
def test_rule_based_codec_roundtrip(codec, data_file, capsys):
    root, path, frames = data_file
    stream = root / f"{codec}.bin"
    out = root / f"{codec}.npy"
    rc = main(["compress", "-", str(path), str(stream),
               "--codec", codec, "--nrmse-bound", "0.02"])
    assert rc == 0
    assert "ratio=" in capsys.readouterr().out
    rc = main(["info", str(stream)])
    assert rc == 0
    assert codec in capsys.readouterr().out
    rc = main(["decompress", "-", str(stream), str(out)])
    assert rc == 0
    restored = np.load(out)
    assert restored.shape == frames.shape
    assert nrmse(frames, restored) <= 0.02 * (1 + 1e-9)


def test_rule_based_codec_requires_bound(data_file, capsys):
    root, path, _ = data_file
    rc = main(["compress", "-", str(path), str(root / "x.bin"),
               "--codec", "szlike"])
    assert rc == 2
    assert "bound" in capsys.readouterr().err


def test_decompress_codec_mismatch_detected(data_file, capsys):
    root, path, _ = data_file
    stream = root / "sz_mismatch.bin"
    assert main(["compress", "-", str(path), str(stream),
                 "--codec", "szlike", "--nrmse-bound", "0.05"]) == 0
    capsys.readouterr()
    rc = main(["decompress", "-", str(stream), str(root / "y.npy"),
               "--codec", "mgard"])
    assert rc == 2
    assert "szlike" in capsys.readouterr().err
