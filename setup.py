"""Legacy setup shim (offline environments without the wheel package)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.3.0",
    description=("Reproduction of 'Generative Latent Diffusion for "
                 "Efficient Spatiotemporal Data Reduction' with a "
                 "unified codec registry, parallel execution engine "
                 "and a Session/Archive facade API"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
