"""Shared trained artifacts for the benchmark harness.

Every table/figure bench shares these session-scoped fixtures so the
(CPU-trained) models are built once per run.  Scale: the paper trains
64-channel models on 256x256 crops on A100s for 500K iterations; this
harness uses the ``tiny`` configuration on 16x16 synthetic fields for a
few hundred iterations — absolute numbers shrink accordingly, the
qualitative orderings are what the benches assert (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

import numpy as np
import pytest

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.baselines import CDCCompressor, GCDCompressor, VAESRCompressor
from repro.codecs import get_codec
from repro.config import DiffusionConfig, VAEConfig
from repro.data import DATASETS
from repro.data.base import train_test_windows

OUT_DIR = pathlib.Path(__file__).parent / "out"

# shared geometry for all benches
T, H, W = 36, 16, 16
WINDOW = 6

VAE1 = VAEConfig(in_channels=1, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
VAE3 = VAEConfig(in_channels=3, latent_channels=4, base_filters=8,
                 num_down=2, hyper_filters=4, kernel_size=3)
DIFF = DiffusionConfig(latent_channels=4, base_channels=8,
                       channel_mults=(1, 2), time_embed_dim=16,
                       num_frames=WINDOW, train_steps=16, finetune_steps=4,
                       num_groups=2)

TRAIN_CFG = TrainingConfig(vae_iters=300, diffusion_iters=800,
                           finetune_iters=0, vae_batch=4, diffusion_batch=4,
                           lam=1e-6, vae_lr_decay_every=120)


def save_json(name: str, payload) -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


def dataset_frames(key: str) -> np.ndarray:
    cls = DATASETS[key]
    ds = cls(t=T, h=H, w=W, seed=11)
    var = 1 if key == "s3d" else 0  # product-like species for S3D
    return ds.frames(var)


def split(frames: np.ndarray):
    return train_test_windows(frames, window=WINDOW, train_fraction=0.5,
                              stride=1)


def train_ours(frames: np.ndarray, seed: int = 0, config=None,
               train_cfg: TrainingConfig = None):
    import dataclasses
    cfg = config or tiny()
    # private copy: some benches tweak the trainer's config in place
    train_cfg = dataclasses.replace(train_cfg or TRAIN_CFG)
    train, _ = split(frames)
    trainer = TwoStageTrainer(cfg, train_cfg, seed=seed)
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    return trainer, trainer.build_compressor(train)


@pytest.fixture(scope="session")
def frames_by_dataset() -> Dict[str, np.ndarray]:
    return {k: dataset_frames(k) for k in ("e3sm", "s3d", "jhtdb")}


@pytest.fixture(scope="session")
def ours_by_dataset(frames_by_dataset):
    out = {}
    for key, frames in frames_by_dataset.items():
        _, comp = train_ours(frames, seed=0)
        out[key] = comp
    return out


@pytest.fixture(scope="session")
def vaesr_by_dataset(frames_by_dataset):
    out = {}
    for key, frames in frames_by_dataset.items():
        train, _ = split(frames)
        m = VAESRCompressor(VAE1, sr_filters=8, seed=0)
        m.train(train, vae_iters=200, sr_iters=60)
        m.fit_corrector(train, max_windows=2)
        out[key] = m
    return out


@pytest.fixture(scope="session")
def cdc_pair_e3sm(frames_by_dataset):
    """CDC-eps and CDC-X trained on E3SM (speed + RD benches)."""
    train, _ = split(frames_by_dataset["e3sm"])
    models = {}
    for param in ("eps", "x"):
        m = CDCCompressor(VAE3, DIFF, parameterization=param, seed=0)
        m.train(train, vae_iters=150, diffusion_iters=200)
        m.fit_corrector(train, max_windows=2)
        models[param] = m
    return models


@pytest.fixture(scope="session")
def gcd_e3sm(frames_by_dataset):
    train, _ = split(frames_by_dataset["e3sm"])
    m = GCDCompressor(VAE1, DIFF, seed=0)
    m.train(train, vae_iters=150, diffusion_iters=150)
    m.fit_corrector(train, max_windows=2)
    return m


@pytest.fixture(scope="session")
def rule_based():
    """The two rule-based families Fig. 3 plots, from the registry."""
    return {codec.label: codec.impl
            for codec in (get_codec("szlike"), get_codec("zfplike"))}
