"""Fig. 5 — denoising-step ablation on S3D (Sec. 4.6).

Trains at the full schedule, then fine-tunes copies at fewer steps
({8, 4, 2, 1} — scaled from the paper's {128, 32, 8, 2, 1}) and traces
CR-vs-NRMSE.  Asserts the paper's findings: moderate step counts match
the full schedule while very small ones degrade, and decoding gets
proportionally faster as steps shrink.
"""

import copy
import time

import numpy as np
import pytest

from repro import LatentDiffusionCompressor, tiny
from repro.nn.serialization import state_from_bytes, state_to_bytes

from .conftest import TRAIN_CFG, dataset_frames, save_json, split, train_ours

STEP_GRID = (16, 8, 4, 2, 1)  # 16 = the full training schedule


@pytest.fixture(scope="module")
def step_models():
    frames = dataset_frames("s3d")
    trainer, base = train_ours(frames, seed=0)
    train, _ = split(frames)
    models = {16: _frozen_copy(base, 16)}
    base_state = state_to_bytes(trainer.ddpm.state_dict())
    trainer.train_cfg.finetune_iters = 60
    for steps in STEP_GRID[1:]:
        # restart every fine-tune from the full-schedule weights, as in
        # the paper ("initially train ... then directly fine-tune")
        trainer.ddpm.load_state_dict(state_from_bytes(base_state))
        trainer.finetune_diffusion(train, steps=steps)
        comp = trainer.build_compressor(train)
        # comp aliases trainer.ddpm — freeze a deep copy per step count
        models[steps] = _frozen_copy(comp, steps)
    return frames, models


def _frozen_copy(comp, steps):
    """Deep-copy a compressor so shared trainer state can't mutate it."""
    new = copy.deepcopy(comp)
    new.ddpm.set_schedule(steps)
    return new


def test_fig5_denoising_steps(step_models, benchmark):
    frames, models = step_models
    results = {}
    for steps in STEP_GRID:
        comp = models[steps]
        t0 = time.perf_counter()
        res = comp.compress(frames, nrmse_bound=0.02)
        elapsed = time.perf_counter() - t0
        results[steps] = {"nrmse": res.achieved_nrmse,
                          "ratio": float(res.ratio),
                          "seconds": elapsed,
                          "unbounded_nrmse":
                              comp.compress(frames).achieved_nrmse}

    print("\nFig. 5: denoising-step ablation on S3D (bound 0.02)")
    print(f"{'steps':>6} | {'ratio':>7} | {'NRMSE':>8} | "
          f"{'raw NRMSE':>9} | {'time':>7}")
    for steps in STEP_GRID:
        r = results[steps]
        print(f"{steps:>6} | {r['ratio']:7.1f} | {r['nrmse']:8.4f} | "
              f"{r['unbounded_nrmse']:9.4f} | {r['seconds']:6.2f}s")
    save_json("fig5_denoise_steps", {str(k): v for k, v in results.items()})

    # paper shape: >= half the schedule matches the full schedule; the
    # 1-step model is the worst (raw reconstruction quality)
    raw = {s: results[s]["unbounded_nrmse"] for s in STEP_GRID}
    assert raw[8] <= raw[1] * 1.05
    assert max(raw, key=raw.get) in (1, 2)

    # with the error bound enforced, all points hit the target; fewer
    # steps pay via a bigger correction payload => lower ratio for 1 step
    for s in STEP_GRID:
        assert results[s]["nrmse"] <= 0.02 * (1 + 1e-9)
    assert results[8]["ratio"] >= results[1]["ratio"] * 0.9

    # benchmark: decode speed of the deployable 4-step model
    comp = models[4]
    blob = comp.compress(frames).blob
    benchmark.pedantic(lambda: comp.decompress(blob), rounds=1,
                       iterations=1)
