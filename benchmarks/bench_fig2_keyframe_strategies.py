"""Fig. 2 — keyframe selection strategies (Sec. 4.4).

Trains storage-matched models for the three strategies (interpolation,
prediction, mixed) on the same data and reports the per-frame NRMSE
profile the paper plots.  Asserts the paper's finding: the
interpolation strategy has the lowest mean reconstruction error, and in
every strategy keyframe positions reconstruct better than generated
positions.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import tiny
from repro.pipeline.compressor import window_starts

from .conftest import WINDOW, dataset_frames, save_json, train_ours

STRATEGIES = ("interpolation", "prediction", "mixed")


@pytest.fixture(scope="module")
def strategy_models():
    frames = dataset_frames("e3sm")
    cfg = tiny()
    models = {}
    for strategy in STRATEGIES:
        cfg_s = replace(cfg, pipeline=replace(cfg.pipeline,
                                              keyframe_strategy=strategy))
        _, comp = train_ours(frames, seed=0, config=cfg_s)
        models[strategy] = comp
    return frames, models


def test_fig2_keyframe_strategy_comparison(strategy_models, benchmark):
    frames, models = strategy_models
    rng_ = float(frames.max() - frames.min())
    start = window_starts(frames.shape[0], WINDOW)[0]

    results = {}
    for strategy, comp in models.items():
        res = comp.compress(frames)
        per_frame = [
            float(np.sqrt(((frames[start + i]
                            - res.reconstruction[start + i]) ** 2).mean()))
            / rng_
            for i in range(WINDOW)]
        results[strategy] = {
            "per_frame_nrmse": per_frame,
            "mean_nrmse": float(res.achieved_nrmse),
            "cond_idx": comp.spec().cond_idx.tolist(),
        }

    print("\nFig. 2: per-frame NRMSE by keyframe strategy "
          "(* = keyframe position)")
    for strategy in STRATEGIES:
        r = results[strategy]
        marks = ["*" if i in r["cond_idx"] else " " for i in range(WINDOW)]
        series = " ".join(f"{v:.4f}{m}" for v, m in
                          zip(r["per_frame_nrmse"], marks))
        print(f"  {strategy:>14}: {series}  (mean {r['mean_nrmse']:.4f})")
    save_json("fig2_keyframe_strategies", results)

    # paper: interpolation-based selection outperforms the other two
    means = {s: results[s]["mean_nrmse"] for s in STRATEGIES}
    assert means["interpolation"] == min(means.values()), means

    # paper: keyframe positions beat generated positions per strategy
    # (allow a small band — post-correction errors nearly equalize when
    # the bound is active, and the "mixed" strategy's early cluster of
    # keyframes sits next to its hardest generated frames)
    for s in STRATEGIES:
        r = results[s]
        key = [r["per_frame_nrmse"][i] for i in range(WINDOW)
               if i in r["cond_idx"]]
        gen = [r["per_frame_nrmse"][i] for i in range(WINDOW)
               if i not in r["cond_idx"]]
        assert np.mean(key) <= np.mean(gen) * 1.15, s

    # benchmark: one full compression pass of the winning strategy
    best = models["interpolation"]
    benchmark.pedantic(lambda: best.compress(frames), rounds=1,
                       iterations=1)
