"""Table 1 — dataset information, plus the full evaluation grid.

Regenerates the paper's dataset table straight from the **dataset
registry** (the generators' recorded metadata) and benchmarks
synthetic-field generation throughput (our substitution for reading
the archives from disk).

The paper's comparison tables sweep every codec over every dataset;
this bench drives exactly that grid — ``list_datasets() x
list_codecs()`` — through the shard planner and the execution engine,
so the table the other benches refine is produced by the same
registry/planner/executor machinery production sweeps use (no
hand-instantiated datasets, no hand-picked codec imports).
"""

import numpy as np

from repro.codecs import codec_specs, get_codec, list_codecs
from repro.data import dataset_entries, get_dataset_spec, list_datasets
from repro.pipeline.engine import CodecEngine
from repro.pipeline.plan import plan_shards

from .conftest import save_json

#: small-but-representative grid workload (per dataset, one variable)
GRID_T, GRID_H, GRID_W = 12, 16, 16
REL_BOUND = 2e-2


def test_table1_dataset_information(benchmark):
    rows = []
    for key in list_datasets():
        info = dataset_entries()[key].cls.info
        rows.append({
            "application": info.name,
            "domain": info.domain,
            "dimensions": "x".join(str(d) for d in info.paper_shape),
            "total_size_gb_paper": info.paper_size_gb,
            "total_size_gb_computed": round(info.computed_size_gb(), 1),
        })

    print("\nTable 1: Datasets Information")
    print(f"{'Application':>12} | {'Domain':>11} | {'Dimensions':>20} | "
          f"{'Size (paper)':>12} | {'Size (shape)':>12}")
    for r in rows:
        print(f"{r['application']:>12} | {r['domain']:>11} | "
              f"{r['dimensions']:>20} | {r['total_size_gb_paper']:>10.1f}GB"
              f" | {r['total_size_gb_computed']:>10.1f}GB")
    # the method inventory (from the codec registry) alongside the
    # dataset inventory: one comparison grid, no hand-picked imports
    methods = []
    for name in list_codecs():
        codec = get_codec(name)
        methods.append({"codec": name, "label": codec.label,
                        "bound_kind": codec.capabilities.bound_kind,
                        "learned": codec.capabilities.learned,
                        "class": codec_specs()[name].cls.__name__})
    print(f"\nComparison grid: {len(rows)} datasets x "
          f"{len(methods)} registered codecs")
    save_json("table1_datasets", {"datasets": rows, "codecs": methods})

    # published sizes agree with the published shapes
    for r in rows:
        assert abs(r["total_size_gb_paper"] - r["total_size_gb_computed"]) \
            <= 0.02 * r["total_size_gb_paper"]

    # the paper's comparison set is fully covered by the registry
    labels = {m["label"] for m in methods}
    assert {"SZ3-like", "ZFP-like", "TTHRESH-like", "MGARD-like", "DPCM",
            "FAZ-like", "CDC-eps", "CDC-X", "GCD", "VAE-SR",
            "Ours"} <= labels

    # benchmark: generation throughput of one E3SM-like variable
    spec = get_dataset_spec("e3sm", t=8, h=32, w=32, seed=0)
    result = benchmark(lambda: spec.build().frames(0))
    assert result.shape == (8, 32, 32)


def test_dataset_codec_grid_through_planner():
    """Every (dataset, codec) cell compresses through plan + engine."""
    grid = {}
    engine_cache = {}
    for ds_name in list_datasets():
        spec = get_dataset_spec(ds_name, t=GRID_T, h=GRID_H, w=GRID_W,
                                seed=0)
        for codec_name in list_codecs():
            codec = engine_cache.setdefault(codec_name,
                                            get_codec(codec_name))
            # learned codecs need >= one diffusion window per shard
            shards = 2 if GRID_T // 2 >= codec.min_frames else 1
            plan = plan_shards(spec, variables=[0], shards=shards)
            engine = CodecEngine(codec, executor="serial")
            if codec.capabilities.bound_kind == "l2":
                # untrained learned codecs have no corrector: unbounded
                batch = engine.compress_plan(plan,
                                             keep_reconstruction=False)
            else:
                batch = engine.compress_plan(plan,
                                             nrmse_bound=REL_BOUND,
                                             keep_reconstruction=False)
                assert batch.worst_nrmse() <= REL_BOUND * (1 + 1e-9), \
                    (ds_name, codec_name)
            acc = batch.accounting()
            grid[f"{ds_name}/{codec_name}"] = {
                "shards": len(plan),
                "ratio": round(float(acc.ratio), 3),
                "worst_nrmse": round(float(batch.worst_nrmse()), 6),
                "payload_bytes": int(acc.compressed_bytes),
            }

    assert len(grid) == len(list_datasets()) * len(list_codecs())

    print(f"\n{'cell':22s} {'shards':>6s} {'ratio':>8s} {'nrmse':>10s}")
    for cell, r in grid.items():
        print(f"{cell:22s} {r['shards']:6d} {r['ratio']:8.2f} "
              f"{r['worst_nrmse']:10.6f}")
    save_json("table1_grid", {
        "workload": f"{GRID_T}x{GRID_H}x{GRID_W}", "rel_bound": REL_BOUND,
        "grid": grid})
