"""Table 1 — dataset information (application, domain, dims, size).

Regenerates the paper's dataset table from the generators' recorded
metadata and benchmarks synthetic-field generation throughput (our
substitution for reading the archives from disk).  Also records the
codec inventory the comparison tables draw from, straight from the
registry — the datasets x methods grid every other bench sweeps.
"""

import numpy as np

from repro.codecs import codec_specs, get_codec, list_codecs
from repro.data import DATASETS

from .conftest import save_json


def test_table1_dataset_information(benchmark):
    rows = []
    for key in ("e3sm", "s3d", "jhtdb"):
        info = DATASETS[key].info
        rows.append({
            "application": info.name,
            "domain": info.domain,
            "dimensions": "x".join(str(d) for d in info.paper_shape),
            "total_size_gb_paper": info.paper_size_gb,
            "total_size_gb_computed": round(info.computed_size_gb(), 1),
        })

    print("\nTable 1: Datasets Information")
    print(f"{'Application':>12} | {'Domain':>11} | {'Dimensions':>20} | "
          f"{'Size (paper)':>12} | {'Size (shape)':>12}")
    for r in rows:
        print(f"{r['application']:>12} | {r['domain']:>11} | "
              f"{r['dimensions']:>20} | {r['total_size_gb_paper']:>10.1f}GB"
              f" | {r['total_size_gb_computed']:>10.1f}GB")
    # the method inventory (from the codec registry) alongside the
    # dataset inventory: one comparison grid, no hand-picked imports
    methods = []
    for name in list_codecs():
        codec = get_codec(name)
        methods.append({"codec": name, "label": codec.label,
                        "bound_kind": codec.capabilities.bound_kind,
                        "learned": codec.capabilities.learned,
                        "class": codec_specs()[name].cls.__name__})
    print(f"\nComparison grid: {len(rows)} datasets x "
          f"{len(methods)} registered codecs")
    save_json("table1_datasets", {"datasets": rows, "codecs": methods})

    # published sizes agree with the published shapes
    for r in rows:
        assert abs(r["total_size_gb_paper"] - r["total_size_gb_computed"]) \
            <= 0.02 * r["total_size_gb_paper"]

    # the paper's comparison set is fully covered by the registry
    labels = {m["label"] for m in methods}
    assert {"SZ3-like", "ZFP-like", "TTHRESH-like", "MGARD-like", "DPCM",
            "FAZ-like", "CDC-eps", "CDC-X", "GCD", "VAE-SR",
            "Ours"} <= labels

    # benchmark: generation throughput of one E3SM-like variable
    gen = DATASETS["e3sm"]
    result = benchmark(lambda: gen(t=8, h=32, w=32, seed=0).frames(0))
    assert result.shape == (8, 32, 32)
