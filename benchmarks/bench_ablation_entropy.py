"""Entropy-backend ablation: arithmetic (range) coder vs rANS vs
lane-vectorized interleaved rANS vs table-cached LUT rANS.

All backends code the same symbol streams under the same quantized
probability tables, so compressed sizes must agree to within a few
bytes of coder termination overhead (vrans additionally pays a small
per-lane state header); throughput is where they differ.  Streams are
the realistic ones the pipeline produces: near-Gaussian quantized
latent residuals at several scales plus a heavily skewed
correction-coefficient distribution.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.entropy import (decode_symbols, decode_symbols_rans,
                           decode_symbols_trans, decode_symbols_vrans,
                           encode_symbols, encode_symbols_rans,
                           encode_symbols_trans, encode_symbols_vrans)
from repro.entropy.coder import pmf_to_cumulative

from .conftest import save_json


def _gaussian_stream(seed: int, n: int = 20000, alphabet: int = 33,
                     n_ctx: int = 8):
    """Quantized-Gaussian symbols with per-context scales (latent-like)."""
    rng = np.random.default_rng(seed)
    centers = np.arange(alphabet) - alphabet // 2
    scales = np.linspace(0.6, 4.0, n_ctx)
    pmf = np.exp(-0.5 * (centers[None, :] / scales[:, None]) ** 2)
    tables = pmf_to_cumulative(pmf)
    contexts = rng.integers(0, n_ctx, size=n)
    symbols = np.empty(n, dtype=np.int64)
    for c in range(n_ctx):
        sel = contexts == c
        p = pmf[c] / pmf[c].sum()
        symbols[sel] = rng.choice(alphabet, size=int(sel.sum()), p=p)
    return symbols, tables, contexts


def _entropy_bits(symbols, tables, contexts) -> float:
    freqs = np.diff(tables, axis=1).astype(np.float64)
    p = freqs / freqs.sum(axis=1, keepdims=True)
    return float(-np.log2(p[contexts, symbols]).sum())


def test_ablation_entropy_backends(benchmark):
    symbols, tables, contexts = _gaussian_stream(0)
    h_bytes = _entropy_bits(symbols, tables, contexts) / 8.0

    t0 = time.perf_counter()
    a_stream = encode_symbols(symbols, tables, contexts)
    t_arith_enc = time.perf_counter() - t0
    t0 = time.perf_counter()
    r_stream = encode_symbols_rans(symbols, tables, contexts)
    t_rans_enc = time.perf_counter() - t0
    t0 = time.perf_counter()
    v_stream = encode_symbols_vrans(symbols, tables, contexts)
    t_vrans_enc = time.perf_counter() - t0
    encode_symbols_trans(symbols, tables, contexts)  # warm the cache
    t0 = time.perf_counter()
    t_stream = encode_symbols_trans(symbols, tables, contexts)
    t_trans_enc = time.perf_counter() - t0

    t0 = time.perf_counter()
    a_out = decode_symbols(a_stream, tables, contexts)
    t_arith_dec = time.perf_counter() - t0
    t0 = time.perf_counter()
    r_out = decode_symbols_rans(r_stream, tables, contexts)
    t_rans_dec = time.perf_counter() - t0
    t0 = time.perf_counter()
    v_out = decode_symbols_vrans(v_stream, tables, contexts)
    t_vrans_dec = time.perf_counter() - t0
    t0 = time.perf_counter()
    t_out = decode_symbols_trans(t_stream, tables, contexts)
    t_trans_dec = time.perf_counter() - t0

    np.testing.assert_array_equal(a_out, symbols)
    np.testing.assert_array_equal(r_out, symbols)
    np.testing.assert_array_equal(v_out, symbols)
    np.testing.assert_array_equal(t_out, symbols)

    print(f"\nAblation (entropy backend), {symbols.size} symbols, "
          f"entropy {h_bytes:.0f} B:")
    print(f"  arithmetic: {len(a_stream)} B, "
          f"enc {t_arith_enc * 1e3:.0f} ms / dec {t_arith_dec * 1e3:.0f} ms")
    print(f"  rANS:       {len(r_stream)} B, "
          f"enc {t_rans_enc * 1e3:.0f} ms / dec {t_rans_dec * 1e3:.0f} ms")
    print(f"  vrANS:      {len(v_stream)} B, "
          f"enc {t_vrans_enc * 1e3:.0f} ms / dec {t_vrans_dec * 1e3:.0f} ms")
    print(f"  trANS:      {len(t_stream)} B, "
          f"enc {t_trans_enc * 1e3:.0f} ms / dec {t_trans_dec * 1e3:.0f} ms")
    save_json("ablation_entropy", {
        "entropy_bytes": h_bytes,
        "arithmetic_bytes": len(a_stream),
        "rans_bytes": len(r_stream),
        "vrans_bytes": len(v_stream),
        "arith_enc_s": t_arith_enc, "arith_dec_s": t_arith_dec,
        "rans_enc_s": t_rans_enc, "rans_dec_s": t_rans_dec,
        "vrans_enc_s": t_vrans_enc, "vrans_dec_s": t_vrans_dec,
        "trans_bytes": len(t_stream),
        "trans_enc_s": t_trans_enc, "trans_dec_s": t_trans_dec,
    })

    # all land within 1% + termination slack of the entropy (vrans
    # additionally carries its lane-state header)
    lane_header = 1 + 8 * v_stream[0]
    trans_header = 1 + 8 * t_stream[0]
    assert len(a_stream) <= h_bytes * 1.01 + 16
    assert len(r_stream) <= h_bytes * 1.01 + 16
    assert len(v_stream) <= h_bytes * 1.01 + 16 + lane_header
    assert len(t_stream) <= h_bytes * 1.01 + 16 + trans_header
    # and within 2% + slack of each other
    assert abs(len(a_stream) - len(r_stream)) <= 0.02 * len(a_stream) + 16
    assert (abs(len(a_stream) - len(v_stream))
            <= 0.02 * len(a_stream) + 16 + lane_header)

    benchmark(lambda: encode_symbols_vrans(symbols, tables, contexts))


def test_ablation_entropy_skewed(benchmark):
    """Correction-coefficient regime: most-probable-symbol dominated."""
    rng = np.random.default_rng(1)
    n = 30000
    symbols = rng.choice(5, size=n,
                         p=[0.9, 0.05, 0.03, 0.015, 0.005]).astype(np.int64)
    pmf = np.bincount(symbols, minlength=5)[None, :].astype(np.float64)
    tables = pmf_to_cumulative(pmf)
    contexts = np.zeros(n, dtype=np.int64)
    h_bytes = _entropy_bits(symbols, tables, contexts) / 8.0

    a_stream = encode_symbols(symbols, tables, contexts)
    r_stream = encode_symbols_rans(symbols, tables, contexts)
    np.testing.assert_array_equal(
        decode_symbols_rans(r_stream, tables, contexts), symbols)

    print(f"\nSkewed stream: entropy {h_bytes:.0f} B, "
          f"arithmetic {len(a_stream)} B, rANS {len(r_stream)} B "
          f"(raw would be {n // 8 * 3} B at 3 bits/symbol)")
    assert len(r_stream) <= h_bytes * 1.02 + 16
    assert len(a_stream) <= h_bytes * 1.02 + 16

    benchmark(lambda: decode_symbols_rans(r_stream, tables, contexts))
