"""Resume-vs-recompute benchmark for journaled sweeps.

One szlike sweep over a single E3SM variable, sliced into four uneven
time windows (t=26, window=8 -> shards of 8, 8, 8 and 2 frames).  The
bench runs the sweep three ways —

* **full** — a fresh journal, every shard encoded from scratch (what
  discarding the interrupted journal and starting over costs);
* **interrupted** — journaled, killed by a fault injector riding the
  runtime event stream after K=2 of N=4 shards have committed;
* **resumed** — the interrupted journal is reopened and the sweep
  finishes, replaying the two durable shards and encoding only the
  remaining two.

Asserts the tentpole acceptance criteria end to end: the resumed
archive is **byte-identical** to the uninterrupted one, the resume
provably recomputes only the incomplete shards (``computed == 2``,
``resumed == 2``), and — because the two journaled shards cover ~62%
of the frames — resuming beats recomputing by at least
``RESUME_SPEEDUP_FLOOR``x.

Appends a ``sweep`` record to the ``BENCH_codecs.json`` trajectory so
future PRs that touch the runtime, the journal or the engine replay
path have a resume-overhead baseline to diff against.
"""

from __future__ import annotations

import json
import shutil
import time

from repro.api import Session
from repro.pipeline.plan import _variable_frames

from .bench_codec_registry import _append_trajectory, _prior_record
from .conftest import save_json

#: workload: one E3SM variable, four uneven time windows.  The serial
#: executor completes shards in order, so a crash after two commits
#: leaves 8+8=16 of 26 frames durable and only 10 to recompute.
SWEEP_T, SWEEP_H, SWEEP_W = 26, 48, 48
SWEEP_WINDOW = 8
SWEEP_SHARDS = 4  # ceil(26 / 8)
CRASH_AFTER = 2
SWEEP_SEED = 11
REL_BOUND = 1e-2
SWEEP_REPS = 5  # min-of-reps after an untimed warmup pass

#: acceptance criterion: journal resume vs full recompute.  The two
#: committed shards hold 16/26 of the frames, so the ideal speedup is
#: ~2.6x; 2.0x leaves room for replay/verify overhead.
RESUME_SPEEDUP_FLOOR = 2.0

SWEEP_KW = dict(nrmse_bound=REL_BOUND, window=SWEEP_WINDOW,
                seed=SWEEP_SEED, variables=[0],
                dataset_overrides={"t": SWEEP_T, "h": SWEEP_H,
                                   "w": SWEEP_W})


class _CrashAfter:
    """Event observer that kills the sweep after ``k`` completions."""

    def __init__(self, k: int):
        self.k = k
        self.completed = 0

    def __call__(self, event):
        if event.kind == "completed":
            self.completed += 1
            if self.completed >= self.k:
                raise KeyboardInterrupt(
                    f"injected crash after {self.k} shards")


def _timed_sweep(session, **kwargs):
    # the planner memoises synthetic variables; clear it so every
    # measured run pays the same generation cost
    _variable_frames.cache_clear()
    t0 = time.perf_counter()
    archive = session.sweep("e3sm", **SWEEP_KW, **kwargs)
    return time.perf_counter() - t0, archive


def _clone_journal(src, dst):
    shutil.copy2(src, dst)
    shutil.copytree(str(src) + ".objects", str(dst) + ".objects")


def test_sweep_resume_speedup(tmp_path):
    with Session(codec="szlike", executor="serial") as session:
        # untimed warmup: JIT-free python, but primes imports/caches
        # and pins the reference bytes every later run must match
        _, warm = _timed_sweep(session)
        reference = warm.to_bytes()
        assert warm.stats["shards"] == SWEEP_SHARDS

        # build the interrupted journal once: crash after K commits
        interrupted = tmp_path / "interrupted.journal"
        crash = _CrashAfter(CRASH_AFTER)
        try:
            session.sweep("e3sm", journal=interrupted, on_event=crash,
                          **SWEEP_KW)
        except KeyboardInterrupt:
            pass
        else:  # pragma: no cover - the injector must fire
            raise AssertionError("fault injector never fired")
        task_lines = sum('"kind":"task"' in line for line
                         in interrupted.read_text().splitlines())
        assert task_lines == CRASH_AFTER

        # interleave the two measurements so machine noise (and the
        # journal's per-shard fsyncs, which both sides now pay) lands
        # on them evenly
        full_times, resume_times = [], []
        for rep in range(SWEEP_REPS):
            journal = tmp_path / f"full-{rep}.journal"
            seconds, archive = _timed_sweep(session, journal=journal)
            assert archive.to_bytes() == reference
            assert archive.stats["computed_shards"] == SWEEP_SHARDS
            full_times.append(seconds)

            journal = tmp_path / f"resume-{rep}.journal"
            _clone_journal(interrupted, journal)
            seconds, archive = _timed_sweep(session, journal=journal)
            assert archive.to_bytes() == reference
            assert archive.stats["resumed_shards"] == CRASH_AFTER
            assert archive.stats["computed_shards"] == \
                SWEEP_SHARDS - CRASH_AFTER
            resume_times.append(seconds)

    full_seconds = min(full_times)
    resume_seconds = min(resume_times)
    speedup = full_seconds / resume_seconds

    record = {
        "workload": (f"e3sm-{SWEEP_T}x{SWEEP_H}x{SWEEP_W}-szlike-"
                     f"window{SWEEP_WINDOW}-serial"),
        "shards": SWEEP_SHARDS,
        "completed_at_crash": CRASH_AFTER,
        "full_seconds": round(full_seconds, 6),
        "resume_seconds": round(resume_seconds, 6),
        "resume_speedup": round(speedup, 2),
        "resume_speedup_floor": RESUME_SPEEDUP_FLOOR,
        "archive_bytes": len(reference),
        "byte_identical": True,
        "recomputed_shards": SWEEP_SHARDS - CRASH_AFTER,
    }
    prior = _prior_record("sweep")
    if prior:
        record["prior_resume_speedup"] = prior.get("resume_speedup")
    save_json("bench_sweep", record)
    _append_trajectory({"sweep": record})
    print(json.dumps(record, indent=2))

    assert speedup >= RESUME_SPEEDUP_FLOOR, (
        f"journal resume only {speedup:.2f}x faster than full recompute "
        f"(floor {RESUME_SPEEDUP_FLOOR}x): full={full_seconds:.3f}s "
        f"resume={resume_seconds:.3f}s")
