"""Codec-registry smoke benchmark: perf baseline for every codec.

Times compress and decompress of **every registered codec** on one
fixed synthetic workload (E3SM-like, 12x16x16, seed 11) and appends a
record to the ``BENCH_codecs.json`` trajectory file at the repo root,
so future PRs that touch a codec or the engine have a
commit-over-commit perf baseline to diff against.

Learned codecs run *untrained* — this is a throughput smoke test of
the encode/decode machinery (VAE transforms, entropy coding, reverse
diffusion), not a rate-distortion measurement; untrained weights
execute the identical compute graph.  Bounded codecs run at a fixed
relative bound of 1e-2.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.codecs import get_codec, list_codecs
from repro.data import E3SMSynthetic
from repro.pipeline.engine import CodecEngine

from .conftest import save_json

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_codecs.json"

REL_BOUND = 1e-2


def _workload() -> np.ndarray:
    return E3SMSynthetic(t=12, h=16, w=16, seed=11).frames(0)


def _bound_for(codec, frames):
    if codec.capabilities.bound_kind == "l2":
        return None  # unbounded: untrained codecs have no corrector
    rng_ = float(frames.max() - frames.min())
    return REL_BOUND * rng_


def test_codec_registry_smoke(benchmark):
    frames = _workload()
    rows = {}
    for name in list_codecs():
        codec = get_codec(name)
        bound = _bound_for(codec, frames)
        t0 = time.perf_counter()
        res = codec.compress(frames, bound, seed=0)
        t_enc = time.perf_counter() - t0
        t0 = time.perf_counter()
        rec = codec.decompress(res.payload)
        t_dec = time.perf_counter() - t0
        assert rec.shape == frames.shape
        np.testing.assert_allclose(rec, res.reconstruction, atol=1e-9)
        rows[name] = {
            "compress_seconds": round(t_enc, 6),
            "decompress_seconds": round(t_dec, 6),
            "payload_bytes": len(res.payload),
            "ratio": round(float(res.ratio), 3),
            "bound_kind": codec.capabilities.bound_kind,
        }

    # engine smoke on the fastest codec: the parallel path stays sane
    engine_batch = CodecEngine("szlike", max_workers=4).compress(
        [frames, frames * 0.5], nrmse_bound=0.05)
    engine_row = {
        "windows": len(engine_batch.results),
        "wall_seconds": round(engine_batch.wall_seconds, 6),
        "cpu_seconds": round(engine_batch.cpu_seconds, 6),
        "speedup": round(engine_batch.speedup, 3),
    }

    print(f"\n{'codec':10s} {'enc s':>10s} {'dec s':>10s} "
          f"{'bytes':>8s} {'ratio':>8s}")
    for name, r in rows.items():
        print(f"{name:10s} {r['compress_seconds']:10.4f} "
              f"{r['decompress_seconds']:10.4f} "
              f"{r['payload_bytes']:8d} {r['ratio']:8.2f}")

    record = {"workload": "e3sm-12x16x16-seed11",
              "rel_bound": REL_BOUND,
              "codecs": rows, "engine": engine_row}
    save_json("codec_registry_smoke", record)

    # append to the trajectory file so PRs can diff perf over time
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(record)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2))

    assert set(rows) == set(list_codecs())

    # benchmark fixture: the registry's hot rule-based path
    codec = get_codec("szlike")
    eb = REL_BOUND * float(frames.max() - frames.min())
    benchmark(lambda: codec.compress(frames, eb))
