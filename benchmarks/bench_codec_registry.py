"""Codec-registry smoke benchmark: perf baseline for every codec.

Times compress and decompress of **every registered codec** on one
fixed synthetic workload (E3SM-like, 12x16x16, seed 11) and appends a
record to the ``BENCH_codecs.json`` trajectory file at the repo root,
so future PRs that touch a codec or the engine have a
commit-over-commit perf baseline to diff against.

Learned codecs run *untrained* — this is a throughput smoke test of
the encode/decode machinery (VAE transforms, entropy coding, reverse
diffusion), not a rate-distortion measurement; untrained weights
execute the identical compute graph.  Bounded codecs run at a fixed
relative bound of 1e-2.

The record also carries an **executor comparison**: the same shard
plan (E3SM-like, 8 time shards) run through the serial, thread and
process backends for a sample of rule-based codecs, so the engine's
backend dispatch has its own perf trajectory.  Process pools are kept
warm across repetitions (fork cost is a per-sweep constant, not a
per-batch one) and reconstructions stay in the workers
(``keep_reconstruction=False``), matching how production sweeps run.
On a single-CPU box the thread and process backends measure within a
few percent of serial (there is nothing to parallelize); the process
pool's advantage over the GIL-bound codec loops appears with real
cores.

The ``nn`` block times every learned codec twice — on the inference
fast path and under an in-run legacy emulation (fast kernels off,
window batching off) — asserts the flagship speedup floor, and embeds
the top ops of a profiled decompress (``repro.nn.profile``); the full
table is written to ``BENCH_nn_profile.txt`` for CI to upload.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time

import numpy as np

from repro.api import Bound, Session
from repro.codecs import get_codec, list_codecs
from repro.data import get_dataset_spec
from repro.entropy import get_backend, list_backends
from repro.entropy.coder import pmf_to_cumulative
from repro.pipeline.engine import CodecEngine
from repro.pipeline.executors import (ProcessExecutor, SerialExecutor,
                                      ThreadExecutor)
from repro.pipeline.plan import (pack_shard_archive, plan_shards,
                                 ShardEntry)

from .conftest import save_json

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_codecs.json"

REL_BOUND = 1e-2

#: executor-comparison workload: one E3SM variable, 8 time shards
EXEC_CODECS = ("szlike", "dpcm", "fazlike")
EXEC_SHARDS = 8
EXEC_WORKERS = 4
EXEC_REPS = 3  # min-of-reps after an untimed warmup pass


def _append_trajectory(record) -> bool:
    """Append to ``BENCH_codecs.json``, skipping gracefully (with a
    log line) when the file is corrupt or unwritable.

    The trajectory is a nice-to-have perf history; a read-only
    checkout or a truncated file must never crash the bench itself.
    """
    trajectory = []
    if TRAJECTORY.exists():
        try:
            trajectory = json.loads(TRAJECTORY.read_text())
            if not isinstance(trajectory, list):
                raise ValueError("trajectory root is not a JSON list")
        except (ValueError, OSError) as exc:
            print(f"warning: {TRAJECTORY.name} is corrupt or unreadable "
                  f"({exc}); skipping trajectory append")
            return False
    trajectory.append(record)
    try:
        TRAJECTORY.write_text(json.dumps(trajectory, indent=2))
    except OSError as exc:
        print(f"warning: cannot write {TRAJECTORY.name} ({exc}); "
              f"skipping trajectory append")
        return False
    return True


def _workload() -> np.ndarray:
    return get_dataset_spec("e3sm", t=12, h=16, w=16, seed=11) \
        .build().frames(0)


#: facade-vs-engine workload (kept smaller than the executor grid so
#: dispatch overhead is a visible fraction of the wall clock)
FACADE_SHARDS = 8
FACADE_OVERRIDES = {"t": 24, "h": 32, "w": 32, "seed": 11}
FACADE_REPS = 3


def _facade_overhead() -> dict:
    """Min-of-reps wall clock: direct engine drive vs Session facade.

    Both sides produce the identical shard archive; the assertion at
    the end is the acceptance criterion (facade overhead within
    noise).
    """
    from repro.codecs import pack_envelope
    plan = plan_shards("e3sm", variables=[0], shards=FACADE_SHARDS,
                       **FACADE_OVERRIDES)

    def engine_run() -> bytes:
        engine = CodecEngine("szlike", executor="serial")
        batch = engine.compress_plan(plan, nrmse_bound=REL_BOUND,
                                     keep_reconstruction=False)
        entries = [ShardEntry(shard_id=t.shard_id, variable=t.variable,
                              t0=t.t0, t1=t.t1,
                              payload=pack_envelope("szlike", r.payload))
                   for t, r in zip(plan, batch.results)]
        return pack_shard_archive(entries)

    session = Session(codec="szlike", executor="serial")

    def session_run() -> bytes:
        archive = session.compress(
            "e3sm", bound=Bound.nrmse(REL_BOUND), variables=[0],
            shards=FACADE_SHARDS, dataset_overrides=FACADE_OVERRIDES,
            keep_reconstruction=False)
        return archive.to_bytes()

    walls = {}
    wires = {}
    for name, run in (("engine", engine_run), ("session", session_run)):
        run()  # untimed warmup (generation caches, codec cache)
        best = float("inf")
        for _ in range(FACADE_REPS):
            t0 = time.perf_counter()
            wires[name] = run()
            best = min(best, time.perf_counter() - t0)
        walls[name] = best
    session.close()

    assert wires["session"] == wires["engine"], \
        "facade archive differs from direct engine drive"
    return {
        "workload": (f"e3sm-{FACADE_OVERRIDES['t']}x"
                     f"{FACADE_OVERRIDES['h']}x{FACADE_OVERRIDES['w']}"
                     f"-x{FACADE_SHARDS}shards-szlike-serial"),
        "engine_seconds": round(walls["engine"], 6),
        "session_seconds": round(walls["session"], 6),
        "overhead_ratio": round(walls["session"]
                                / max(walls["engine"], 1e-9), 4),
    }


#: entropy-backend workload: a Gaussian-conditional-like symbol stream
#: (the shape every codec's hot path codes), min-of-reps per backend
ENTROPY_SYMBOLS = 60_000
ENTROPY_CONTEXTS = 64
ENTROPY_ALPHABET = 33
ENTROPY_REPS = 3
#: acceptance criterion: the vectorized backend must beat the
#: per-symbol arithmetic loop by at least this factor end to end
ENTROPY_MIN_SPEEDUP = 5.0
#: second stream: a large alphabet makes the decode-side symbol search
#: the dominant cost, which is exactly what the trans LUT removes —
#: this is the stream its speedup floor is asserted on
ENTROPY_LARGE_CONTEXTS = 16
ENTROPY_LARGE_ALPHABET = 512
#: acceptance criterion: the table-cached LUT backend must beat vrans
#: end to end on the large-alphabet stream by at least this factor
TRANS_MIN_SPEEDUP = 2.0
#: the Python-loop backends are ~100x off the pace on this stream;
#: cap their share of the bench wall clock, the vectorized pair still
#: runs the full stream
ENTROPY_LARGE_SLOW_CAP = 6_000


def _stream(n_ctx: int, alphabet: int, n: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    pmf = rng.random((n_ctx, alphabet)) + 0.01
    tables = pmf_to_cumulative(pmf)
    contexts = rng.integers(0, n_ctx, size=n)
    # inverse-CDF draw so symbols follow their context's table
    u = rng.random(n) * tables[contexts, -1]
    symbols = (tables[contexts] <= u[:, None]).sum(axis=1) - 1
    return symbols, tables, contexts


def _time_backends(symbols, tables, contexts, slow_cap=None) -> dict:
    """Min-of-reps encode/decode wall clock per registered backend.

    ``slow_cap`` truncates the stream for the per-symbol Python-loop
    backends (arithmetic, rans) so a deliberately search-heavy stream
    does not spend the whole bench budget timing known-slow loops; the
    reported Msym/s stays comparable either way.
    """
    backends = {}
    for name in list_backends():
        be = get_backend(name)
        sym, ctx = symbols, contexts
        if slow_cap is not None and name in ("arithmetic", "rans"):
            sym, ctx = symbols[:slow_cap], contexts[:slow_cap]
        enc = dec = float("inf")
        data = be.encode(sym, tables, ctx)  # untimed warmup
        for _ in range(ENTROPY_REPS):
            t0 = time.perf_counter()
            data = be.encode(sym, tables, ctx)
            enc = min(enc, time.perf_counter() - t0)
            t0 = time.perf_counter()
            out = be.decode(data, tables, ctx)
            dec = min(dec, time.perf_counter() - t0)
        np.testing.assert_array_equal(out, sym)
        backends[name] = {
            "encode_seconds": round(enc, 6),
            "decode_seconds": round(dec, 6),
            "encode_msym_per_s": round(sym.size / enc / 1e6, 3),
            "decode_msym_per_s": round(sym.size / dec / 1e6, 3),
            "stream_bytes": len(data),
            "symbols": int(sym.size),
        }
    return backends


def _e2e_speedup(backends: dict, fast: str, slow: str) -> float:
    """End-to-end (encode+decode) speedup of ``fast`` over ``slow``,
    normalized per symbol (the slow side may run a capped stream)."""
    f, s = backends[fast], backends[slow]
    per_f = (f["encode_seconds"] + f["decode_seconds"]) / f["symbols"]
    per_s = (s["encode_seconds"] + s["decode_seconds"]) / s["symbols"]
    return per_s / max(per_f, 1e-12)


def _entropy_throughput() -> dict:
    """Per-backend symbol-coding throughput on two fixed streams.

    The per-symbol Python loop is the dominant cost of every codec's
    compress/decompress, so this block is the trajectory to watch when
    touching the entropy layer.  The small-alphabet stream is the
    original vrans-vs-arithmetic trajectory; the large-alphabet stream
    stresses the decode-side symbol search that the trans LUT replaces
    with an O(1) gather.
    """
    symbols, tables, contexts = _stream(
        ENTROPY_CONTEXTS, ENTROPY_ALPHABET, ENTROPY_SYMBOLS)
    backends = _time_backends(symbols, tables, contexts)

    lsymbols, ltables, lcontexts = _stream(
        ENTROPY_LARGE_CONTEXTS, ENTROPY_LARGE_ALPHABET, ENTROPY_SYMBOLS)
    large = _time_backends(lsymbols, ltables, lcontexts,
                           slow_cap=ENTROPY_LARGE_SLOW_CAP)

    return {
        "workload": (f"{ENTROPY_SYMBOLS}sym-{ENTROPY_CONTEXTS}ctx-"
                     f"{ENTROPY_ALPHABET}alpha"),
        "backends": backends,
        "vrans_speedup_vs_arithmetic": round(
            _e2e_speedup(backends, "vrans", "arithmetic"), 2),
        "workload_large": (f"{ENTROPY_SYMBOLS}sym-"
                           f"{ENTROPY_LARGE_CONTEXTS}ctx-"
                           f"{ENTROPY_LARGE_ALPHABET}alpha"),
        "backends_large": large,
        "trans_speedup_vs_vrans": round(
            _e2e_speedup(large, "trans", "vrans"), 2),
    }


def _prior_record(key: str) -> dict:
    """Last trajectory entry carrying a ``key`` block, if any."""
    if not TRAJECTORY.exists():
        return {}
    try:
        trajectory = json.loads(TRAJECTORY.read_text())
    except (ValueError, OSError):
        return {}
    if not isinstance(trajectory, list):
        return {}
    for record in reversed(trajectory):
        if isinstance(record, dict) and key in record:
            return record[key]
    return {}


def _prior_entropy_record() -> dict:
    """Last trajectory entry carrying an ``entropy`` block, if any."""
    return _prior_record("entropy")


# ----------------------------------------------------------------------
# nn inference fast path: fast vs legacy-emulation timings + profile
# ----------------------------------------------------------------------
#: learned codecs driven by the nn stack's inference fast path
NN_CODECS = ("ours", "gcd", "cdc-eps", "cdc-x", "vae-sr")
NN_REPS = 3
#: acceptance criterion: the flagship pipeline's fused no-grad kernels
#: + batched windows must beat the legacy per-op path by this factor.
#: The gcd/cdc baselines are GEMM-bound in float64 on small latent
#: grids (the fast path removes graph overhead, not FLOPs), so their
#: speedups are recorded but only asserted to never regress below 1x.
NN_MIN_SPEEDUP_OURS = 3.0
NN_PROFILE_TXT = REPO_ROOT / "BENCH_nn_profile.txt"
NN_PROFILE_TOP = 5


@contextlib.contextmanager
def _legacy_emulation():
    """Re-create the pre-fast-path inference configuration in-run.

    Disables the fused no-grad kernels (``fastpath.disabled()``) *and*
    the batched-window denoise loops (``MAX_BATCH_WINDOWS = 1``, GCD's
    noise-buffer budget forced to its sequential fallback), so the
    speedup is measured against an honest legacy baseline on the same
    machine rather than against wall clocks from older trajectory
    entries recorded on different hardware.
    """
    import repro.baselines.gcd as gcd_mod
    import repro.pipeline.compressor as pipe_mod
    from repro.nn import fastpath
    saved = (pipe_mod.MAX_BATCH_WINDOWS, gcd_mod.GCD_NOISE_BYTES_MAX)
    pipe_mod.MAX_BATCH_WINDOWS = 1
    gcd_mod.GCD_NOISE_BYTES_MAX = 0
    try:
        with fastpath.disabled():
            yield
    finally:
        pipe_mod.MAX_BATCH_WINDOWS, gcd_mod.GCD_NOISE_BYTES_MAX = saved


def _nn_fastpath_block(frames: np.ndarray) -> dict:
    """Fast-vs-legacy timings per learned codec + hot-op profile.

    Returns the ``record["nn"]`` block: min-of-reps compress+decompress
    wall clock on the fast path and under :func:`_legacy_emulation`,
    the resulting speedups, and the top profiled ops of a flagship
    decompress (the table the fast-path work optimizes against).
    """
    from repro.nn import profile as nn_profile

    codecs = {}
    for name in NN_CODECS:
        codec = get_codec(name)
        bound = _bound_for(codec, frames)
        res = codec.compress(frames, bound, seed=0)  # untimed warmup
        codec.decompress(res.payload)
        fast = legacy = float("inf")
        for _ in range(NN_REPS):
            t0 = time.perf_counter()
            codec.compress(frames, bound, seed=0)
            codec.decompress(res.payload)
            fast = min(fast, time.perf_counter() - t0)
        with _legacy_emulation():
            codec.compress(frames, bound, seed=0)  # untimed warmup
            for _ in range(NN_REPS):
                t0 = time.perf_counter()
                codec.compress(frames, bound, seed=0)
                codec.decompress(res.payload)
                legacy = min(legacy, time.perf_counter() - t0)
        codecs[name] = {
            "fast_seconds": round(fast, 6),
            "legacy_seconds": round(legacy, 6),
            "speedup": round(legacy / max(fast, 1e-9), 2),
        }

    # hot-op profile of the flagship decompress — "optimize what the
    # profile actually blames", and the artifact CI uploads
    codec = get_codec("ours")
    res = codec.compress(frames, _bound_for(codec, frames), seed=0)
    with nn_profile.profile() as prof:
        codec.decompress(res.payload)
    try:
        NN_PROFILE_TXT.write_text(
            "hot ops of an `ours` decompress "
            "(e3sm-12x16x16-seed11; cumulative, parent/child overlap)\n"
            + prof.table() + "\n")
    except OSError as exc:  # read-only checkout: artifact is optional
        print(f"warning: cannot write {NN_PROFILE_TXT.name} ({exc})")
    return {
        "workload": "e3sm-12x16x16-seed11",
        "codecs": codecs,
        "profile_top": prof.top(NN_PROFILE_TOP),
    }


def _print_nn(nn_row: dict, prior: dict) -> None:
    """Render the fast-path table, diffed against the prior entry."""
    prior_codecs = prior.get("codecs", {})
    print(f"\nnn inference fast path ({nn_row['workload']}, "
          f"compress+decompress, min of {NN_REPS}):")
    print(f"{'codec':10s} {'fast s':>10s} {'legacy s':>10s} "
          f"{'speedup':>8s} {'vs prior':>9s}")
    for name, row in nn_row["codecs"].items():
        was = prior_codecs.get(name)
        if was:
            delta = (f"{row['fast_seconds'] / max(was['fast_seconds'], 1e-9):8.2f}x")
        else:
            delta = "      new"
        print(f"{name:10s} {row['fast_seconds']:10.4f} "
              f"{row['legacy_seconds']:10.4f} {row['speedup']:7.2f}x "
              f"{delta}")
    print("hot ops (cumulative seconds, parent/child rows overlap):")
    for op in nn_row["profile_top"]:
        print(f"  {op['op']:<28} x{op['calls']:<6d} {op['seconds']:.4f}s "
              f"peak {op['peak_bytes'] / (1 << 20):.2f} MiB")


def _print_entropy_table(workload: str, backends: dict,
                         prior_backends: dict) -> None:
    print(f"\nentropy backends ({workload}):")
    print(f"{'backend':12s} {'enc s':>10s} {'dec s':>10s} "
          f"{'Msym/s enc':>11s} {'Msym/s dec':>11s} {'bytes':>8s} "
          f"{'vs prior':>9s}")
    for name, row in backends.items():
        was = prior_backends.get(name)
        if was:
            # per-symbol normalization: stream lengths may differ
            # across entries (the slow-backend cap)
            now = ((row["encode_seconds"] + row["decode_seconds"])
                   / row.get("symbols", ENTROPY_SYMBOLS))
            then = ((was["encode_seconds"] + was["decode_seconds"])
                    / was.get("symbols", ENTROPY_SYMBOLS))
            delta = f"{now / max(then, 1e-12):8.2f}x"
        else:
            delta = "      new"
        print(f"{name:12s} {row['encode_seconds']:10.4f} "
              f"{row['decode_seconds']:10.4f} "
              f"{row['encode_msym_per_s']:11.2f} "
              f"{row['decode_msym_per_s']:11.2f} "
              f"{row['stream_bytes']:8d} {delta}")


def _print_entropy(entropy_row: dict, prior: dict) -> None:
    """Render the per-backend tables, diffed against the prior entry."""
    _print_entropy_table(entropy_row["workload"],
                         entropy_row["backends"],
                         prior.get("backends", {}))
    print(f"vrans end-to-end speedup vs arithmetic: "
          f"x{entropy_row['vrans_speedup_vs_arithmetic']:.1f} "
          f"(floor x{ENTROPY_MIN_SPEEDUP:.0f})")
    _print_entropy_table(entropy_row["workload_large"],
                         entropy_row["backends_large"],
                         prior.get("backends_large", {}))
    print(f"trans end-to-end speedup vs vrans (large alphabet): "
          f"x{entropy_row['trans_speedup_vs_vrans']:.1f} "
          f"(floor x{TRANS_MIN_SPEEDUP:.0f})")


# ----------------------------------------------------------------------
# seekable archives: partial decode vs full decode + bytes-read contract
# ----------------------------------------------------------------------
#: archive workload: one E3SM variable, 8 time shards, sized so a full
#: szlike decode takes a visible fraction of a second on one core
ARCHIVE_SHARDS = 8
ARCHIVE_OVERRIDES = {"t": 64, "h": 40, "w": 40, "seed": 11}
ARCHIVE_REPS = 3
#: acceptance criterion: decoding 1 of 8 shards through the footer
#: index must beat a full decode by at least this factor (serial
#: executor, so multi-core full decode cannot mask the win)
ARCHIVE_MIN_SPEEDUP = 4.0
#: acceptance criterion: the partial read must touch O(footer + one
#: member) bytes — at most this fraction of the archive
ARCHIVE_MAX_BYTES_RATIO = 0.35


def _archive_partial_decode(tmp_path) -> dict:
    """Seekable-archive trajectory: full vs 1-of-N-shard decode.

    Writes an indexed shard archive to disk, then times a full decode
    against a ``select=`` decode of a single shard, both through the
    lazy ``Archive.open(path)`` path on a serial session.  A
    :class:`~repro.pipeline.container.CountingReader` wraps the file
    handle for one partial decode to measure the exact bytes touched —
    the O(footer + selected member) I/O contract, asserted both as a
    ratio and against the per-member byte budget.
    """
    from repro.api import Archive
    from repro.pipeline.container import CountingReader

    session = Session(codec="szlike", executor="serial")
    archive = session.compress(
        "e3sm", bound=Bound.nrmse(REL_BOUND), variables=[0],
        shards=ARCHIVE_SHARDS, dataset_overrides=ARCHIVE_OVERRIDES,
        keep_reconstruction=False)
    path = tmp_path / "bench_archive.shrd"
    archive.save(path)
    size = path.stat().st_size

    lazy = Archive.open(path)
    members = lazy.index()
    target = members[len(members) // 2]  # a mid-file shard

    full = partial = float("inf")
    session.decompress(lazy)  # untimed warmup (generation-free decode)
    session.decompress(lazy, select=target.key)
    for _ in range(ARCHIVE_REPS):
        t0 = time.perf_counter()
        stack = session.decompress(lazy)
        full = min(full, time.perf_counter() - t0)
        t0 = time.perf_counter()
        window = session.decompress(lazy, select=target.key)
        partial = min(partial, time.perf_counter() - t0)
    np.testing.assert_array_equal(window, stack[target.t0:target.t1])

    # bytes-read contract: head sniff + trailer/footer + one member
    with open(path, "rb") as fh:
        counter = CountingReader(fh)
        counted = Archive.open(counter)
        session.decompress(counted, select=target.key)
        partial_bytes = counter.bytes_read
    overhead = size - max(m.offset + m.length for m in members)
    budget = 16 + overhead + target.length + 256
    assert partial_bytes <= budget, (partial_bytes, budget)
    session.close()

    t, h, w = (ARCHIVE_OVERRIDES[k] for k in ("t", "h", "w"))
    return {
        "workload": (f"e3sm-{t}x{h}x{w}-x{ARCHIVE_SHARDS}shards-"
                     f"szlike-serial"),
        "archive_bytes": size,
        "full_decode_seconds": round(full, 6),
        "partial_decode_seconds": round(partial, 6),
        "partial_speedup": round(full / max(partial, 1e-9), 2),
        "partial_bytes_read": partial_bytes,
        "bytes_read_ratio": round(partial_bytes / size, 4),
    }


def _print_archive(row: dict, prior: dict) -> None:
    """Render the partial-decode row, diffed against the prior entry."""
    print(f"\nseekable archive ({row['workload']}, min of "
          f"{ARCHIVE_REPS}):")
    if prior.get("partial_decode_seconds"):
        delta = (f"  (vs prior "
                 f"{row['partial_decode_seconds'] / max(prior['partial_decode_seconds'], 1e-9):.2f}x)")
    else:
        delta = "  (new)"
    print(f"  full decode    {row['full_decode_seconds']:8.4f}s over "
          f"{row['archive_bytes']} bytes")
    print(f"  1-of-{ARCHIVE_SHARDS} decode  "
          f"{row['partial_decode_seconds']:8.4f}s over "
          f"{row['partial_bytes_read']} bytes{delta}")
    print(f"  speedup x{row['partial_speedup']:.1f} "
          f"(floor x{ARCHIVE_MIN_SPEEDUP:.0f}), bytes-read ratio "
          f"{row['bytes_read_ratio']:.3f} "
          f"(ceiling {ARCHIVE_MAX_BYTES_RATIO:.2f})")


def _bound_for(codec, frames):
    if codec.capabilities.bound_kind == "l2":
        return None  # unbounded: untrained codecs have no corrector
    rng_ = float(frames.max() - frames.min())
    return REL_BOUND * rng_


def test_codec_registry_smoke(benchmark, tmp_path):
    frames = _workload()
    rows = {}
    for name in list_codecs():
        codec = get_codec(name)
        bound = _bound_for(codec, frames)
        t0 = time.perf_counter()
        res = codec.compress(frames, bound, seed=0)
        t_enc = time.perf_counter() - t0
        t0 = time.perf_counter()
        rec = codec.decompress(res.payload)
        t_dec = time.perf_counter() - t0
        assert rec.shape == frames.shape
        np.testing.assert_allclose(rec, res.reconstruction, atol=1e-9)
        rows[name] = {
            "compress_seconds": round(t_enc, 6),
            "decompress_seconds": round(t_dec, 6),
            "payload_bytes": len(res.payload),
            "ratio": round(float(res.ratio), 3),
            "bound_kind": codec.capabilities.bound_kind,
        }

    # executor comparison: one plan, three backends, identical streams
    plan = plan_shards("e3sm", variables=[0], shards=EXEC_SHARDS,
                       t=48, h=48, w=48, seed=11)
    executors = {"serial": SerialExecutor(),
                 "thread": ThreadExecutor(EXEC_WORKERS),
                 "process": ProcessExecutor(EXEC_WORKERS)}
    exec_rows = {}
    try:
        for codec_name in EXEC_CODECS:
            per_codec = {}
            payloads = {}
            for exec_name, ex in executors.items():
                engine = CodecEngine(codec_name, executor=ex)
                # untimed warmup over the full plan: forks the pool at
                # full width and fills every worker's generation cache
                engine.compress_plan(plan, nrmse_bound=REL_BOUND,
                                     keep_reconstruction=False)
                walls = []
                for _ in range(EXEC_REPS):
                    batch = engine.compress_plan(
                        plan, nrmse_bound=REL_BOUND,
                        keep_reconstruction=False)
                    walls.append(batch.wall_seconds)
                per_codec[exec_name] = round(min(walls), 6)
                payloads[exec_name] = [r.payload for r in batch.results]
            # backends must be interchangeable, not just comparable
            assert payloads["thread"] == payloads["serial"]
            assert payloads["process"] == payloads["serial"]
            exec_rows[codec_name] = per_codec
    finally:
        for ex in executors.values():
            ex.close()

    totals = {name: round(sum(r[name] for r in exec_rows.values()), 6)
              for name in executors}
    engine_row = {
        "workload": f"e3sm-48x48x48-seed11-x{EXEC_SHARDS}shards",
        "workers": EXEC_WORKERS,
        "per_codec_wall_seconds": exec_rows,
        "total_wall_seconds": totals,
    }

    # facade overhead: Session.compress over the same grid vs driving
    # the engine directly (plan -> compress_plan -> shard archive);
    # the facade adds only dispatch + codec-cache lookups, so the two
    # must stay within noise of each other
    facade_row = _facade_overhead()

    # entropy backends: per-backend symbol-coding throughput, diffed
    # against the previous trajectory entry
    prior_entropy = _prior_entropy_record()
    entropy_row = _entropy_throughput()

    # nn inference fast path: fused no-grad kernels + batched windows
    # vs an in-run legacy emulation, plus the hot-op profile artifact
    prior_nn = _prior_record("nn")
    nn_row = _nn_fastpath_block(frames)

    # seekable archives: 1-of-N-shard partial decode through the
    # footer index vs a full decode, plus the bytes-read contract
    prior_archive = _prior_record("archive")
    archive_row = _archive_partial_decode(tmp_path)

    print(f"\n{'codec':10s} {'enc s':>10s} {'dec s':>10s} "
          f"{'bytes':>8s} {'ratio':>8s}")
    for name, r in rows.items():
        print(f"{name:10s} {r['compress_seconds']:10.4f} "
              f"{r['decompress_seconds']:10.4f} "
              f"{r['payload_bytes']:8d} {r['ratio']:8.2f}")
    print(f"\n{'executor':10s} " + " ".join(f"{c:>10s}"
                                            for c in EXEC_CODECS)
          + f" {'total':>10s}")
    for exec_name in executors:
        cells = " ".join(f"{exec_rows[c][exec_name]:10.4f}"
                         for c in EXEC_CODECS)
        print(f"{exec_name:10s} {cells} {totals[exec_name]:10.4f}")

    print(f"\nfacade overhead ({facade_row['workload']}): "
          f"engine {facade_row['engine_seconds']:.4f}s, "
          f"session {facade_row['session_seconds']:.4f}s "
          f"(x{facade_row['overhead_ratio']:.3f})")
    # acceptance: the facade must sit within noise of the direct drive
    assert (facade_row["session_seconds"]
            <= facade_row["engine_seconds"] * 1.5 + 0.05), facade_row

    _print_entropy(entropy_row, prior_entropy)
    # acceptance: the vectorized backend must make symbol coding at
    # least 5x faster than the per-symbol arithmetic loop
    assert (entropy_row["vrans_speedup_vs_arithmetic"]
            >= ENTROPY_MIN_SPEEDUP), entropy_row
    # acceptance: the table-cached LUT backend must beat vrans at
    # least 2x end to end on the search-heavy large-alphabet stream
    assert (entropy_row["trans_speedup_vs_vrans"]
            >= TRANS_MIN_SPEEDUP), entropy_row

    _print_nn(nn_row, prior_nn)
    # acceptance: the flagship pipeline must beat the legacy path 3x;
    # the GEMM-bound baselines must at least never regress below it
    assert (nn_row["codecs"]["ours"]["speedup"]
            >= NN_MIN_SPEEDUP_OURS), nn_row
    for name, row in nn_row["codecs"].items():
        assert row["speedup"] >= 1.0, (name, row)

    _print_archive(archive_row, prior_archive)
    # acceptance: the footer index must make a 1-of-8-shard read at
    # least 4x faster than a full decode, touching O(footer + member)
    # bytes rather than the whole file
    assert (archive_row["partial_speedup"]
            >= ARCHIVE_MIN_SPEEDUP), archive_row
    assert (archive_row["bytes_read_ratio"]
            <= ARCHIVE_MAX_BYTES_RATIO), archive_row

    record = {"workload": "e3sm-12x16x16-seed11",
              "rel_bound": REL_BOUND,
              "codecs": rows, "executors": engine_row,
              "facade": facade_row, "entropy": entropy_row,
              "nn": nn_row, "archive": archive_row}
    save_json("codec_registry_smoke", record)

    # append to the trajectory file so PRs can diff perf over time
    # (best-effort: corrupt or unwritable files are logged and skipped)
    _append_trajectory(record)

    assert set(rows) == set(list_codecs())

    # benchmark fixture: the registry's hot rule-based path
    codec = get_codec("szlike")
    eb = REL_BOUND * float(frames.max() - frames.min())
    benchmark(lambda: codec.compress(frames, eb))
