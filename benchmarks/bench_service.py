"""Service overhead benchmark: served vs in-process, cold vs warm.

Stands a real :class:`CompressionService` behind a real HTTP socket,
runs one compress workload three ways —

* **in-process** — ``Session.compress`` called directly (the floor);
* **served cold** — submit over HTTP, poll to completion, fetch the
  result bytes (adds queue + worker handoff + JSON + socket I/O);
* **served warm** — resubmit the identical request; the job is born
  ``done`` from the content-addressed cache and the round trip is
  admission + one file read.

Asserts the two service-tentpole acceptance criteria: the served
archive is **byte-identical** to the in-process one, and the warm
round trip beats the cold one by at least ``WARM_SPEEDUP_FLOOR`` (a
deliberately conservative 5x — measured warm hits are typically two
to three orders of magnitude faster than a cold szlike encode).

Appends a ``service`` record to the ``BENCH_codecs.json`` trajectory
so future PRs that touch the queue, the cache or the HTTP layer have
an overhead baseline to diff against.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.request

from repro.api import Bound, Session
from repro.data import get_dataset_spec
from repro.service import CompressionService, make_server

from .bench_codec_registry import _append_trajectory, _prior_record
from .conftest import save_json

#: workload: one multi-shard E3SM-like compress, heavy enough that a
#: cold szlike encode dwarfs the HTTP round trip
SVC_T, SVC_H, SVC_W = 12, 32, 32
SVC_SHARDS = 4
SVC_SEED = 11
REL_BOUND = 1e-2

#: acceptance criterion: warm (cache-hit) round trip vs cold served
WARM_SPEEDUP_FLOOR = 5.0

REQUEST = {"type": "compress", "dataset": "e3sm",
           "shape": {"t": SVC_T, "h": SVC_H, "w": SVC_W},
           "codec": "szlike", "bound": f"nrmse:{REL_BOUND}",
           "shards": SVC_SHARDS, "seed": SVC_SEED}


def _post_job(base: str, body: dict) -> dict:
    req = urllib.request.Request(
        base + "/v1/jobs", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.load(resp)


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return json.load(resp)


def _get_bytes(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read()


def _served_roundtrip(base: str) -> "tuple[float, bytes, bool]":
    """One full submit -> terminal -> fetch cycle over the socket."""
    t0 = time.perf_counter()
    job = _post_job(base, REQUEST)
    while job["state"] not in ("done", "failed", "cancelled"):
        job = _get_json(base, f"/v1/jobs/{job['id']}")
    assert job["state"] == "done", job
    data = _get_bytes(base, f"/v1/jobs/{job['id']}/result")
    return time.perf_counter() - t0, data, job["cache_hit"]


def test_service_overhead_and_warm_cache(tmp_path):
    # --- in-process floor -------------------------------------------
    spec = get_dataset_spec("e3sm", t=SVC_T, h=SVC_H, w=SVC_W)
    with Session(seed=SVC_SEED) as session:
        t0 = time.perf_counter()
        archive = session.compress(
            spec, codec="szlike", bound=Bound.nrmse(REL_BOUND),
            shards=SVC_SHARDS, seed=SVC_SEED)
        in_process_wall = time.perf_counter() - t0
        in_process_bytes = archive.to_bytes()

    # --- the service, behind a real socket --------------------------
    service = CompressionService(tmp_path / "cache", workers=2,
                                 max_queue=16)
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.02},
                              daemon=True)
    thread.start()
    base = "http://{}:{}".format(*httpd.server_address[:2])
    try:
        cold_wall, served_bytes, was_hit = _served_roundtrip(base)
        assert not was_hit
        assert served_bytes == in_process_bytes, \
            "served archive must be byte-identical to in-process"

        warm_walls = []
        for _ in range(5):
            wall, warm_bytes, was_hit = _served_roundtrip(base)
            assert was_hit and warm_bytes == in_process_bytes
            warm_walls.append(wall)
        warm_wall = statistics.median(warm_walls)

        metrics = _get_bytes(base, "/metrics").decode()
        health = _get_json(base, "/health")
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()

    warm_speedup = cold_wall / max(warm_wall, 1e-9)
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm cache round trip only {warm_speedup:.1f}x faster than "
        f"cold serve (floor {WARM_SPEEDUP_FLOOR}x; cold "
        f"{cold_wall:.4f}s, warm {warm_wall:.4f}s)")
    assert health["status"] == "ok"
    assert "repro_cache_hits_total 5" in metrics

    serve_overhead = cold_wall - in_process_wall
    row = {
        "workload": (f"e3sm-{SVC_T}x{SVC_H}x{SVC_W}-szlike-"
                     f"x{SVC_SHARDS}shards-http"),
        "in_process_seconds": round(in_process_wall, 6),
        "served_cold_seconds": round(cold_wall, 6),
        "served_warm_seconds": round(warm_wall, 6),
        "serve_overhead_seconds": round(serve_overhead, 6),
        "warm_speedup": round(warm_speedup, 2),
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "archive_bytes": len(in_process_bytes),
        "byte_identical": True,
    }
    prior = _prior_record("service")
    print(f"\nservice overhead ({row['workload']}):")
    print(f"  in-process {in_process_wall:.3f}s, served cold "
          f"{cold_wall:.3f}s (overhead {serve_overhead:+.3f}s), "
          f"served warm {warm_wall * 1e3:.1f}ms")
    print(f"  warm speedup x{warm_speedup:.0f} "
          f"(floor x{WARM_SPEEDUP_FLOOR:.0f})")
    if prior.get("served_cold_seconds"):
        print(f"  vs prior: cold "
              f"{cold_wall / max(prior['served_cold_seconds'], 1e-9):.2f}x, "
              f"warm "
              f"{warm_wall / max(prior['served_warm_seconds'], 1e-9):.2f}x")

    save_json("service_overhead", row)
    _append_trajectory({"service": row})
