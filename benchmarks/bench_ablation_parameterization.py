"""Ablations: prediction parameterization, DPM-Solver, GDN nonlinearity.

Three design choices the paper fixes without ablation, measured inside
our pipeline (DESIGN.md §5):

* **ε vs x0 vs v prediction** for the latent denoiser.  The paper's
  latent model predicts ε (Eq. 7) while its CDC baseline is run in
  both ε- and X-form; here all three targets train on identical
  latents.  Storage is untouched by the choice — only reconstruction
  error moves — which the bench asserts (equal ratios).
* **DPM-Solver++(2M) vs DDIM vs ancestral** at an equal step budget
  on the same trained ε-model.
* **GDN vs SiLU** in the VAE at an equal rate weight λ.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import LatentDiffusionCompressor, TrainingConfig
from repro.compression import RDLoss, VAEHyperprior
from repro.config import VAEConfig, tiny
from repro.diffusion import ParameterizedDDPM, keyframe_spec
from repro.nn import Tensor
from repro.nn.optim import Adam, clip_grad_norm

from .conftest import TRAIN_CFG, dataset_frames, save_json, split, train_ours


@pytest.fixture(scope="module")
def e3sm_trained():
    frames = dataset_frames("e3sm")
    trainer, comp = train_ours(frames, seed=0)
    return frames, trainer, comp


# ----------------------------------------------------------------------
# Ablation A: prediction parameterization of the latent denoiser
# ----------------------------------------------------------------------
def test_ablation_parameterization(e3sm_trained, benchmark):
    frames, trainer, _ = e3sm_trained
    train, _ = split(frames)
    cfg = tiny()
    spec = keyframe_spec(cfg.pipeline.window,
                         cfg.pipeline.keyframe_strategy,
                         interval=cfg.pipeline.keyframe_interval)
    latents = trainer._latent_windows(train)

    results = {}
    for param in ("eps", "x0", "v"):
        rng = np.random.default_rng(17)
        model = ParameterizedDDPM(cfg.diffusion, parameterization=param,
                                  rng=rng)
        opt = Adam(model.parameters(), lr=TRAIN_CFG.diffusion_lr)
        model.train()
        for _ in range(400):
            idx = rng.integers(0, latents.shape[0], size=4)
            loss = model.training_loss(latents[idx], spec, rng)
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), TRAIN_CFG.grad_clip)
            opt.step()
        model.eval()
        comp = LatentDiffusionCompressor(trainer.vae, model,
                                         cfg.pipeline)
        res = comp.compress(frames)
        results[param] = {"nrmse": float(res.achieved_nrmse),
                          "ratio": float(res.ratio)}

    print(f"\nAblation (parameterization): {results}")
    save_json("ablation_parameterization", results)
    # the choice moves reconstruction error, never stored bytes
    ratios = [r["ratio"] for r in results.values()]
    assert max(ratios) - min(ratios) < 1e-9
    assert all(np.isfinite(r["nrmse"]) and r["nrmse"] < 0.5
               for r in results.values())

    # benchmark one training step of the eps model
    rng = np.random.default_rng(5)
    model_eps = ParameterizedDDPM(cfg.diffusion, parameterization="eps",
                                  rng=rng)

    def one_step():
        loss = model_eps.training_loss(latents[:4], spec, rng)
        loss.backward()

    benchmark.pedantic(one_step, rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Ablation B: DPM-Solver++(2M) vs DDIM vs ancestral at equal steps
# ----------------------------------------------------------------------
def test_ablation_dpm_solver(e3sm_trained, benchmark):
    frames, _, comp = e3sm_trained
    steps = 4
    results = {}
    for sampler in ("ancestral", "ddim", "dpm"):
        cfg = replace(comp.config, sampler=sampler, sample_steps=steps)
        c = LatentDiffusionCompressor(comp.vae, comp.ddpm, cfg,
                                      corrector=comp.corrector)
        res = c.compress(frames)
        results[sampler] = {"nrmse": float(res.achieved_nrmse),
                            "ratio": float(res.ratio)}
    print(f"\nAblation (solver @ {steps} steps): {results}")
    save_json("ablation_dpm_solver", results)
    # the higher-order solver must stay in the same quality band as
    # DDIM at equal budget (it strictly generalizes it)
    assert results["dpm"]["nrmse"] <= results["ddim"]["nrmse"] * 2.0
    assert all(np.isfinite(r["nrmse"]) for r in results.values())

    cfg = replace(comp.config, sampler="dpm", sample_steps=steps)
    c = LatentDiffusionCompressor(comp.vae, comp.ddpm, cfg,
                                  corrector=comp.corrector)
    benchmark.pedantic(lambda: c.compress(frames), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Ablation C: GDN vs SiLU in the VAE at equal lambda
# ----------------------------------------------------------------------
def test_ablation_gdn(benchmark):
    frames = dataset_frames("e3sm")
    train, _ = split(frames)
    from repro.pipeline.training import _normalize_window
    stack = np.concatenate([_normalize_window(w) for w in train], axis=0)

    results = {}
    for act in ("silu", "gdn"):
        cfg = VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                        hyper_filters=4, kernel_size=3, activation=act)
        rng = np.random.default_rng(23)
        vae = VAEHyperprior(cfg, rng=rng)
        opt = Adam(vae.parameters(), lr=1e-3)
        loss_fn = RDLoss(lam=TRAIN_CFG.lam)
        vae.train()
        for _ in range(300):
            idx = rng.integers(0, stack.shape[0], size=4)
            batch = Tensor(stack[idx][:, None])
            opt.zero_grad()
            out = vae(batch, rng=rng)
            res = loss_fn(batch, out)
            res.loss.backward()
            clip_grad_norm(vae.parameters(), 1.0)
            opt.step()
        vae.eval()
        out = vae(Tensor(stack[:8][:, None]))
        mse = float(((out.x_hat.numpy() - stack[:8][:, None]) ** 2).mean())
        bits = float(out.total_bits.item()) / 8
        results[act] = {"eval_mse": mse, "eval_bytes": bits}

    print(f"\nAblation (VAE nonlinearity): {results}")
    save_json("ablation_gdn", results)
    var = float(stack[:8].var())
    for act, r in results.items():
        assert r["eval_mse"] < var, f"{act} failed to learn"
        assert np.isfinite(r["eval_bytes"])

    cfg = VAEConfig(latent_channels=4, base_filters=8, num_down=2,
                    hyper_filters=4, kernel_size=3, activation="gdn")
    vae = VAEHyperprior(cfg, rng=np.random.default_rng(0))
    x = Tensor(stack[:4][:, None])
    benchmark.pedantic(lambda: vae(x), rounds=3, iterations=1)
