"""Fig. 6 — visual comparison of reconstructions at matched ratio.

The paper renders one frame reconstructed by ours / VAE-SR / CDC /
SZ3 / ZFP at compression ratio ~100 with a zoomed detail region.  This
bench reproduces the artifact: it compresses the same stack with every
method at a matched ratio, saves the reconstruction arrays to
``benchmarks/out/fig6_*.npy``, prints an ASCII rendering of the frame
and the zoom region, and reports per-method NRMSE at that ratio.
"""

import numpy as np
import pytest

from repro import nrmse

from .conftest import dataset_frames, save_json, OUT_DIR

ZOOM = (slice(4, 12), slice(4, 12))  # the "red rectangle"


def _ascii(frame: np.ndarray, width: int = 32) -> str:
    ramp = " .:-=+*#%@"
    f = frame[:: max(1, frame.shape[0] // 16), :: max(1, frame.shape[1]
                                                      // width)]
    lo, hi = f.min(), f.max()
    scale = (f - lo) / max(hi - lo, 1e-12)
    return "\n".join(
        "".join(ramp[int(v * (len(ramp) - 1))] for v in row)
        for row in scale)


def _match_ratio_rule(model, frames, target_ratio):
    """Binary-search the pointwise bound hitting ~target ratio."""
    lo_eb, hi_eb = 1e-6 * np.ptp(frames), 0.5 * np.ptp(frames)
    data = None
    for _ in range(18):
        eb = np.sqrt(lo_eb * hi_eb)
        data = model.compress(frames, eb)
        ratio = frames.size * 4 / len(data)
        if ratio > target_ratio:
            hi_eb = eb
        else:
            lo_eb = eb
    return model.decompress(data), frames.size * 4 / len(data)


def test_fig6_visual_comparison(frames_by_dataset, ours_by_dataset,
                                vaesr_by_dataset, cdc_pair_e3sm,
                                rule_based, benchmark):
    frames = frames_by_dataset["e3sm"]
    ours = ours_by_dataset["e3sm"]

    res = ours.compress(frames)
    target_ratio = res.ratio
    recons = {"Ours": (res.reconstruction, res.ratio)}

    vr = vaesr_by_dataset["e3sm"].compress(frames)
    recons["VAE-SR"] = (vr.reconstruction, vr.ratio)
    cd = cdc_pair_e3sm["eps"].compress(frames)
    recons["CDC"] = (cd.reconstruction, cd.ratio)
    for name, model in rule_based.items():
        recon, ratio = _match_ratio_rule(model, frames, target_ratio)
        recons[name] = (recon, ratio)

    OUT_DIR.mkdir(exist_ok=True)
    frame_idx = 1  # a generated (non-keyframe) frame
    np.save(OUT_DIR / "fig6_original.npy", frames)
    report = {}
    print(f"\nFig. 6: reconstructions near ratio {target_ratio:.0f}x "
          f"(frame {frame_idx}, zoom {ZOOM})")
    print("original:")
    print(_ascii(frames[frame_idx]))
    for name, (recon, ratio) in recons.items():
        np.save(OUT_DIR / f"fig6_{name.replace('-', '_')}.npy", recon)
        err = nrmse(frames, recon)
        zerr = nrmse(frames[(frame_idx, *ZOOM)], recon[(frame_idx, *ZOOM)])
        report[name] = {"ratio": float(ratio), "nrmse": float(err),
                        "zoom_nrmse": float(zerr)}
        print(f"\n{name} (ratio {ratio:.0f}x, NRMSE {err:.4f}, "
              f"zoom NRMSE {zerr:.4f}):")
        print(_ascii(recon[frame_idx]))
    save_json("fig6_visual", report)

    # every method produced a finite full-shape reconstruction
    for name, (recon, _) in recons.items():
        assert recon.shape == frames.shape, name
        assert np.all(np.isfinite(recon)), name

    benchmark.pedantic(lambda: ours.compress(frames), rounds=1,
                       iterations=1)
