"""Out-of-core ingestion smoke: bounded peak RSS + random access.

Compresses a multi-chunk on-disk ``.npy`` stack through the chunked
``Session.compress`` path and asserts a **hard peak-RSS ceiling** far
below the dataset size — the bounded-memory contract of the
out-of-core pipeline, measured with ``resource.ru_maxrss`` (a process
high-watermark, so the test data is written with plain buffered file
writes, never materializing the stack or mapping it resident).

It then reads one time window back through the footer index
(``select=``) with a byte-counting reader, asserting the partial read
touches O(footer + selected members) bytes, and appends an ``ooc``
record to the ``BENCH_codecs.json`` trajectory.

The workload (256x128x128 float64, ~33.5 MB) is sized for the
non-blocking CI smoke job: big enough that a slurping implementation
would blow the ceiling by several multiples, small enough to finish in
well under a minute of szlike encode.
"""

from __future__ import annotations

import pathlib
import resource
import sys
import time

import numpy as np

from repro.api import Archive, Bound, Session
from repro.pipeline.container import CountingReader
from repro.pipeline.sources import NpyStackSource

from .bench_codec_registry import _append_trajectory, _prior_record
from .conftest import save_json

REL_BOUND = 1e-2

#: workload geometry: 32 shards of 8 frames, streamed one shard at a
#: time (chunk working set ~1 MB vs a ~33.5 MB dataset; the codec's
#: per-shard transients scale with the chunk, so small shards keep the
#: measured high-watermark close to the true streaming floor)
OOC_T, OOC_H, OOC_W = 256, 128, 128
OOC_SHARDS = 32
OOC_CHUNK_SHARDS = 1
OOC_GEN_BLOCK = 32  # frames per buffered write while generating data

#: acceptance criterion: the compress-side RSS high-watermark may grow
#: by at most this much over the pre-compress baseline — a fraction of
#: the dataset, so any whole-stack slurp (or resident mmap) fails hard
OOC_RSS_CEILING_BYTES = 12 << 20
#: acceptance criterion: reading one window back must touch at most
#: this fraction of the archive
OOC_MAX_BYTES_RATIO = 0.35


def _rss_bytes() -> int:
    """Process peak RSS in bytes (``ru_maxrss`` is KB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def _write_stack(path: pathlib.Path) -> int:
    """Stream a synthetic (T, H, W) stack to ``path`` in small blocks.

    Plain buffered writes on purpose: ``np.lib.format.open_memmap``
    would map the array and count its resident pages toward the very
    high-watermark this bench asserts on.
    """
    header = {"descr": "<f8", "fortran_order": False,
              "shape": (OOC_T, OOC_H, OOC_W)}
    y = np.linspace(0.0, np.pi, OOC_H)[:, None]
    x = np.linspace(0.0, np.pi, OOC_W)[None, :]
    rng = np.random.default_rng(11)
    with open(path, "wb") as fh:
        np.lib.format.write_array_header_1_0(fh, header)
        for t0 in range(0, OOC_T, OOC_GEN_BLOCK):
            ts = np.arange(t0, min(t0 + OOC_GEN_BLOCK, OOC_T))
            block = (np.sin(0.05 * ts)[:, None, None]
                     * np.sin(y) * np.cos(x)
                     + 0.05 * rng.standard_normal(
                         (ts.size, OOC_H, OOC_W)))
            fh.write(np.ascontiguousarray(block).tobytes())
    return path.stat().st_size


def test_out_of_core_smoke(tmp_path):
    npy_path = tmp_path / "ooc_stack.npy"
    dataset_bytes = _write_stack(npy_path)
    assert OOC_RSS_CEILING_BYTES < dataset_bytes / 2, \
        "ceiling must stay meaningfully below the dataset size"

    session = Session(codec="szlike", executor="serial")

    # --- bounded-memory compress -----------------------------------
    baseline = _rss_bytes()
    t0 = time.perf_counter()
    archive = session.compress(
        str(npy_path), bound=Bound.nrmse(REL_BOUND), shards=OOC_SHARDS,
        chunk_shards=OOC_CHUNK_SHARDS, keep_reconstruction=False)
    compress_wall = time.perf_counter() - t0
    rss_delta = max(0, _rss_bytes() - baseline)
    assert rss_delta <= OOC_RSS_CEILING_BYTES, (
        f"chunked compress grew peak RSS by {rss_delta} bytes "
        f"(ceiling {OOC_RSS_CEILING_BYTES}, dataset {dataset_bytes})")

    arc_path = tmp_path / "ooc_stack.shrd"
    archive.save(arc_path)
    arc_bytes = arc_path.stat().st_size

    # --- random access back through the footer index ---------------
    members = Archive.open(arc_path).index()
    assert len(members) == OOC_SHARDS
    target = members[len(members) // 2]
    with open(arc_path, "rb") as fh:
        counter = CountingReader(fh)
        t0 = time.perf_counter()
        window = session.decompress(Archive.open(counter),
                                    select=slice(target.t0, target.t1))
        partial_wall = time.perf_counter() - t0
        partial_bytes = counter.bytes_read
    bytes_ratio = partial_bytes / arc_bytes
    assert bytes_ratio <= OOC_MAX_BYTES_RATIO, (partial_bytes, arc_bytes)

    # the window must reconstruct the on-disk source within the bound
    src = NpyStackSource(npy_path).read(target.t0, target.t1)
    assert window.shape == src.shape
    rng_ = float(src.max() - src.min())
    nrmse = float(np.sqrt(np.mean((window - src) ** 2))) / rng_
    assert nrmse <= REL_BOUND * 1.01, nrmse
    session.close()

    row = {
        "workload": (f"npy-{OOC_T}x{OOC_H}x{OOC_W}-f8-"
                     f"x{OOC_SHARDS}shards-chunk{OOC_CHUNK_SHARDS}-"
                     f"szlike-serial"),
        "dataset_bytes": dataset_bytes,
        "archive_bytes": arc_bytes,
        "compress_seconds": round(compress_wall, 6),
        "rss_delta_bytes": int(rss_delta),
        "rss_ceiling_bytes": OOC_RSS_CEILING_BYTES,
        "partial_read_seconds": round(partial_wall, 6),
        "partial_bytes_read": int(partial_bytes),
        "bytes_read_ratio": round(bytes_ratio, 4),
        "window_nrmse": round(nrmse, 6),
    }
    prior = _prior_record("ooc")
    print(f"\nout-of-core smoke ({row['workload']}):")
    print(f"  dataset {dataset_bytes} B -> archive {arc_bytes} B in "
          f"{compress_wall:.2f}s")
    print(f"  peak-RSS delta {rss_delta} B "
          f"(ceiling {OOC_RSS_CEILING_BYTES} B, "
          f"dataset/ceiling x{dataset_bytes / OOC_RSS_CEILING_BYTES:.1f})")
    print(f"  window [{target.t0},{target.t1}) read in "
          f"{partial_wall:.3f}s over {partial_bytes} B "
          f"(ratio {bytes_ratio:.3f}), nrmse {nrmse:.5f}")
    if prior.get("compress_seconds"):
        print(f"  vs prior compress "
              f"{compress_wall / max(prior['compress_seconds'], 1e-9):.2f}x, "
              f"rss delta was {prior.get('rss_delta_bytes')} B")

    save_json("out_of_core_smoke", row)
    _append_trajectory({"ooc": row})
