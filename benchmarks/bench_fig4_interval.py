"""Fig. 4 — interpolation-interval ablation on E3SM (Sec. 4.5).

Trains identical models with keyframe intervals 2-5 and reports the
per-frame NRMSE profile (left panel) and the NRMSE-vs-ratio points
(right panel).  Asserts the paper's findings: smaller intervals give
lower reconstruction error, larger intervals give higher unbounded
compression ratio, and keyframe positions beat generated positions.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import tiny
from repro.pipeline.compressor import window_starts

from .conftest import WINDOW, dataset_frames, save_json, train_ours

INTERVALS = (2, 3, 5)


@pytest.fixture(scope="module")
def interval_models():
    frames = dataset_frames("e3sm")
    cfg = tiny()
    models = {}
    for interval in INTERVALS:
        cfg_i = replace(cfg, pipeline=replace(
            cfg.pipeline, keyframe_interval=interval))
        _, comp = train_ours(frames, seed=0, config=cfg_i)
        models[interval] = comp
    return frames, models


def test_fig4_interval_ablation(interval_models, benchmark):
    frames, models = interval_models
    rng_ = float(frames.max() - frames.min())
    start = window_starts(frames.shape[0], WINDOW)[0]

    results = {}
    for interval, comp in models.items():
        res = comp.compress(frames)
        per_frame = [
            float(np.sqrt(((frames[start + i]
                            - res.reconstruction[start + i]) ** 2).mean()))
            / rng_ for i in range(WINDOW)]
        results[interval] = {
            "per_frame_nrmse": per_frame,
            "mean_nrmse": float(res.achieved_nrmse),
            "ratio": float(res.ratio),
            "cond_idx": comp.spec().cond_idx.tolist(),
        }

    print("\nFig. 4: interval ablation on E3SM")
    print(f"{'interval':>9} | {'#key':>4} | {'NRMSE':>8} | {'ratio':>7}")
    for interval in INTERVALS:
        r = results[interval]
        print(f"{interval:>9} | {len(r['cond_idx']):>4} | "
              f"{r['mean_nrmse']:8.4f} | {r['ratio']:7.1f}")
    save_json("fig4_interval", {str(k): v for k, v in results.items()})

    # smaller interval => more keyframes => lower error
    errs = [results[i]["mean_nrmse"] for i in INTERVALS]
    assert errs[0] == min(errs), results

    # larger interval => fewer keyframes => higher unbounded ratio
    ratios = [results[i]["ratio"] for i in INTERVALS]
    assert ratios[-1] == max(ratios), results

    # keyframe positions beat generated positions
    for i in INTERVALS:
        r = results[i]
        key = [r["per_frame_nrmse"][j] for j in range(WINDOW)
               if j in r["cond_idx"]]
        gen = [r["per_frame_nrmse"][j] for j in range(WINDOW)
               if j not in r["cond_idx"]]
        if gen:
            assert np.mean(key) <= np.mean(gen), i

    benchmark.pedantic(lambda: models[3].compress(frames), rounds=1,
                       iterations=1)
