"""Extended rule-based comparison (beyond the paper's SZ3/ZFP rows).

The paper's related work (Sec. 2) surveys six rule-based families —
SZ (prediction), ZFP (block transform), TTHRESH (HOSVD), MGARD
(multilevel), DPCM (temporal prediction) and FAZ (modular
wavelet+prediction).  Fig. 3 plots only SZ3 and ZFP; this bench runs
our analogue of *every* surveyed family over the same three datasets
and error-bound sweep, printing one rate-distortion table per dataset
(series saved to ``out/rulebased_extended.json``).

Assertions pin the orderings that are structural rather than tuned:

* every method honours its error-bound contract and round-trips;
* every method compresses (ratio > 1) at the loosest bound;
* closed-loop prediction (SZ3-like) beats the open-loop hierarchical
  coder (MGARD-like) at every operating point — the known cost MGARD
  pays for progressive recovery;
* time-only DPCM loses to spatial interpolation on JHTDB, where
  turbulence decorrelates in time (on the smoothly advecting E3SM/S3D
  synthetics, order-2 temporal extrapolation is legitimately strong);
* FAZ-like is never worse than its own wavelet module (auto-tuning
  can only pick the better candidate) and tracks the predictor family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (DPCMCompressor, FAZLikeCompressor,
                             MGARDLikeCompressor, SZLikeCompressor,
                             TTHRESHLikeCompressor, ZFPLikeCompressor)
from repro.metrics import nrmse

from .conftest import dataset_frames, save_json

#: relative pointwise bounds (fraction of the data range)
REL_BOUNDS = (1e-1, 1e-2, 1e-3)

DATASETS = ("e3sm", "s3d", "jhtdb")


def _methods():
    return {
        "SZ3-like": SZLikeCompressor(),
        "ZFP-like": ZFPLikeCompressor(),
        "TTHRESH-like": TTHRESHLikeCompressor(),
        "MGARD-like": MGARDLikeCompressor(levels=3),
        "DPCM": DPCMCompressor(order=2),
        "FAZ-like": FAZLikeCompressor(levels=3),
    }


def _run_method(name, method, frames, rel_bound):
    """Returns (ratio, nrmse, bound_honored)."""
    rng_ = float(frames.max() - frames.min())
    eb = rel_bound * rng_
    if isinstance(method, TTHRESHLikeCompressor):
        # TTHRESH's contract is RMSE; use the pointwise budget's RMSE
        # equivalent so operating points line up across methods
        stream = method.compress(frames, rmse_bound=eb / np.sqrt(3.0))
        rec = method.decompress(stream)
        honored = (np.sqrt(((frames - rec) ** 2).mean())
                   <= eb / np.sqrt(3.0) * (1 + 1e-9))
    else:
        stream = method.compress(frames, error_bound=eb)
        rec = method.decompress(stream)
        honored = np.abs(frames - rec).max() <= eb * (1 + 1e-9)
    ratio = frames.size * 4 / len(stream)
    return float(ratio), float(nrmse(frames, rec)), bool(honored)


@pytest.mark.parametrize("dataset", DATASETS)
def test_rulebased_extended(dataset, benchmark):
    frames = dataset_frames(dataset)
    rows = {}
    for name, method in _methods().items():
        rows[name] = []
        for rb in REL_BOUNDS:
            ratio, err, honored = _run_method(name, method, frames, rb)
            assert honored, f"{name} violated its bound at {rb}"
            rows[name].append({"rel_bound": rb, "ratio": ratio,
                               "nrmse": err})

    header = f"{'method':14s} " + " ".join(
        f"CR@{rb:g}" .rjust(10) for rb in REL_BOUNDS)
    print(f"\n=== Extended rule-based comparison — {dataset} ===")
    print(header)
    for name, pts in rows.items():
        print(f"{name:14s} " + " ".join(
            f"{p['ratio']:10.1f}" for p in pts))

    save_json(f"rulebased_extended_{dataset}", rows)

    # structural orderings
    for rb_i in range(len(REL_BOUNDS)):
        assert (rows["SZ3-like"][rb_i]["ratio"]
                > rows["MGARD-like"][rb_i]["ratio"])
        assert (rows["FAZ-like"][rb_i]["ratio"]
                >= 0.9 * rows["SZ3-like"][rb_i]["ratio"])
        if dataset == "jhtdb":
            assert (rows["SZ3-like"][rb_i]["ratio"]
                    > rows["DPCM"][rb_i]["ratio"])
    for name, pts in rows.items():
        assert pts[0]["ratio"] > 1.0, f"{name} failed to compress"

    # FAZ auto-tuning sanity: never worse than its own wavelet module
    faz = FAZLikeCompressor(levels=3)
    eb = REL_BOUNDS[1] * float(frames.max() - frames.min())
    combined = faz.compress(frames, error_bound=eb)
    wav = faz.wavelet.compress(frames, error_bound=eb)
    assert len(combined) <= len(wav) + 5

    sz = SZLikeCompressor()
    eb_mid = REL_BOUNDS[1] * float(frames.max() - frames.min())
    benchmark(lambda: sz.compress(frames, error_bound=eb_mid))


def test_mgard_progressive_decode(benchmark):
    """Progressive MGARD reads: error shrinks monotonically with level."""
    frames = dataset_frames("e3sm")
    comp = MGARDLikeCompressor(levels=3)
    eb = 1e-3 * float(frames.max() - frames.min())
    stream = comp.compress(frames, error_bound=eb)
    errs = []
    for lvl in (3, 2, 1, 0):
        rec = comp.decompress(stream, max_level=lvl)
        errs.append(float(np.abs(frames - rec).max()))
    print(f"\nMGARD-like progressive max-error by level (3->0): "
          f"{['%.3g' % e for e in errs]}")
    save_json("rulebased_mgard_progressive", {"levels": [3, 2, 1, 0],
                                              "max_err": errs})
    assert errs[-1] <= eb * (1 + 1e-9)
    # coarse views can fluctuate among themselves but are never better
    # than the full decode
    assert all(e >= errs[-1] for e in errs[:-1])

    benchmark(lambda: comp.decompress(stream))
