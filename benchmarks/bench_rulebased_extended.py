"""Extended rule-based comparison (beyond the paper's SZ3/ZFP rows).

The paper's related work (Sec. 2) surveys six rule-based families —
SZ (prediction), ZFP (block transform), TTHRESH (HOSVD), MGARD
(multilevel), DPCM (temporal prediction) and FAZ (modular
wavelet+prediction).  Fig. 3 plots only SZ3 and ZFP; this bench runs
our analogue of *every* surveyed family over the same three datasets
and error-bound sweep, printing one rate-distortion table per dataset
(series saved to ``out/rulebased_extended.json``).

The methods come straight from the codec registry — every registered
non-learned codec participates, under the one ``compress(frames,
bound)`` contract (the TTHRESH ``rmse`` vs pointwise divergence that
this bench used to special-case is normalized by the codec layer).

Assertions pin the orderings that are structural rather than tuned:

* every method honours its error-bound contract and round-trips;
* every method compresses (ratio > 1) at the loosest bound;
* closed-loop prediction (SZ3-like) beats the open-loop hierarchical
  coder (MGARD-like) at every operating point — the known cost MGARD
  pays for progressive recovery;
* time-only DPCM loses to spatial interpolation on JHTDB, where
  turbulence decorrelates in time (on the smoothly advecting E3SM/S3D
  synthetics, order-2 temporal extrapolation is legitimately strong);
* FAZ-like is never worse than its own wavelet module (auto-tuning
  can only pick the better candidate) and tracks the predictor family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import get_codec, list_codecs
from repro.metrics import nrmse

from .conftest import dataset_frames, save_json

#: relative pointwise bounds (fraction of the data range)
REL_BOUNDS = (1e-1, 1e-2, 1e-3)

DATASETS = ("e3sm", "s3d", "jhtdb")


def _methods():
    """Every registered rule-based codec, keyed by its display label."""
    codecs = [get_codec(name) for name in list_codecs()]
    return {c.label: c for c in codecs
            if not c.capabilities.learned}


def _run_method(codec, frames, rel_bound):
    """Returns (ratio, nrmse, bound_honored) under the codec contract."""
    rng_ = float(frames.max() - frames.min())
    eb = rel_bound * rng_
    # operating-point alignment across bound kinds: an RMSE-bounded
    # codec gets the pointwise budget's RMSE equivalent
    bound = eb if codec.capabilities.bound_kind == "pointwise" \
        else eb / np.sqrt(3.0)
    res = codec.compress(frames, bound)
    rec = codec.decompress(res.payload)
    if codec.capabilities.bound_kind == "pointwise":
        honored = np.abs(frames - rec).max() <= bound * (1 + 1e-9)
    else:
        honored = (np.sqrt(((frames - rec) ** 2).mean())
                   <= bound * (1 + 1e-9))
    assert np.array_equal(rec, res.reconstruction)
    return float(res.ratio), float(nrmse(frames, rec)), bool(honored)


@pytest.mark.parametrize("dataset", DATASETS)
def test_rulebased_extended(dataset, benchmark):
    frames = dataset_frames(dataset)
    rows = {}
    for name, codec in _methods().items():
        rows[name] = []
        for rb in REL_BOUNDS:
            ratio, err, honored = _run_method(codec, frames, rb)
            assert honored, f"{name} violated its bound at {rb}"
            rows[name].append({"rel_bound": rb, "ratio": ratio,
                               "nrmse": err})

    header = f"{'method':14s} " + " ".join(
        f"CR@{rb:g}" .rjust(10) for rb in REL_BOUNDS)
    print(f"\n=== Extended rule-based comparison — {dataset} ===")
    print(header)
    for name, pts in rows.items():
        print(f"{name:14s} " + " ".join(
            f"{p['ratio']:10.1f}" for p in pts))

    save_json(f"rulebased_extended_{dataset}", rows)

    # structural orderings
    for rb_i in range(len(REL_BOUNDS)):
        assert (rows["SZ3-like"][rb_i]["ratio"]
                > rows["MGARD-like"][rb_i]["ratio"])
        assert (rows["FAZ-like"][rb_i]["ratio"]
                >= 0.9 * rows["SZ3-like"][rb_i]["ratio"])
        if dataset == "jhtdb":
            assert (rows["SZ3-like"][rb_i]["ratio"]
                    > rows["DPCM"][rb_i]["ratio"])
    for name, pts in rows.items():
        assert pts[0]["ratio"] > 1.0, f"{name} failed to compress"

    # FAZ auto-tuning sanity: never worse than its own wavelet module
    faz = get_codec("fazlike")
    eb = REL_BOUNDS[1] * float(frames.max() - frames.min())
    combined = faz.compress(frames, eb)
    wav = faz.impl.wavelet.compress(frames, error_bound=eb)
    assert len(combined.payload) <= len(wav) + 5

    sz = get_codec("szlike")
    eb_mid = REL_BOUNDS[1] * float(frames.max() - frames.min())
    benchmark(lambda: sz.compress(frames, eb_mid))


def test_mgard_progressive_decode(benchmark):
    """Progressive MGARD reads: error shrinks monotonically with level."""
    frames = dataset_frames("e3sm")
    codec = get_codec("mgard", levels=3)
    assert codec.capabilities.progressive
    eb = 1e-3 * float(frames.max() - frames.min())
    res = codec.compress(frames, eb)
    errs = []
    for lvl in (3, 2, 1, 0):
        rec = codec.decompress(res.payload, max_level=lvl)
        errs.append(float(np.abs(frames - rec).max()))
    print(f"\nMGARD-like progressive max-error by level (3->0): "
          f"{['%.3g' % e for e in errs]}")
    save_json("rulebased_mgard_progressive", {"levels": [3, 2, 1, 0],
                                              "max_err": errs})
    assert errs[-1] <= eb * (1 + 1e-9)
    # coarse views can fluctuate among themselves but are never better
    # than the full decode
    assert all(e >= errs[-1] for e in errs[:-1])

    benchmark(lambda: codec.decompress(res.payload))
