"""Design-choice ablations beyond the paper's figures (DESIGN.md §5).

* factorized prior vs a fixed logistic prior for the hyper-latent
  (rate impact of the learned non-parametric density);
* DDIM vs ancestral sampling at equal step counts;
* PCA corrector vs a uniform residual quantizer at an equal L2 bound
  (payload size of the guarantee stage).
"""

import numpy as np
import pytest
from scipy import special as sp

from repro.entropy import FactorizedDensity
from repro.nn import Tensor
from repro.nn.optim import Adam
from repro.postprocess import ErrorBoundCorrector, ResidualPCA
from repro.postprocess.coding import encode_ints

from .conftest import dataset_frames, save_json, split


# ----------------------------------------------------------------------
# Ablation 1: learned factorized prior vs fixed logistic prior
# ----------------------------------------------------------------------
def _logistic_bits(z: np.ndarray, scale: float = 2.0) -> float:
    """Bits under a fixed zero-mean logistic with the given scale."""
    upper = sp.expit((z + 0.5) / scale)
    lower = sp.expit((z - 0.5) / scale)
    p = np.maximum(upper - lower, 1e-9)
    return float(-np.log2(p).sum())


def test_ablation_factorized_prior(benchmark):
    rng = np.random.default_rng(0)
    # bimodal, channel-dependent latents: realistic hyper-latent stats
    z = np.rint(np.concatenate([
        rng.normal(-3, 0.7, size=(16, 2, 4, 4)),
        rng.normal(2, 1.5, size=(16, 2, 4, 4))], axis=1))
    fd = FactorizedDensity(channels=4, rng=rng)
    opt = Adam(fd.parameters(), lr=5e-2)
    for _ in range(120):
        noisy = Tensor(z + rng.uniform(-0.5, 0.5, size=z.shape))
        opt.zero_grad()
        loss = fd.bits(noisy)
        loss.backward()
        opt.step()
    learned = fd.bits(Tensor(z)).item()
    fixed = _logistic_bits(z)
    print(f"\nAblation (prior): learned={learned:.0f} bits, "
          f"fixed logistic={fixed:.0f} bits "
          f"({fixed / learned:.2f}x more)")
    save_json("ablation_prior", {"learned_bits": learned,
                                 "fixed_logistic_bits": fixed})
    assert learned < fixed  # the learned prior earns its parameters

    benchmark(lambda: fd.bits(Tensor(z)).item())


# ----------------------------------------------------------------------
# Ablation 2: DDIM vs ancestral at equal step counts
# ----------------------------------------------------------------------
def test_ablation_sampler(ours_by_dataset, frames_by_dataset, benchmark):
    from dataclasses import replace

    from repro import LatentDiffusionCompressor

    frames = frames_by_dataset["e3sm"]
    comp = ours_by_dataset["e3sm"]
    steps = comp.ddpm.schedule.steps
    results = {}
    for sampler in ("ancestral", "ddim"):
        cfg = replace(comp.config, sampler=sampler, sample_steps=steps)
        c = LatentDiffusionCompressor(comp.vae, comp.ddpm, cfg,
                                      corrector=comp.corrector)
        res = c.compress(frames)
        results[sampler] = {"nrmse": float(res.achieved_nrmse),
                            "ratio": float(res.ratio)}
    print(f"\nAblation (sampler, {steps} steps): {results}")
    save_json("ablation_sampler", results)
    # the stochastic sampler tolerates an imperfect eps model better;
    # it is the pipeline default — check it is not worse
    assert (results["ancestral"]["nrmse"]
            <= results["ddim"]["nrmse"] * 1.05)

    cfg = replace(comp.config, sampler="ancestral")
    c = LatentDiffusionCompressor(comp.vae, comp.ddpm, cfg,
                                  corrector=comp.corrector)
    benchmark.pedantic(lambda: c.compress(frames), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Ablation 3: PCA corrector vs uniform residual quantization
# ----------------------------------------------------------------------
def _uniform_payload(residual: np.ndarray, tau: float) -> int:
    """Bytes to meet the L2 bound by direct elementwise quantization."""
    step = 2.0 * tau / np.sqrt(residual.size)
    q = np.rint(residual / step).astype(np.int64)
    return len(encode_ints(q.ravel()))


def test_ablation_postprocess(ours_by_dataset, frames_by_dataset,
                              benchmark):
    # (a) real pipeline residual: the diffusion error is close to
    # white at tiny scale, so PCA only needs to match the uniform
    # quantizer (parity band) — at paper scale residuals are smoother
    # and the PCA stage wins outright.
    frames = frames_by_dataset["e3sm"]
    comp = ours_by_dataset["e3sm"]
    res = comp.compress(frames)
    residual = frames - res.reconstruction
    tau = 0.4 * np.linalg.norm(residual)
    pca_res = comp.corrector.correct(frames, res.reconstruction, tau)
    uniform_bytes = _uniform_payload(residual, tau)

    # (b) structured (low-rank) residual: the regime the design
    # targets — here PCA must win decisively.
    rng = np.random.default_rng(0)
    T, H, W = 6, 16, 16
    yy, xx = np.meshgrid(np.arange(H), np.arange(W), indexing="ij")
    pattern = np.sin(2 * np.pi * xx / W) * np.cos(2 * np.pi * yy / H)
    s_resid = np.stack([(1.0 + 0.2 * t) * pattern for t in range(T)])
    s_resid += rng.normal(0, 0.02, size=s_resid.shape)
    base = rng.normal(size=s_resid.shape)
    # block=8: low-frequency structure needs blocks that span it (the
    # paper-scale corrector uses 16); the tiny pipeline's 4x4 blocks
    # cannot represent a wavelength-16 pattern in a few coefficients.
    pca = ResidualPCA(block=8, rank=16).fit(s_resid)
    corr = ErrorBoundCorrector(pca)
    s_tau = 0.2 * np.linalg.norm(s_resid)
    s_pca = corr.correct(base + s_resid, base, s_tau)
    s_uniform = _uniform_payload(s_resid, s_tau)

    print(f"\nAblation (postprocess): real residual @ tau={tau:.3g}: "
          f"PCA={pca_res.payload_bytes}B vs uniform={uniform_bytes}B; "
          f"structured residual @ tau={s_tau:.3g}: "
          f"PCA={s_pca.payload_bytes}B vs uniform={s_uniform}B")
    save_json("ablation_postprocess", {
        "real_pca_bytes": pca_res.payload_bytes,
        "real_uniform_bytes": uniform_bytes,
        "structured_pca_bytes": s_pca.payload_bytes,
        "structured_uniform_bytes": s_uniform,
    })
    assert pca_res.payload_bytes <= uniform_bytes * 1.2  # parity band
    assert s_pca.payload_bytes < s_uniform * 0.7         # decisive win

    benchmark.pedantic(
        lambda: comp.corrector.correct(frames, res.reconstruction, tau),
        rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Ablation 4: per-block loop vs vectorized coefficient selection
# ----------------------------------------------------------------------
def test_ablation_postprocess_vectorized(benchmark):
    """The paper's future-work item: accelerate the guarantee stage.

    Both selection backends produce byte-identical payloads (asserted);
    the vectorized path replaces the per-block greedy loop with one
    cumulative sum over the magnitude-sorted coefficient array.
    """
    import time

    rng = np.random.default_rng(0)
    shape = (16, 64, 64)
    x = rng.standard_normal(shape).cumsum(axis=1)
    x_r = x + 0.3 * rng.standard_normal(shape)
    pca = ResidualPCA(block=8, rank=32).fit(
        (x - x_r) + 0.05 * rng.standard_normal(shape))
    tau = 0.3 * float(np.linalg.norm(x - x_r))

    loop = ErrorBoundCorrector(pca, vectorized=False)
    fast = ErrorBoundCorrector(pca, vectorized=True)

    t0 = time.perf_counter()
    res_l = loop.correct(x, x_r, tau)
    t_loop = time.perf_counter() - t0
    t0 = time.perf_counter()
    res_v = fast.correct(x, x_r, tau)
    t_fast = time.perf_counter() - t0

    assert res_v.payload == res_l.payload
    assert res_v.achieved_l2 <= tau * (1 + 1e-9)
    speedup = t_loop / max(t_fast, 1e-9)
    print(f"\nAblation (postprocess backend): loop {t_loop * 1e3:.0f} ms, "
          f"vectorized {t_fast * 1e3:.0f} ms ({speedup:.1f}x)")
    save_json("ablation_postprocess_vectorized", {
        "loop_s": t_loop, "vectorized_s": t_fast, "speedup": speedup})
    assert t_fast < t_loop  # the acceleration must actually accelerate

    benchmark(lambda: fast.correct(x, x_r, tau))
