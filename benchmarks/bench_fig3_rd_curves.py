"""Fig. 3 — rate-distortion comparison on E3SM / S3D / JHTDB (Sec. 4.7).

For each dataset, sweeps the error bound and reports NRMSE vs
compression ratio for:

* ours (keyframe latent diffusion),
* VAE-SR (strongest learned baseline, every-frame latents),
* CDC-eps / CDC-X and GCD (E3SM only, as in the paper's Fig. 3a),
* SZ3-like and ZFP-like rule-based compressors.

Assertions target the *shape* of the paper's result: at matched
reconstruction error our compression ratio beats every every-frame
learned baseline, and learned compressors beat the transform-based
rule baseline on these smooth scientific fields.  Absolute ratios are
substrate-dependent (tiny models, 16x16 fields) and recorded in
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import nrmse

from .conftest import save_json

BOUNDS = (0.05, 0.02, 0.01)


def _ours_curve(comp, frames):
    rows = []
    for b in BOUNDS:
        res = comp.compress(frames, nrmse_bound=b)
        rows.append({"bound": b, "nrmse": res.achieved_nrmse,
                     "ratio": res.ratio,
                     "latent_bytes": res.accounting.latent_bytes,
                     "guarantee_bytes": res.accounting.guarantee_bytes})
    return rows


def _learned_curve(model, frames):
    rows = []
    for b in BOUNDS:
        res = model.compress(frames, nrmse_bound=b)
        rows.append({"bound": b, "nrmse": res.achieved_nrmse,
                     "ratio": res.ratio,
                     "latent_bytes": res.accounting.latent_bytes,
                     "guarantee_bytes": res.accounting.guarantee_bytes})
    return rows


def _rule_curve(model, frames):
    rows = []
    rng_ = float(frames.max() - frames.min())
    for b in BOUNDS:
        # pointwise bound ~ 2x the NRMSE target lands near the same
        # NRMSE for these fields; report the achieved value either way
        data = model.compress(frames, 2.0 * b * rng_)
        recon = model.decompress(data)
        rows.append({"bound": b, "nrmse": nrmse(frames, recon),
                     "ratio": frames.size * 4 / len(data)})
    return rows


def _print_curves(title, curves):
    print(f"\nFig. 3 ({title}): NRMSE vs compression ratio")
    print(f"{'method':>12} | " + " | ".join(
        f"bound {b:g}: CR @ NRMSE" for b in BOUNDS))
    for name, rows in curves.items():
        cells = " | ".join(
            f"{r['ratio']:7.1f} @ {r['nrmse']:.4f}" for r in rows)
        print(f"{name:>12} | {cells}")


def _ratio_at_matched_error(curves, a, b):
    """Mean ratio advantage of method ``a`` over ``b`` at equal bounds."""
    adv = [ra["ratio"] / max(rb["ratio"], 1e-9)
           for ra, rb in zip(curves[a], curves[b])]
    return float(np.mean(adv))


@pytest.mark.parametrize("key", ["e3sm", "s3d", "jhtdb"])
def test_fig3_rd_curves(key, frames_by_dataset, ours_by_dataset,
                        vaesr_by_dataset, cdc_pair_e3sm, gcd_e3sm,
                        rule_based, benchmark):
    frames = frames_by_dataset[key]
    curves = {"Ours": _ours_curve(ours_by_dataset[key], frames)}
    curves["VAE-SR"] = _learned_curve(vaesr_by_dataset[key], frames)
    if key == "e3sm":
        curves["CDC-eps"] = _learned_curve(cdc_pair_e3sm["eps"], frames)
        curves["CDC-X"] = _learned_curve(cdc_pair_e3sm["x"], frames)
        curves["GCD"] = _learned_curve(gcd_e3sm, frames)
    for name, model in rule_based.items():
        curves[name] = _rule_curve(model, frames)

    _print_curves(key.upper(), curves)
    save_json(f"fig3_{key}_rd", curves)

    # every method satisfied its bound
    for name in curves:
        if name in ("SZ3-like", "ZFP-like"):
            continue
        for row in curves[name]:
            assert row["nrmse"] <= row["bound"] * (1 + 1e-9), (name, row)

    # headline mechanism: ours stores keyframe latents only, so its
    # Size(L) must be well below every every-frame learned baseline's
    # at each operating point (2 keyframes of 6 frames here).  This is
    # the storage argument behind the paper's 20-63% total advantage;
    # at paper scale (raw NRMSE already near the bound) Size(L)
    # dominates the stream and the advantage carries to the total
    # ratio, whereas at this substrate scale the correction payload
    # dilutes it (recorded below, analyzed in EXPERIMENTS.md).
    learned = ["VAE-SR"] + (["CDC-eps", "CDC-X", "GCD"]
                            if key == "e3sm" else [])
    # hard assertion against the structurally comparable baselines
    # (per-frame single-channel VAE latents); CDC packs 3 frames into
    # one 3-channel latent, a different transform, so it is recorded
    # but not asserted here.
    comparable = [m for m in learned if m in ("VAE-SR", "GCD")]
    for other in comparable:
        for ro, rb in zip(curves["Ours"], curves[other]):
            assert ro["latent_bytes"] < rb["latent_bytes"] * 0.85, (
                other, ro, rb)

    # total-ratio comparison: same league as the learned baselines at
    # every bound (the full-scale paper result is 1.2-1.63x in our
    # favour; tiny-scale is correction-dominated, so require parity)
    for other in learned:
        adv = _ratio_at_matched_error(curves, "Ours", other)
        print(f"  ours / {other} total-ratio advantage: {adv:.2f}x")
        assert adv > 0.7, (other, adv)

    # record the ours-vs-rule-based factors.  At paper scale these are
    # 4-10x in our favour; at this substrate scale (tiny models, 16x16
    # fields, minutes of CPU training) the correction payload can erase
    # the advantage, so they are recorded rather than asserted — see
    # EXPERIMENTS.md for the deviation analysis.
    for rb in ("SZ3-like", "ZFP-like"):
        factor = _ratio_at_matched_error(curves, "Ours", rb)
        print(f"  ours / {rb} ratio advantage: {factor:.2f}x")

    # benchmark: one bounded compression pass
    comp = ours_by_dataset[key]
    benchmark.pedantic(
        lambda: comp.compress(frames, nrmse_bound=BOUNDS[0]),
        rounds=1, iterations=1)
