"""Table 2 — encoding/decoding speed of the generative compressors.

Measures MB/s of ours (at several step counts) against CDC-eps, CDC-X
and GCD on this host.  All methods run through the unified codec
contract (``repro.codecs``): decode timing is a real
``codec.decompress(payload)`` on a serialized stream, not an internal
reconstruction call.  The paper's table spans two GPUs; the absolute
MB/s here are CPU-substrate numbers, but the architectural orderings it
demonstrates are asserted:

* encoding is much faster than decoding for every diffusion codec
  (the reverse process runs at decode time);
* our latent-space diffusion decodes faster than the data-space
  CDC/GCD baselines;
* fewer denoising steps give proportionally faster decoding.
"""

import time

import numpy as np
import pytest

from repro.codecs import LatentDiffusionCodec, as_codec

from .conftest import dataset_frames, save_json

MB = 1024 * 1024


def _mbps(num_bytes: int, seconds: float) -> float:
    return num_bytes / MB / max(seconds, 1e-9)


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.fixture(scope="module")
def speed_table(ours_by_dataset, cdc_pair_e3sm, gcd_e3sm):
    frames = dataset_frames("e3sm")
    data_bytes = frames.size * 8
    rows = {}

    # ours at a few decode step counts (DDIM step-skipping on the
    # trained schedule — the runtime knob of Sec. 4.6)
    comp = ours_by_dataset["e3sm"]
    from dataclasses import replace
    for steps in (16, 8, 4):
        cfg = replace(comp.config, sampler="ddim", sample_steps=steps)
        from repro import LatentDiffusionCompressor
        fast = LatentDiffusionCodec(LatentDiffusionCompressor(
            comp.vae, comp.ddpm, cfg, corrector=comp.corrector))
        res = fast.compress(frames)
        # encode: VAE analysis + entropy coding of keyframes only
        t_enc = _time(lambda: fast.impl.vae.compress(
            frames[:, None].astype(np.float64)[: comp.config.window]))
        t_dec = _time(lambda: fast.decompress(res.payload))
        rows[f"Ours-{steps} steps"] = {
            "encode_mbps": _mbps(data_bytes, t_enc * 6),  # scaled to T
            "decode_mbps": _mbps(data_bytes, t_dec),
        }

    for model in (cdc_pair_e3sm["eps"], cdc_pair_e3sm["x"], gcd_e3sm):
        codec = as_codec(model)
        name = codec.label
        norm = frames / np.ptp(frames)
        t_enc = _time(lambda: model.vae.compress(
            norm[:6][:, None] if name == "GCD"
            else norm[:6].reshape(2, 3, *frames.shape[1:])))
        res = codec.compress(norm)
        t_dec = _time(lambda: codec.decompress(res.payload))
        rows[name] = {
            "encode_mbps": _mbps(data_bytes, t_enc * 6),
            "decode_mbps": _mbps(data_bytes, t_dec),
        }
    return rows


def test_table2_inference_speed(speed_table, benchmark, ours_by_dataset):
    rows = speed_table
    print("\nTable 2: inference speed (this host, CPU substrate)")
    print(f"{'method':>14} | {'encode MB/s':>12} | {'decode MB/s':>12}")
    for name, r in rows.items():
        print(f"{name:>14} | {r['encode_mbps']:12.3f} | "
              f"{r['decode_mbps']:12.3f}")
    save_json("table2_speed", rows)

    # encode >> decode for every generative codec
    for name, r in rows.items():
        assert r["encode_mbps"] > r["decode_mbps"], name

    # ours decodes faster than the data-space diffusion baselines
    ours_best = max(rows[k]["decode_mbps"] for k in rows
                    if k.startswith("Ours"))
    for name in ("CDC-eps", "CDC-X", "GCD"):
        assert ours_best > rows[name]["decode_mbps"], name

    # fewer steps -> faster decode (monotone within ours)
    assert rows["Ours-4 steps"]["decode_mbps"] >= \
        rows["Ours-16 steps"]["decode_mbps"]

    # benchmark: the deployable decode path through the codec contract
    frames = dataset_frames("e3sm")
    codec = as_codec(ours_by_dataset["e3sm"])
    payload = codec.compress(frames).payload
    benchmark.pedantic(lambda: codec.decompress(payload), rounds=1,
                       iterations=1)
