#!/usr/bin/env python
"""Quickstart: train the latent-diffusion compressor and compress a field.

Trains the full two-stage pipeline (VAE + hyperprior, then conditional
latent diffusion) on synthetic climate data, compresses held-out frames
with an NRMSE bound, and round-trips the compressed bytes.

Run time: ~1 minute on a laptop CPU.

    python examples/quickstart.py
"""

import numpy as np

from repro import (Archive, Bound, Session, TrainingConfig,
                   TwoStageTrainer, nrmse, tiny)
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows


def main() -> None:
    cfg = tiny()

    # --- data: synthetic climate frames (see repro.data docs) ----------
    print("generating synthetic E3SM-like climate data ...")
    dataset = E3SMSynthetic(t=36, h=16, w=16, seed=0)
    frames = dataset.frames(0)                       # (T, H, W), Kelvin
    train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)
    print(f"  frames: {frames.shape}, train windows: {len(train)}")

    # --- stage 1 + stage 2 training -------------------------------------
    trainer = TwoStageTrainer(
        cfg, TrainingConfig(vae_iters=250, diffusion_iters=500,
                            finetune_iters=0, vae_batch=4,
                            diffusion_batch=4, lam=1e-6,
                            vae_lr_decay_every=100), seed=0)
    print("stage 1: training VAE + hyperprior (rate-distortion loss) ...")
    trainer.train_vae(train)
    print(f"  final RD loss: {trainer.history.vae_losses[-1]:.4f}")
    print("stage 2: training conditional latent diffusion (Algorithm 1) ...")
    trainer.train_diffusion(train)
    print(f"  final eps-MSE: {trainer.history.diffusion_losses[-1]:.4f}")

    compressor = trainer.build_compressor(train)

    # --- compress through the facade with an error bound ----------------
    target = 0.02
    print(f"compressing {frames.shape} with NRMSE bound {target} ...")
    session = Session(codec=compressor)  # adopts the trained pipeline
    archive = session.compress(frames, bound=Bound.nrmse(target))
    blob = archive.blob()
    print(f"  compression ratio : {archive.stats['ratio']:6.1f}x")
    print(f"  achieved NRMSE    : {archive.stats['nrmse']:.5f} "
          f"(bound {target})")
    print(f"  latent bytes      : {blob.latent_bytes()}")
    print(f"  guarantee bytes   : {blob.guarantee_bytes()}")

    # --- byte-level round trip ------------------------------------------
    wire = archive.to_bytes()
    restored = session.decompress(Archive.open(wire))
    assert nrmse(frames, restored) <= target * (1 + 1e-9)
    print(f"round trip through {len(wire)} bytes OK — bound holds on the "
          "decoded stream.")


if __name__ == "__main__":
    main()
