#!/usr/bin/env python
"""QoI preservation: certify derived quantities from the PD bound.

Trains the pipeline on synthetic combustion data, compresses with a
primary-data (PD) L2 bound, and shows how that single guarantee
propagates to quantities of interest — global mean, a flame-kernel
region average, total energy, and derivative-field norms — via the
certificates of :mod:`repro.postprocess.qoi`.  Every certificate is
checked against the achieved error.

Run time: ~1 minute on a laptop CPU.

    python examples/qoi_preservation.py
"""

import numpy as np

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.data import S3DSynthetic
from repro.data.base import train_test_windows
from repro.postprocess import (DerivativeQoI, QuadraticQoI, evaluate_qois,
                               mean_qoi, region_average_qoi)


def main() -> None:
    cfg = tiny()

    print("generating synthetic S3D-like combustion data ...")
    dataset = S3DSynthetic(t=24, h=16, w=16, seed=1)
    frames = dataset.frames(0)                        # (T, H, W)
    train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)

    trainer = TwoStageTrainer(
        cfg, TrainingConfig(vae_iters=200, diffusion_iters=400,
                            finetune_iters=0, lam=1e-6), seed=0)
    print("training two-stage pipeline ...")
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    compressor = trainer.build_compressor(train)

    # --- compress with a PD guarantee -----------------------------------
    tau = 0.02 * float(np.linalg.norm(frames))
    print(f"compressing with PD bound ||x - x_G||_2 <= {tau:.4g} ...")
    result = compressor.compress(frames, error_bound=tau)
    x_g = result.reconstruction
    achieved = float(np.linalg.norm(frames - x_g))
    print(f"  ratio {result.ratio:.1f}x, achieved L2 {achieved:.4g} "
          f"(bound {tau:.4g})")

    # --- define the quantities downstream analysis would compute --------
    kernel = frames.mean(axis=0) > np.percentile(frames.mean(axis=0), 90)
    region_mask = np.broadcast_to(kernel, frames.shape)
    qois = [
        mean_qoi(frames.shape),
        region_average_qoi(region_mask, name="flame-kernel-average"),
        QuadraticQoI(name="total-energy"),
        DerivativeQoI(axis=1, name="grad-y-l2"),
        DerivativeQoI(axis=2, name="grad-x-l2"),
    ]

    # --- certify ----------------------------------------------------------
    print(f"\n{'QoI':24s} {'original':>12s} {'recon':>12s} "
          f"{'abs err':>10s} {'certified':>10s}")
    records = evaluate_qois(frames, x_g, qois, tau=tau)
    for r in records:
        status = "OK" if r.within_bound else "VIOLATED"
        print(f"{r.name:24s} {r.original_value:12.5g} "
              f"{r.reconstructed_value:12.5g} {r.achieved_error:10.3g} "
              f"{r.certified_bound:10.3g}  {status}")
    assert all(r.within_bound for r in records)
    print("\nall QoI certificates hold — downstream analysis on the "
          "reconstruction is certified valid within the printed bounds.")


if __name__ == "__main__":
    main()
