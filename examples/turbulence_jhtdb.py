#!/usr/bin/env python
"""Turbulence scenario: keyframe strategies + interval trade-off.

Isotropic turbulence decorrelates quickly in time, making it the
hardest case for generative interpolation (the paper's smallest win).
This example compares the three keyframe-selection strategies of
Sec. 4.4 and sweeps the interpolation interval (Sec. 4.5) on
JHTDB-like data.

Run time: ~3 minutes on a laptop CPU.

    python examples/turbulence_jhtdb.py
"""

from dataclasses import replace

import numpy as np

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.data import JHTDBSynthetic
from repro.data.base import train_test_windows
from repro.pipeline import LatentDiffusionCompressor


def train_for(cfg, train, strategy, interval, seed=0):
    pipe = replace(cfg.pipeline, keyframe_strategy=strategy,
                   keyframe_interval=interval)
    cfg2 = replace(cfg, pipeline=pipe)
    trainer = TwoStageTrainer(
        cfg2, TrainingConfig(vae_iters=200, diffusion_iters=350,
                             finetune_iters=0, diffusion_batch=4,
                             lam=1e-6, vae_lr_decay_every=80), seed=seed)
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    return trainer.build_compressor(train)


def main() -> None:
    cfg = tiny()
    dataset = JHTDBSynthetic(t=36, h=16, w=16, seed=5, decorrelation=0.05)
    frames = dataset.frames(0)
    train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)

    print("keyframe strategy comparison (Sec. 4.4 / Fig. 2):")
    print(f"{'strategy':>14} | {'NRMSE':>9} | {'ratio':>7}")
    print("-" * 38)
    for strategy in ("interpolation", "prediction", "mixed"):
        comp = train_for(cfg, train, strategy, cfg.pipeline.keyframe_interval)
        res = comp.compress(frames)
        print(f"{strategy:>14} | {res.achieved_nrmse:9.5f} | "
              f"{res.ratio:7.1f}")

    print("\ninterpolation interval sweep (Sec. 4.5 / Fig. 4):")
    print(f"{'interval':>9} | {'NRMSE':>9} | {'ratio':>7}")
    print("-" * 32)
    for interval in (2, 3, 5):
        comp = train_for(cfg, train, "interpolation", interval)
        res = comp.compress(frames)
        print(f"{interval:>9} | {res.achieved_nrmse:9.5f} | "
              f"{res.ratio:7.1f}")
    print("\nsmaller intervals store more keyframes: lower error, lower "
          "ratio — interval 3 is the paper's sweet spot.")


if __name__ == "__main__":
    main()
