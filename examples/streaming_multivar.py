#!/usr/bin/env python
"""Streaming + multi-variable compression of a long simulation.

Demonstrates the two deployment-scale entry points:

1. :class:`repro.pipeline.StreamingCompressor` — feed frames one at a
   time (here from a generator that never materializes the full
   array), get a self-describing archive back, memory bounded by the
   chunk size;
2. :class:`repro.pipeline.MultiVariableCompressor` — compress several
   physical variables with one shared trained model and aggregate the
   Eq. 11 accounting across the dataset.

Run time: ~2 minutes on a laptop CPU.

    python examples/streaming_multivar.py
"""

import numpy as np

from repro import (StreamArchive, StreamingCompressor, TrainingConfig,
                   TwoStageTrainer, tiny)
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.pipeline import MultiVariableCompressor


def frame_stream(dataset, variable):
    """Yield frames one by one — stand-in for a simulation's output."""
    frames = dataset.frames(variable)
    for frame in frames:
        yield frame


def main() -> None:
    cfg = tiny()
    dataset = E3SMSynthetic(t=48, h=16, w=16, seed=0, num_vars=3)

    # --- train once on the first variable's early time ------------------
    train, _ = train_test_windows(dataset.frames(0),
                                  window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)
    trainer = TwoStageTrainer(
        cfg, TrainingConfig(vae_iters=200, diffusion_iters=400,
                            finetune_iters=0, lam=1e-6), seed=0)
    print("training shared model ...")
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    compressor = trainer.build_compressor(train)

    # --- 1) streaming ----------------------------------------------------
    print("\n--- streaming compression (constant memory) ---")
    sc = StreamingCompressor(compressor, chunk_windows=2)
    print(f"chunk size: {sc.chunk_frames} frames "
          f"({cfg.pipeline.window}-frame windows x 2)")
    archive = StreamArchive(original_dtype_bytes=4)
    for res in sc.compress_iter(frame_stream(dataset, 0),
                                nrmse_bound=0.05):
        archive.blobs.append(res.blob)
        print(f"  chunk {res.index}: frames "
              f"[{res.start_frame}, {res.start_frame + res.num_frames}), "
              f"NRMSE {res.achieved_nrmse:.4f}")
    acc = archive.accounting()
    print(f"stream total: {archive.num_frames} frames, "
          f"ratio {acc.ratio:.1f}x over {acc.latent_bytes + acc.guarantee_bytes} bytes")

    wire = archive.to_bytes()
    restored = StreamArchive.from_bytes(wire)
    recon = sc.decompress_all(restored)
    print(f"round trip through {len(wire)} archive bytes: "
          f"{recon.shape} reconstructed")

    # --- 2) multi-variable ----------------------------------------------
    print("\n--- multi-variable compression (3 climate variables) ---")
    mv = MultiVariableCompressor(compressor)
    stacks = {f"var{i}": dataset.frames(i)[:24] for i in range(3)}
    result = mv.compress(stacks, nrmse_bound=0.05)
    for name, r in result.results.items():
        print(f"  {name}: ratio {r.ratio:6.1f}x, "
              f"NRMSE {r.achieved_nrmse:.4f}")
    print(f"dataset-level ratio (Eq. 11 over all variables): "
          f"{result.ratio:.1f}x; worst NRMSE {result.worst_nrmse():.4f}")

    out = mv.decompress(result.archive())
    assert set(out) == set(stacks)
    print("all variables round-trip through one archive.")


if __name__ == "__main__":
    main()
