#!/usr/bin/env python
"""Streaming + multi-variable compression of a long simulation.

Demonstrates the two deployment-scale input shapes of the
:class:`repro.Session` facade:

1. **frame iterators** — feed frames one at a time (here from a
   generator that never materializes the full array) and get a
   self-describing stream archive back, memory bounded by the chunk
   size;
2. **variable mappings** — compress several physical variables with
   one shared trained model and aggregate the Eq. 11 accounting
   across the dataset.

Run time: ~2 minutes on a laptop CPU.

    python examples/streaming_multivar.py
"""

from repro import Archive, Bound, Session, TrainingConfig, TwoStageTrainer, tiny
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows


def frame_stream(dataset, variable):
    """Yield frames one by one — stand-in for a simulation's output."""
    frames = dataset.frames(variable)
    for frame in frames:
        yield frame


def main() -> None:
    cfg = tiny()
    dataset = E3SMSynthetic(t=48, h=16, w=16, seed=0, num_vars=3)

    # --- train once on the first variable's early time ------------------
    train, _ = train_test_windows(dataset.frames(0),
                                  window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)
    trainer = TwoStageTrainer(
        cfg, TrainingConfig(vae_iters=200, diffusion_iters=400,
                            finetune_iters=0, lam=1e-6), seed=0)
    print("training shared model ...")
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    session = Session(codec=trainer.build_compressor(train),
                      chunk_windows=2)

    # --- 1) streaming: an iterator source --------------------------------
    print("\n--- streaming compression (constant memory) ---")
    archive = session.compress(frame_stream(dataset, 0),
                               bound=Bound.nrmse(0.05))
    s = archive.stats
    print(f"stream archive: {s['chunks']} chunks, {s['frames']} frames, "
          f"ratio {s['ratio']:.1f}x over {s['bytes']} bytes")

    recon = session.decompress(Archive.open(archive.to_bytes()))
    print(f"round trip through {len(archive)} archive bytes: "
          f"{recon.shape} reconstructed")

    # --- 2) multi-variable: a mapping source -----------------------------
    print("\n--- multi-variable compression (3 climate variables) ---")
    stacks = {f"var{i}": dataset.frames(i)[:24] for i in range(3)}
    mv = session.compress(stacks, bound=Bound.nrmse(0.05))
    print(f"dataset-level ratio (Eq. 11 over all variables): "
          f"{mv.stats['ratio']:.1f}x; worst NRMSE "
          f"{mv.stats['nrmse']:.4f}")

    out = session.decompress(mv)
    assert set(out) == set(stacks)
    print("all variables round-trip through one archive.")


if __name__ == "__main__":
    main()
