#!/usr/bin/env python
"""Survey of rule-based scientific compressors on one dataset.

Runs all six rule-based families from the paper's related work —
SZ3-like (prediction), ZFP-like (block transform), TTHRESH-like
(HOSVD), MGARD-like (multilevel, progressive), DPCM (temporal) and
FAZ-like (auto-tuned wavelet/predictor) — on synthetic turbulence at a
sweep of error bounds, and prints the rate-distortion table plus an
MGARD progressive-decode demonstration.  No training required.

Run time: seconds.

    python examples/rulebased_comparison.py
"""

import numpy as np

from repro.baselines import (DPCMCompressor, FAZLikeCompressor,
                             MGARDLikeCompressor, SZLikeCompressor,
                             TTHRESHLikeCompressor, ZFPLikeCompressor)
from repro.data import JHTDBSynthetic
from repro.metrics import nrmse


def main() -> None:
    frames = JHTDBSynthetic(t=24, h=32, w=32, seed=7).frames(0)
    data_range = float(frames.max() - frames.min())
    rel_bounds = (1e-1, 1e-2, 1e-3)

    methods = {
        "SZ3-like": SZLikeCompressor(),
        "ZFP-like": ZFPLikeCompressor(),
        "TTHRESH-like": TTHRESHLikeCompressor(),
        "MGARD-like": MGARDLikeCompressor(levels=3),
        "DPCM": DPCMCompressor(order=2),
        "FAZ-like": FAZLikeCompressor(levels=3),
    }

    print(f"JHTDB-like turbulence {frames.shape}, range {data_range:.3g}")
    print(f"{'method':14s}" + "".join(
        f"   CR@{rb:g} (NRMSE)" for rb in rel_bounds))
    for name, method in methods.items():
        cells = []
        for rb in rel_bounds:
            eb = rb * data_range
            if isinstance(method, TTHRESHLikeCompressor):
                stream = method.compress(frames, rmse_bound=eb / 3 ** 0.5)
            else:
                stream = method.compress(frames, error_bound=eb)
            rec = method.decompress(stream)
            ratio = frames.size * 4 / len(stream)
            cells.append(f"{ratio:7.1f} ({nrmse(frames, rec):.1e})")
        print(f"{name:14s}" + "  ".join(cells))

    # --- MGARD progressive decode ----------------------------------------
    print("\nMGARD-like progressive recovery from ONE stream:")
    comp = MGARDLikeCompressor(levels=3)
    eb = 1e-3 * data_range
    stream = comp.compress(frames, error_bound=eb)
    for level in (3, 2, 1, 0):
        rec = comp.decompress(stream, max_level=level)
        print(f"  level {level}: max err {np.abs(frames - rec).max():9.4g} "
              f"NRMSE {nrmse(frames, rec):.2e}")
    print("level 0 (full) meets the pointwise bound "
          f"{eb:.4g}; coarser levels trade accuracy for decode work.")

    # --- FAZ module choice -------------------------------------------------
    faz = methods["FAZ-like"]
    stream = faz.compress(frames, error_bound=1e-2 * data_range)
    print(f"\nFAZ-like auto-tuning chose its {faz.chosen_module(stream)!r} "
          "module for this dataset.")


if __name__ == "__main__":
    main()
