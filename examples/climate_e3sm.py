#!/usr/bin/env python
"""Climate scenario: multi-variable archive compression with parallelism.

Mirrors the paper's E3SM use case (Sec. 4.2): several climate variables
share one trained compressor; each variable's frame stack is compressed
independently — here fanned out through the execution engine
(:class:`repro.pipeline.CodecEngine`) — and compared against the
rule-based SZ3/ZFP analogues at a matched error level.

Run time: ~2 minutes on a laptop CPU.

    python examples/climate_e3sm.py
"""

import numpy as np

from repro import TrainingConfig, TwoStageTrainer, tiny
from repro.baselines import SZLikeCompressor, ZFPLikeCompressor
from repro.data import E3SMSynthetic
from repro.data.base import train_test_windows
from repro.pipeline import CodecEngine


def main() -> None:
    cfg = tiny()
    num_vars = 3
    dataset = E3SMSynthetic(t=36, h=16, w=16, seed=7, num_vars=num_vars)

    # train on variable 0 only; deploy on all variables (the paper's
    # foundation-model style usage)
    frames0 = dataset.frames(0)
    train, _ = train_test_windows(frames0, window=cfg.pipeline.window,
                                  train_fraction=0.5, stride=2)
    print("training shared compressor on variable 0 ...")
    trainer = TwoStageTrainer(
        cfg, TrainingConfig(vae_iters=250, diffusion_iters=500,
                            finetune_iters=0, diffusion_batch=4,
                            lam=1e-6, vae_lr_decay_every=100), seed=0)
    trainer.train_vae(train)
    trainer.train_diffusion(train)
    compressor = trainer.build_compressor(train)

    stacks = [dataset.frames(v) for v in range(num_vars)]
    target = 0.02
    print(f"compressing {num_vars} variables in parallel "
          f"(NRMSE bound {target}) ...")
    engine = CodecEngine(compressor, max_workers=3)
    batch = engine.compress(stacks, nrmse_bound=target)
    results = [r.detail for r in batch.results]

    print(f"\n{'variable':>9} | {'ours CR':>8} | {'SZ3-like CR':>11} | "
          f"{'ZFP-like CR':>11} | {'NRMSE':>8}")
    print("-" * 60)
    sz, zfp = SZLikeCompressor(), ZFPLikeCompressor()
    for v, (stack, res) in enumerate(zip(stacks, results)):
        # rule-based compressors take a pointwise bound; pick one that
        # lands near the same NRMSE for an apples-to-apples row
        eb = 2.0 * target * (stack.max() - stack.min())
        sz_cr = stack.size * 4 / len(sz.compress(stack, eb))
        zfp_cr = stack.size * 4 / len(zfp.compress(stack, eb))
        print(f"{v:>9} | {res.ratio:8.1f} | {sz_cr:11.1f} | "
              f"{zfp_cr:11.1f} | {res.achieved_nrmse:8.5f}")
    mean_ratio = np.mean([r.ratio for r in results])
    print(f"\nmean compression ratio (ours): {mean_ratio:.1f}x, "
          f"every variable within the bound.")


if __name__ == "__main__":
    main()
