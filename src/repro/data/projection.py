"""Cube-to-sphere projection for geospatial fields (E3SM preprocessing).

The paper converts E3SM's geospatial output "into a format suitable for
learning" by applying "Cube-to-Sphere projections, mapping the Earth's
surface onto a planar grid", producing frames of resolution
``240 x 1440`` — six ``240 x 240`` cube faces laid side by side
(``1440 = 6 x 240``).  This module implements that transform for
lat-lon fields, both directions:

* :func:`latlon_to_cube` — sample an equiangular cubed-sphere grid from
  a ``(n_lat, n_lon)`` field (bilinear, longitude-periodic), returning
  the ``(face_n, 6 * face_n)`` planar strip;
* :func:`cube_to_latlon` — the inverse resampling.

The equiangular mapping keeps cell solid angles within ~30% of each
other across a face (vs ~520% for the gnomonic tangent grid), which is
why climate codes — E3SM included, whose native dynamics grid *is* a
cubed sphere — use it.  A round trip is not bit-exact (two bilinear
resamplings) but converges as resolution grows; the tests pin the
rates.

Face layout and orientation follow the common equatorial-belt
convention: faces 0-3 walk the equator (+x, +y, −x, −y), face 4 is the
north cap, face 5 the south cap.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["latlon_to_cube", "cube_to_latlon", "face_directions",
           "CUBE_FACES"]

#: Number of cube faces.
CUBE_FACES = 6

_QUARTER_PI = np.pi / 4.0


def face_directions(face: int, a: np.ndarray, b: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit-sphere direction for equiangular face coords ``(a, b)``.

    ``a`` (horizontal) and ``b`` (vertical) are angles in
    ``[-pi/4, pi/4]``; ``tan`` of them gives gnomonic coordinates on
    the face plane.
    """
    ta, tb = np.tan(a), np.tan(b)
    one = np.ones_like(ta)
    if face == 0:    # +x, equator at lon 0
        x, y, z = one, ta, tb
    elif face == 1:  # +y, lon 90E
        x, y, z = -ta, one, tb
    elif face == 2:  # -x, lon 180
        x, y, z = -one, -ta, tb
    elif face == 3:  # -y, lon 90W
        x, y, z = ta, -one, tb
    elif face == 4:  # +z, north cap (a east, b toward lon 180)
        x, y, z = -tb, ta, one
    elif face == 5:  # -z, south cap
        x, y, z = tb, ta, -one
    else:
        raise ValueError(f"face must be in [0, 6), got {face}")
    norm = np.sqrt(x * x + y * y + z * z)
    return x / norm, y / norm, z / norm


def _latlon_grid_coords(lat: np.ndarray, lon: np.ndarray,
                        n_lat: int, n_lon: int
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Fractional (row, col) into a cell-centred lat-lon raster.

    Rows run south (−90°) to north (+90°), columns west (−180°) east;
    both cell-centred (row 0 at lat ``-90 + 90/n_lat``).
    """
    row = (lat + np.pi / 2) / np.pi * n_lat - 0.5
    col = (lon + np.pi) / (2 * np.pi) * n_lon - 0.5
    return row, col


def _bilinear_periodic(field: np.ndarray, row: np.ndarray,
                       col: np.ndarray) -> np.ndarray:
    """Bilinear sample; rows clamped (poles), columns wrap (longitude)."""
    n_lat, n_lon = field.shape
    r0 = np.floor(row).astype(np.int64)
    c0 = np.floor(col).astype(np.int64)
    fr = row - r0
    fc = col - c0
    r0c = np.clip(r0, 0, n_lat - 1)
    r1c = np.clip(r0 + 1, 0, n_lat - 1)
    c0w = np.mod(c0, n_lon)
    c1w = np.mod(c0 + 1, n_lon)
    f00 = field[r0c, c0w]
    f01 = field[r0c, c1w]
    f10 = field[r1c, c0w]
    f11 = field[r1c, c1w]
    return ((1 - fr) * ((1 - fc) * f00 + fc * f01)
            + fr * ((1 - fc) * f10 + fc * f11))


def latlon_to_cube(field: np.ndarray, face_n: int) -> np.ndarray:
    """Project a ``(n_lat, n_lon)`` field onto a ``(face_n, 6*face_n)``
    cubed-sphere strip (the paper's E3SM frame layout).

    Stacks of fields ``(T, n_lat, n_lon)`` are handled frame-wise.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 3:
        return np.stack([latlon_to_cube(f, face_n) for f in field])
    if field.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D field, got {field.shape}")
    if face_n < 2:
        raise ValueError("face_n must be >= 2")
    n_lat, n_lon = field.shape
    # cell-centred equiangular coordinates on each face
    step = 2 * _QUARTER_PI / face_n
    coords = -_QUARTER_PI + (np.arange(face_n) + 0.5) * step
    b, a = np.meshgrid(coords, coords, indexing="ij")  # (face_n, face_n)
    out = np.empty((face_n, CUBE_FACES * face_n))
    for face in range(CUBE_FACES):
        x, y, z = face_directions(face, a, b)
        lat = np.arcsin(np.clip(z, -1.0, 1.0))
        lon = np.arctan2(y, x)
        row, col = _latlon_grid_coords(lat, lon, n_lat, n_lon)
        out[:, face * face_n:(face + 1) * face_n] = _bilinear_periodic(
            field, row, col)
    return out


def cube_to_latlon(strip: np.ndarray, n_lat: int, n_lon: int) -> np.ndarray:
    """Inverse of :func:`latlon_to_cube`: resample the planar strip back
    to a ``(n_lat, n_lon)`` lat-lon raster.

    Stacks ``(T, face_n, 6*face_n)`` are handled frame-wise.
    """
    strip = np.asarray(strip, dtype=np.float64)
    if strip.ndim == 3:
        return np.stack([cube_to_latlon(s, n_lat, n_lon) for s in strip])
    if strip.ndim != 2 or strip.shape[1] != CUBE_FACES * strip.shape[0]:
        raise ValueError(
            f"expected (N, 6N) cube strip, got {strip.shape}")
    face_n = strip.shape[0]
    faces = strip.reshape(face_n, CUBE_FACES, face_n).transpose(1, 0, 2)

    lat = (-np.pi / 2 + (np.arange(n_lat) + 0.5) * np.pi / n_lat)
    lon = (-np.pi + (np.arange(n_lon) + 0.5) * 2 * np.pi / n_lon)
    lat2, lon2 = np.meshgrid(lat, lon, indexing="ij")
    x = np.cos(lat2) * np.cos(lon2)
    y = np.cos(lat2) * np.sin(lon2)
    z = np.sin(lat2)

    ax, ay, az = np.abs(x), np.abs(y), np.abs(z)
    # dominant axis decides the face
    face_idx = np.where(
        (az >= ax) & (az >= ay), np.where(z > 0, 4, 5),
        np.where(ax >= ay, np.where(x > 0, 0, 2),
                 np.where(y > 0, 1, 3)))

    out = np.empty((n_lat, n_lon))
    step = 2 * _QUARTER_PI / face_n
    for face in range(CUBE_FACES):
        sel = face_idx == face
        if not np.any(sel):
            continue
        xs, ys, zs = x[sel], y[sel], z[sel]
        # invert the face direction map: recover the (a, b) angles by
        # rescaling the direction so the face's dominant component is ±1
        if face == 0:      # (1, tan a, tan b)
            a = np.arctan(ys / xs)
            b = np.arctan(zs / xs)
        elif face == 1:    # (-tan a, 1, tan b)
            a = np.arctan(-xs / ys)
            b = np.arctan(zs / ys)
        elif face == 2:    # (-1, -tan a, tan b); divide by -x > 0
            a = np.arctan(ys / xs)       # -tan a = y/(-x)
            b = np.arctan(-zs / xs)      # tan b = z/(-x)
        elif face == 3:    # (tan a, -1, tan b); divide by -y > 0
            a = np.arctan(-xs / ys)
            b = np.arctan(-zs / ys)
        elif face == 4:    # (-tan b, tan a, 1)
            a = np.arctan(ys / zs)
            b = np.arctan(-xs / zs)
        else:              # face 5: (tan b, tan a, -1); divide by -z > 0
            a = np.arctan(-ys / zs)
            b = np.arctan(-xs / zs)
        # fractional pixel coords on the face (cell-centred inverse)
        ca = (a + _QUARTER_PI) / step - 0.5
        cb = (b + _QUARTER_PI) / step - 0.5
        out[sel] = _bilinear_clamped(faces[face], cb, ca)
    return out


def _bilinear_clamped(face: np.ndarray, row: np.ndarray,
                      col: np.ndarray) -> np.ndarray:
    """Bilinear sample with clamped borders (single cube face)."""
    n = face.shape[0]
    r0 = np.floor(row).astype(np.int64)
    c0 = np.floor(col).astype(np.int64)
    fr = row - r0
    fc = col - c0
    r0c = np.clip(r0, 0, n - 1)
    r1c = np.clip(r0 + 1, 0, n - 1)
    c0c = np.clip(c0, 0, n - 1)
    c1c = np.clip(c0 + 1, 0, n - 1)
    f00 = face[r0c, c0c]
    f01 = face[r0c, c1c]
    f10 = face[r1c, c0c]
    f11 = face[r1c, c1c]
    return ((1 - fr) * ((1 - fc) * f00 + fc * f01)
            + fr * ((1 - fc) * f10 + fc * f11))
