"""Dataset containers and windowing utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["DatasetInfo", "SpatiotemporalDataset", "train_test_windows"]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata mirroring Table 1 of the paper."""

    name: str
    domain: str
    paper_shape: Tuple[int, ...]   # (vars, T, H, W) as published
    paper_size_gb: float           # as published (decimal GB)
    dtype_bytes: int = 4           # element size implied by the paper's GB

    @property
    def paper_size_bytes(self) -> int:
        return int(np.prod(self.paper_shape)) * self.dtype_bytes

    def computed_size_gb(self) -> float:
        """Size implied by the published shape, in decimal GB.

        The paper's Table 1 totals are consistent with float32 for E3SM
        and float64 for S3D/JHTDB (``dtype_bytes`` records which).
        """
        return self.paper_size_bytes / 1e9


class SpatiotemporalDataset:
    """Base class for synthetic generators.

    Subclasses implement :meth:`_generate` returning frames ``(T, H,
    W)`` for one variable index.  Generation is deterministic in
    ``(seed, variable)``.
    """

    info: DatasetInfo

    def __init__(self, t: int, h: int, w: int, num_vars: int = 1,
                 seed: int = 0):
        if t < 1 or h < 4 or w < 4:
            raise ValueError(f"degenerate shape ({t}, {h}, {w})")
        self.t, self.h, self.w = t, h, w
        self.num_vars = num_vars
        self.seed = seed

    # -- public API -------------------------------------------------------
    def frames(self, variable: int = 0) -> np.ndarray:
        """Return ``(T, H, W)`` float64 frames for one variable."""
        if not (0 <= variable < self.num_vars):
            raise ValueError(
                f"variable {variable} outside [0, {self.num_vars})")
        rng = np.random.default_rng((self.seed, variable, 0xD1FF))
        out = self._generate(rng, variable)
        assert out.shape == (self.t, self.h, self.w)
        return out

    def normalized_frames(self, variable: int = 0) -> np.ndarray:
        """Frames scaled per-frame to zero mean and unit range.

        Matches Sec. 4.3: "we normalize each frame independently to
        have zero mean and unit range" (scientific data spans up to
        ±1e10).
        """
        x = self.frames(variable)
        mean = x.mean(axis=(1, 2), keepdims=True)
        rng_ = (x.max(axis=(1, 2), keepdims=True)
                - x.min(axis=(1, 2), keepdims=True))
        rng_ = np.where(rng_ < 1e-30, 1.0, rng_)
        return (x - mean) / rng_

    def _generate(self, rng: np.random.Generator,
                  variable: int) -> np.ndarray:
        raise NotImplementedError

    def to_spec(self):
        """Portable :class:`~repro.data.registry.DatasetSpec` of this
        instance (picklable, cheap to ship to workers)."""
        from .registry import spec_of  # local: registry imports base
        return spec_of(self)


def train_test_windows(frames: np.ndarray, window: int,
                       train_fraction: float = 0.5,
                       stride: int = None
                       ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Chronologically split frames into train/test windows.

    Windows are ``(window, H, W)`` slices; the split is temporal (train
    on early simulation time, evaluate on later time) to avoid leakage.
    """
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must be in (0, 1)")
    stride = stride or window
    t = frames.shape[0]
    if t < 2 * window:
        raise ValueError(
            f"need at least {2 * window} frames for a split, got {t}")
    cut = max(window, int(t * train_fraction))
    train = [frames[s:s + window]
             for s in range(0, cut - window + 1, stride)]
    test = [frames[s:s + window]
            for s in range(cut, t - window + 1, stride)]
    if not test:
        test = [frames[t - window:]]
    return train, test
