"""Synthetic climate fields standing in for E3SM output.

E3SM's high-resolution atmosphere produces smooth, strongly
time-coherent fields: planetary-scale waves with slowly drifting
mesoscale anomalies.  The generator superposes

* a few large-scale standing/travelling waves (the zonal structure),
* a population of Gaussian anomalies advected by a constant zonal
  "wind" with slow amplitude breathing,

which gives the high temporal correlation that makes keyframe
interpolation so effective on climate data (the paper's largest-win
dataset family).  Values are scaled to a physically-plausible range
(e.g. surface temperature in Kelvin) to exercise the per-frame
normalization path.
"""

from __future__ import annotations

import numpy as np

from .base import DatasetInfo, SpatiotemporalDataset
from .registry import register_dataset

__all__ = ["E3SMSynthetic"]


@register_dataset("e3sm")
class E3SMSynthetic(SpatiotemporalDataset):
    """Climate-like smooth advecting fields."""

    info = DatasetInfo(
        name="E3SM", domain="Climate",
        paper_shape=(5, 8640, 240, 1440), paper_size_gb=59.7)

    def __init__(self, t: int = 48, h: int = 32, w: int = 32,
                 num_vars: int = 5, seed: int = 0, num_blobs: int = 6,
                 drift: float = 0.8, base_level: float = 287.0,
                 amplitude: float = 15.0):
        super().__init__(t, h, w, num_vars, seed)
        self.num_blobs = num_blobs
        self.drift = drift
        self.base_level = base_level
        self.amplitude = amplitude

    def _generate(self, rng: np.random.Generator,
                  variable: int) -> np.ndarray:
        t, h, w = self.t, self.h, self.w
        yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        out = np.zeros((t, h, w))

        # planetary waves: low zonal wavenumbers travelling west->east
        n_waves = 3
        wave_k = rng.integers(1, 4, size=n_waves)
        wave_l = rng.integers(0, 3, size=n_waves)
        wave_amp = rng.uniform(0.3, 1.0, size=n_waves)
        wave_speed = rng.uniform(0.2, 0.6, size=n_waves)
        wave_phase = rng.uniform(0, 2 * np.pi, size=n_waves)

        # mesoscale anomalies: drifting Gaussian blobs
        bx = rng.uniform(0, w, size=self.num_blobs)
        by = rng.uniform(0, h, size=self.num_blobs)
        bs = rng.uniform(0.08, 0.2, size=self.num_blobs) * min(h, w)
        ba = rng.uniform(-1.0, 1.0, size=self.num_blobs)
        bfreq = rng.uniform(0.02, 0.08, size=self.num_blobs)

        for ti in range(t):
            frame = np.zeros((h, w))
            for i in range(n_waves):
                frame += wave_amp[i] * np.sin(
                    2 * np.pi * (wave_k[i] * xx / w - wave_speed[i] * ti / 10)
                    + wave_l[i] * 2 * np.pi * yy / h + wave_phase[i])
            for b in range(self.num_blobs):
                cx = (bx[b] + self.drift * ti) % w
                amp = ba[b] * (1.0 + 0.3 * np.sin(2 * np.pi * bfreq[b] * ti))
                # periodic zonal distance (wrap-around like longitude)
                dx = np.minimum(np.abs(xx - cx), w - np.abs(xx - cx))
                dy = yy - by[b]
                frame += amp * np.exp(-(dx * dx + dy * dy)
                                      / (2.0 * bs[b] * bs[b]))
            out[ti] = frame
        # meridional gradient (poles colder), variable-dependent offset
        background = -np.cos(np.pi * yy / max(h - 1, 1)) * 0.8
        out += background
        return self.base_level + (variable + 1) * 0.1 + self.amplitude * out
