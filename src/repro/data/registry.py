"""Decorator-based dataset registry (the data-side twin of
:mod:`repro.codecs.registry`).

Every synthetic generator registers itself under a short stable name::

    @register_dataset("s3d")
    class S3DSynthetic(SpatiotemporalDataset):
        ...

and callers obtain ready instances through :func:`get_dataset`::

    ds = get_dataset("s3d", t=16, seed=3)
    frames = ds.frames(0)

The registry is what the CLI (``repro datasets``, ``--dataset NAME``),
the shard planner and the benchmark grids iterate over — adding a
dataset is one decorated class, everything downstream picks it up.

:class:`DatasetSpec` is the *portable* form of a dataset: a frozen,
picklable record (name + shape + seed + extra generator parameters)
that is cheap to ship to process-pool workers, where
:func:`dataset_from_spec` rebuilds the generator.  Because generation
is deterministic in ``(seed, variable)``, a spec round-trip reproduces
frames bit-for-bit on any worker.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Tuple, Type

from .base import SpatiotemporalDataset

__all__ = ["DatasetSpec", "DatasetEntry", "register_dataset",
           "get_dataset", "get_dataset_spec", "list_datasets",
           "dataset_entries", "dataset_from_spec", "spec_of"]

#: constructor parameters every :class:`SpatiotemporalDataset` shares;
#: anything else in a subclass signature is a generator parameter and
#: travels in :attr:`DatasetSpec.params`.
_COMMON_PARAMS = ("t", "h", "w", "num_vars", "seed")


@dataclass(frozen=True)
class DatasetSpec:
    """Picklable recipe for one dataset instance.

    ``params`` holds the generator-specific constructor kwargs as a
    sorted tuple of ``(name, value)`` pairs so the spec is hashable and
    its repr is stable (used as a cache key by process workers).
    """

    name: str
    t: int
    h: int
    w: int
    num_vars: int = 1
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        """Full ``(vars, T, H, W)`` extent this spec generates."""
        return (self.num_vars, self.t, self.h, self.w)

    def kwargs(self) -> Dict[str, Any]:
        """Constructor kwargs reproducing the instance."""
        out = {"t": self.t, "h": self.h, "w": self.w,
               "num_vars": self.num_vars, "seed": self.seed}
        out.update(dict(self.params))
        return out

    def build(self) -> SpatiotemporalDataset:
        """Instantiate the generator this spec describes."""
        return dataset_from_spec(self)

    def override(self, **changes) -> "DatasetSpec":
        """Spec with some fields replaced (extra kwargs go to params)."""
        common = {k: v for k, v in changes.items()
                  if k in _COMMON_PARAMS or k == "name"}
        extra = {k: v for k, v in changes.items() if k not in common}
        spec = replace(self, **common) if common else self
        if extra:
            merged = dict(spec.params)
            merged.update(extra)
            spec = replace(spec, params=tuple(sorted(merged.items())))
        return spec


@dataclass(frozen=True)
class DatasetEntry:
    """One registry row: generator class plus registration defaults."""

    name: str
    cls: Type[SpatiotemporalDataset]
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def build(self, **kwargs) -> SpatiotemporalDataset:
        merged = {**self.defaults, **kwargs}
        return self.cls(**merged)


_REGISTRY: Dict[str, DatasetEntry] = {}


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_dataset(name: str, **defaults) -> Callable[
        [Type[SpatiotemporalDataset]], Type[SpatiotemporalDataset]]:
    """Class decorator: register ``cls`` under ``name``.

    ``defaults`` are constructor kwargs applied by :func:`get_dataset`
    unless overridden by the caller.
    """
    key = _canonical(name)

    def deco(cls: Type[SpatiotemporalDataset]
             ) -> Type[SpatiotemporalDataset]:
        if key in _REGISTRY:
            raise ValueError(f"dataset {key!r} is already registered "
                             f"(by {_REGISTRY[key].cls.__name__})")
        if not issubclass(cls, SpatiotemporalDataset):
            raise TypeError(f"{cls.__name__} is not a "
                            f"SpatiotemporalDataset")
        cls.dataset_id = key
        _REGISTRY[key] = DatasetEntry(name=key, cls=cls, defaults=defaults)
        return cls

    return deco


def get_dataset(name: str, **overrides) -> SpatiotemporalDataset:
    """Instantiate the dataset registered under ``name``.

    ``overrides`` replace the registered defaults and the class's own
    constructor defaults (e.g. ``t=16, seed=3``).
    """
    key = _canonical(name)
    entry = _REGISTRY.get(key)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown dataset {name!r}; registered: {known}")
    return entry.build(**overrides)


def get_dataset_spec(name: str, **overrides) -> DatasetSpec:
    """Portable :class:`DatasetSpec` for a registered dataset."""
    return spec_of(get_dataset(name, **overrides))


def list_datasets() -> List[str]:
    """Sorted names of every registered dataset."""
    return sorted(_REGISTRY)


def dataset_entries() -> Dict[str, DatasetEntry]:
    """Snapshot of the registry (name -> entry)."""
    return dict(_REGISTRY)


def dataset_from_spec(spec: DatasetSpec) -> SpatiotemporalDataset:
    """Rebuild the generator a :class:`DatasetSpec` describes.

    Inverse of :func:`spec_of`; the round-trip is exact because specs
    capture every constructor parameter.
    """
    key = _canonical(spec.name)
    entry = _REGISTRY.get(key)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"spec names unknown dataset {spec.name!r}; "
                       f"registered: {known}")
    return entry.cls(**spec.kwargs())


def spec_of(dataset: SpatiotemporalDataset) -> DatasetSpec:
    """Extract the portable spec of a registered dataset instance.

    Generator parameters are read off the instance by constructor-
    signature introspection, which relies on the repo-wide convention
    that every ``__init__`` parameter is stored under the same
    attribute name.
    """
    name = getattr(type(dataset), "dataset_id", None)
    if name is None:
        raise TypeError(f"{type(dataset).__name__} is not a registered "
                        f"dataset (no @register_dataset decorator)")
    params = {}
    sig = inspect.signature(type(dataset).__init__)
    for pname in sig.parameters:
        if pname == "self" or pname in _COMMON_PARAMS:
            continue
        if not hasattr(dataset, pname):
            raise TypeError(
                f"{type(dataset).__name__}.{pname} is a constructor "
                f"parameter but not an instance attribute; cannot "
                f"build a faithful DatasetSpec")
        params[pname] = getattr(dataset, pname)
    return DatasetSpec(name=name, t=dataset.t, h=dataset.h, w=dataset.w,
                       num_vars=dataset.num_vars, seed=dataset.seed,
                       params=tuple(sorted(params.items())))
