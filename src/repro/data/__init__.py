"""``repro.data`` — synthetic stand-ins for the paper's datasets.

The paper evaluates on E3SM (climate), S3D (combustion) and JHTDB
(turbulence) — tens of GB of simulation output we cannot ship offline.
Each generator here synthesizes fields with the statistical character
that matters to the compressor (see DESIGN.md §2 for the substitution
rationale), is fully seeded, and records the paper-scale shape and
size for the Table 1 reproduction.

Generators register themselves with :mod:`repro.data.registry`
(``@register_dataset``), the data-side twin of the codec registry: the
CLI, the shard planner and the benchmark grids all iterate
:func:`list_datasets` / build through :func:`get_dataset`, and
:class:`DatasetSpec` gives every dataset a picklable form that
process-pool workers rebuild bit-identically.
"""

from .base import DatasetInfo, SpatiotemporalDataset, train_test_windows
from .registry import (DatasetEntry, DatasetSpec, dataset_entries,
                       dataset_from_spec, get_dataset, get_dataset_spec,
                       list_datasets, register_dataset, spec_of)

# Importing the generator modules populates the registry.
from .e3sm import E3SMSynthetic
from .jhtdb import JHTDBSynthetic
from .projection import cube_to_latlon, latlon_to_cube
from .s3d import S3DSynthetic

__all__ = ["DatasetInfo", "SpatiotemporalDataset", "train_test_windows",
           "E3SMSynthetic", "S3DSynthetic", "JHTDBSynthetic",
           "latlon_to_cube", "cube_to_latlon",
           "DatasetSpec", "DatasetEntry", "register_dataset",
           "get_dataset", "get_dataset_spec", "list_datasets",
           "dataset_entries", "dataset_from_spec", "spec_of",
           "DATASETS"]

#: Legacy name -> class mapping (kept for existing callers; the
#: registry is the source of truth).
DATASETS = {name: entry.cls for name, entry in dataset_entries().items()}
