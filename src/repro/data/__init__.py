"""``repro.data`` — synthetic stand-ins for the paper's datasets.

The paper evaluates on E3SM (climate), S3D (combustion) and JHTDB
(turbulence) — tens of GB of simulation output we cannot ship offline.
Each generator here synthesizes fields with the statistical character
that matters to the compressor (see DESIGN.md §2 for the substitution
rationale), is fully seeded, and records the paper-scale shape and
size for the Table 1 reproduction.
"""

from .base import DatasetInfo, SpatiotemporalDataset, train_test_windows
from .e3sm import E3SMSynthetic
from .jhtdb import JHTDBSynthetic
from .projection import cube_to_latlon, latlon_to_cube
from .s3d import S3DSynthetic

__all__ = ["DatasetInfo", "SpatiotemporalDataset", "train_test_windows",
           "E3SMSynthetic", "S3DSynthetic", "JHTDBSynthetic",
           "latlon_to_cube", "cube_to_latlon",
           "DATASETS"]

#: Registry used by examples and the benchmark harness.
DATASETS = {
    "e3sm": E3SMSynthetic,
    "s3d": S3DSynthetic,
    "jhtdb": JHTDBSynthetic,
}
