"""Synthetic combustion-ignition fields standing in for S3D.

The S3D benchmark captures homogeneous-charge compression ignition of
an n-heptane/air mixture: hot ignition kernels appear at temperature
inhomogeneities, expand as sharp reaction fronts and eventually merge.
The generator reproduces that morphology with a logistic front model:

* ``K`` ignition kernels with random centers, onset times and growth
  rates;
* each kernel contributes a radially expanding sigmoid front (sharp
  spatial gradient, monotone temporal growth);
* "species" channels are nonlinearly transformed copies with distinct
  saturation behaviour, mimicking the 58-species mechanism where major
  and minor species track the same fronts at different scales.
"""

from __future__ import annotations

import numpy as np

from .base import DatasetInfo, SpatiotemporalDataset
from .registry import register_dataset

__all__ = ["S3DSynthetic"]


@register_dataset("s3d")
class S3DSynthetic(SpatiotemporalDataset):
    """Combustion-like expanding sharp fronts."""

    info = DatasetInfo(
        name="S3D", domain="Combustion",
        paper_shape=(58, 200, 512, 512), paper_size_gb=24.3, dtype_bytes=8)

    def __init__(self, t: int = 48, h: int = 32, w: int = 32,
                 num_vars: int = 8, seed: int = 0, num_kernels: int = 5,
                 front_sharpness: float = 4.0):
        super().__init__(t, h, w, num_vars, seed)
        self.num_kernels = num_kernels
        self.front_sharpness = front_sharpness

    def _generate(self, rng: np.random.Generator,
                  variable: int) -> np.ndarray:
        # kernels are shared across species for physical consistency:
        # re-derive them from the *dataset* seed, not the variable seed.
        krng = np.random.default_rng((self.seed, 0x53D))
        t, h, w = self.t, self.h, self.w
        yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")

        cx = krng.uniform(0.15 * w, 0.85 * w, size=self.num_kernels)
        cy = krng.uniform(0.15 * h, 0.85 * h, size=self.num_kernels)
        onset = krng.uniform(0.0, 0.4 * t, size=self.num_kernels)
        speed = krng.uniform(0.015, 0.04, size=self.num_kernels) * min(h, w)

        sharp = self.front_sharpness
        progress = np.zeros((t, h, w))
        for k in range(self.num_kernels):
            r = np.sqrt((xx - cx[k]) ** 2 + (yy - cy[k]) ** 2)
            for ti in range(t):
                radius = max(0.0, (ti - onset[k])) * speed[k]
                # sigmoid front: ~1 inside the burned region, ~0 outside
                front = 1.0 / (1.0 + np.exp(sharp * (r - radius)))
                progress[ti] = np.maximum(progress[ti], front)

        # species-dependent response to the progress variable
        vrng = np.random.default_rng((self.seed, variable, 0x53D))
        kind = variable % 4
        scale = 10.0 ** vrng.uniform(-3, 1)  # species span decades
        noise = vrng.normal(0, 0.01, size=(t, h, w))
        if kind == 0:       # fuel-like: consumed by the front
            field = (1.0 - progress)
        elif kind == 1:     # product-like: created by the front
            field = progress
        elif kind == 2:     # intermediate radical: peaks at the front
            field = progress * (1.0 - progress) * 4.0
        else:               # temperature-like: offset + rise
            field = 0.3 + 0.7 * progress
        return scale * (field + noise)
