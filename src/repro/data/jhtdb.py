"""Synthetic isotropic turbulence standing in for the JHTDB subset.

The JHTDB isotropic-turbulence DNS has broadband spatial spectra
(Kolmogorov ``k^{-5/3}`` inertial range) and only *partial* temporal
coherence — eddies advect and decorrelate.  The generator uses spectral
synthesis:

* a 2-D random field with prescribed ``E(k) ∝ k^{-5/3}`` power spectrum
  (random Fourier phases);
* temporal evolution by uniform advection (Taylor's frozen-flow
  hypothesis) plus an Ornstein–Uhlenbeck phase diffusion whose rate
  grows with wavenumber — small scales decorrelate faster, exactly the
  property that makes turbulence the hardest dataset for generative
  interpolation (the paper's smallest-win case).
"""

from __future__ import annotations

import numpy as np

from .base import DatasetInfo, SpatiotemporalDataset
from .registry import register_dataset

__all__ = ["JHTDBSynthetic"]


@register_dataset("jhtdb")
class JHTDBSynthetic(SpatiotemporalDataset):
    """Turbulence-like broadband fields with scale-dependent decorrelation."""

    info = DatasetInfo(
        name="JHTDB", domain="Turbulence",
        paper_shape=(64, 256, 512, 512), paper_size_gb=34.3, dtype_bytes=8)

    def __init__(self, t: int = 48, h: int = 32, w: int = 32,
                 num_vars: int = 3, seed: int = 0,
                 spectrum_slope: float = -5.0 / 3.0,
                 advection: float = 1.0, decorrelation: float = 0.02):
        super().__init__(t, h, w, num_vars, seed)
        self.spectrum_slope = spectrum_slope
        self.advection = advection
        self.decorrelation = decorrelation

    def _generate(self, rng: np.random.Generator,
                  variable: int) -> np.ndarray:
        t, h, w = self.t, self.h, self.w
        ky = np.fft.fftfreq(h)[:, None] * h
        kx = np.fft.fftfreq(w)[None, :] * w
        k = np.sqrt(kx * kx + ky * ky)
        k[0, 0] = 1.0
        # amplitude spectrum: E(k) ~ k^slope  =>  |A(k)| ~ k^((slope-1)/2)
        # in 2-D (angle-integrated shell contains 2*pi*k modes)
        amp = k ** ((self.spectrum_slope - 1.0) / 2.0)
        amp[0, 0] = 0.0
        kmax = 0.5 * min(h, w)
        amp[k > kmax * 0.9] = 0.0  # dealias the corner modes

        phase0 = rng.uniform(0, 2 * np.pi, size=(h, w))
        coeff = amp * np.exp(1j * phase0)

        # scale-dependent OU decorrelation rate
        gamma = self.decorrelation * (k / k.max()) ** (2.0 / 3.0)
        out = np.empty((t, h, w))
        for ti in range(t):
            field = np.fft.ifft2(coeff).real
            out[ti] = field
            # advect: multiply by exp(-i kx * u dt); decorrelate: OU step
            adv = np.exp(-2j * np.pi * kx * self.advection / w)
            decay = np.exp(-gamma)
            innovation = (rng.normal(size=(h, w))
                          + 1j * rng.normal(size=(h, w)))
            coeff = (coeff * adv * decay
                     + amp * np.sqrt(np.maximum(1 - decay ** 2, 0.0))
                     * innovation / np.sqrt(2.0))
        # normalize to unit variance, velocity-like units
        out /= max(out.std(), 1e-12)
        return out
