"""Small shared utilities used across otherwise-independent layers."""

from .lru import LRUCache

__all__ = ["LRUCache"]
