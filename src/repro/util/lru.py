"""One thread-safe LRU to rule the caches.

Three subsystems independently grew the same ``OrderedDict`` + lock
LRU: the entropy layer's :class:`~repro.entropy.tablecoder.TableCache`
(coding-table memoization), the service's
:class:`~repro.service.cache.ResultCache` (content-addressed result
objects) and its :class:`~repro.service.queue.ClientRateLimiter`
(per-client token buckets).  :class:`LRUCache` is the shared core they
now wrap: recency-ordered entries bounded by **entry count** and by
**total byte size**, with hit/miss counters and an eviction callback.

Design points the wrappers rely on:

* the lock is a *public* ``RLock`` (``cache.lock``) so callers can
  compose several primitive operations atomically (check disk state
  between membership test and recency bump, build-a-value-under-lock,
  ...) without a second layer of locking;
* :meth:`put` never evicts the entry being inserted — an oversized
  newcomer pushes everything else out and then survives alone, the
  semantics the table cache and result cache both shipped with;
* the eviction callback fires only for *bound-driven* eviction, not
  for explicit :meth:`pop`/:meth:`clear` — removing an entry you
  already know about is the caller's cleanup, eviction is the
  cache's;
* counters survive :meth:`clear` (warm-vs-cold assertions in the
  entropy suite depend on it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Iterator, Optional

__all__ = ["LRUCache"]

#: eviction callback signature: ``(key, value, nbytes)``
EvictFn = Callable[[Hashable, Any, int], None]


class LRUCache:
    """Thread-safe LRU bounded by entry count and total bytes.

    ``max_entries`` / ``max_bytes`` of ``None`` leave that bound off;
    when given they must admit at least one entry.  ``on_evict`` is
    called (under the lock) for every entry dropped by bound-driven
    eviction.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 on_evict: Optional[EvictFn] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        #: public reentrant lock for compound operations
        self.lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._nbytes: Dict[Hashable, int] = {}
        self._bytes = 0

    # -- primitive operations -------------------------------------------
    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` without touching recency or counters."""
        with self.lock:
            return self._entries.get(key, default)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key``, bumping recency and counting hit/miss."""
        with self.lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return default

    def touch(self, key: Hashable) -> None:
        """Bump ``key`` to most-recently-used (no counters)."""
        with self.lock:
            if key in self._entries:
                self._entries.move_to_end(key)

    def put(self, key: Hashable, value: Any, nbytes: int = 0) -> None:
        """Insert/replace ``key`` as MRU, then evict down to bounds.

        The entry being inserted is never the one evicted, even when
        it alone exceeds ``max_bytes``.
        """
        with self.lock:
            if key in self._entries:
                self._bytes -= self._nbytes.pop(key)
                del self._entries[key]
            self._entries[key] = value
            self._nbytes[key] = int(nbytes)
            self._bytes += int(nbytes)
            self._evict_locked(keep=key)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key`` (no eviction callback)."""
        with self.lock:
            if key not in self._entries:
                return default
            self._bytes -= self._nbytes.pop(key)
            return self._entries.pop(key)

    def get_or_build(self, key: Hashable, build: Callable[[], Any],
                     nbytes: Callable[[Any], int] = lambda v: 0) -> Any:
        """Cached value for ``key``, building (and caching) on a miss.

        The build runs *under the lock*: concurrent callers sharing a
        key wait for one build instead of duplicating it (the table
        cache's contract — builds are expensive, values immutable).
        """
        with self.lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            value = build()
            self.put(key, value, nbytes=nbytes(value))
            return value

    # -- eviction -------------------------------------------------------
    def _evict_locked(self, keep: Optional[Hashable] = None) -> None:
        while self._entries and (
                (self.max_entries is not None
                 and len(self._entries) > self.max_entries)
                or (self.max_bytes is not None
                    and self._bytes > self.max_bytes)):
            oldest = next(iter(self._entries))
            if oldest == keep:
                if len(self._entries) == 1:
                    break  # never evict the entry being kept
                self._entries.move_to_end(oldest)
                continue
            value = self._entries.pop(oldest)
            size = self._nbytes.pop(oldest)
            self._bytes -= size
            if self.on_evict is not None:
                self.on_evict(oldest, value, size)

    def evict(self, keep: Optional[Hashable] = None) -> None:
        """Evict down to bounds now (normally automatic on put)."""
        with self.lock:
            self._evict_locked(keep=keep)

    def clear(self) -> None:
        """Drop every entry; hit/miss counters survive."""
        with self.lock:
            self._entries.clear()
            self._nbytes.clear()
            self._bytes = 0

    # -- introspection --------------------------------------------------
    @property
    def bytes(self) -> int:
        with self.lock:
            return self._bytes

    def __contains__(self, key: Hashable) -> bool:
        with self.lock:
            return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[Hashable]:
        """Snapshot of keys, LRU-first."""
        with self.lock:
            return iter(list(self._entries))

    def stats(self) -> Dict[str, int]:
        with self.lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries), "bytes": self._bytes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LRUCache entries={len(self._entries)} "
                f"bytes={self._bytes} max_entries={self.max_entries} "
                f"max_bytes={self.max_bytes}>")
