"""repro — reproduction of "Generative Latent Diffusion for Efficient
Spatiotemporal Data Reduction" (Li, Zhu, Rangarajan, Ranka — SC'25).

Public API
----------
Most users need only:

>>> from repro import small, train_compressor
>>> from repro.data import E3SMSynthetic
>>> from repro.data.base import train_test_windows
>>> ds = E3SMSynthetic(t=32, h=32, w=32)
>>> train, test = train_test_windows(ds.frames(0), window=8)
>>> compressor = train_compressor(small(), train)     # doctest: +SKIP
>>> result = compressor.compress(ds.frames(0), nrmse_bound=1e-3)  # doctest: +SKIP
>>> result.ratio                                      # doctest: +SKIP

Subpackages: :mod:`repro.nn` (NumPy autodiff substrate),
:mod:`repro.entropy` (arithmetic coding + priors),
:mod:`repro.compression` (VAE + hyperprior), :mod:`repro.diffusion`
(conditional latent DDPM), :mod:`repro.postprocess` (error-bound
guarantee), :mod:`repro.pipeline` (end-to-end compressor),
:mod:`repro.baselines` (SZ3/ZFP/CDC/GCD/VAE-SR analogues),
:mod:`repro.data` (synthetic datasets).
"""

from .config import (DiffusionConfig, PipelineConfig, ReproConfig, VAEConfig,
                     paper, small, tiny)
from .metrics import (CompressionAccounting, compression_ratio,
                      decorrelation_time, mse, nrmse, psnr, rmse, ssim,
                      temporal_autocorrelation)
from .pipeline import (ArtifactManifest, ArtifactStore, BatchResult,
                       CodecEngine, CompressedBlob, CompressionResult,
                       LatentDiffusionCompressor, MultiVarArchive,
                       MultiVariableCompressor, MultiVarResult,
                       StreamArchive, StreamingCompressor,
                       TrainingConfig, TwoStageTrainer, load_artifact,
                       load_bundle, save_artifact, save_bundle,
                       train_compressor)
from .codecs import (Codec, CodecResult, as_codec, get_codec, list_codecs,
                     register_codec)

__version__ = "1.2.0"

__all__ = [
    "VAEConfig", "DiffusionConfig", "PipelineConfig", "ReproConfig",
    "tiny", "small", "paper",
    "nrmse", "rmse", "mse", "psnr", "ssim", "temporal_autocorrelation",
    "decorrelation_time", "CompressionAccounting", "compression_ratio",
    "LatentDiffusionCompressor", "CompressionResult", "CompressedBlob",
    "TwoStageTrainer", "TrainingConfig", "train_compressor",
    "save_bundle", "load_bundle",
    "ArtifactStore", "ArtifactManifest", "save_artifact", "load_artifact",
    "CodecEngine", "BatchResult",
    "Codec", "CodecResult", "register_codec", "get_codec", "list_codecs",
    "as_codec",
    "StreamingCompressor", "StreamArchive",
    "MultiVariableCompressor", "MultiVarArchive", "MultiVarResult",
    "__version__",
]
