"""repro — reproduction of "Generative Latent Diffusion for Efficient
Spatiotemporal Data Reduction" (Li, Zhu, Rangarajan, Ranka — SC'25).

Public API
----------
The front door is :class:`repro.Session` — one facade over every
pipeline (single stacks, dataset sweeps, multi-variable sets, frame
streams) — together with :class:`repro.Archive` (every container
format behind one loader) and :class:`repro.Bound` (error bounds as
values, not string kwargs):

>>> import numpy as np
>>> from repro import Session, Archive, Bound
>>> frames = np.linspace(0.0, 1.0, 6 * 8 * 8).reshape(6, 8, 8)
>>> with Session(codec="szlike") as session:
...     archive = session.compress(frames, bound=Bound.nrmse(1e-3))
...     restored = session.decompress(archive)
>>> bool(np.max(np.abs(restored - frames)) <= 1e-3)
True
>>> Archive.open(archive.to_bytes()).codecs()
['szlike']

The same ``compress`` call accepts a registered dataset name (sharded
sweep over the session's executor backend), a ``{name: stack}``
mapping (multi-variable archive) or a frame iterator (constant-memory
streaming) — see :mod:`repro.api`.

Subpackages: :mod:`repro.nn` (NumPy autodiff substrate),
:mod:`repro.entropy` (arithmetic coding + priors),
:mod:`repro.compression` (VAE + hyperprior), :mod:`repro.diffusion`
(conditional latent DDPM), :mod:`repro.postprocess` (error-bound
guarantee), :mod:`repro.pipeline` (end-to-end compressor, engine,
executors, artifact store), :mod:`repro.baselines`
(SZ3/ZFP/CDC/GCD/VAE-SR analogues), :mod:`repro.data` (synthetic
datasets).

Deprecated top-level names: importing ``MultiVariableCompressor`` or
``StreamingCompressor`` from ``repro`` warns — route multi-variable
and streaming workloads through :meth:`Session.compress` (or import
the classes from :mod:`repro.pipeline` directly).
"""

import warnings as _warnings

from .config import (DiffusionConfig, PipelineConfig, ReproConfig, VAEConfig,
                     paper, small, tiny)
from .metrics import (CompressionAccounting, compression_ratio,
                      decorrelation_time, mse, nrmse, psnr, rmse, ssim,
                      temporal_autocorrelation)
from .pipeline import (ArtifactManifest, ArtifactStore, BatchResult,
                       CodecEngine, CompressedBlob, CompressionResult,
                       LatentDiffusionCompressor, MultiVarArchive,
                       MultiVarResult, StreamArchive, TrainingConfig,
                       TwoStageTrainer, load_artifact, load_bundle,
                       save_artifact, save_bundle, train_compressor)
from .codecs import (Codec, CodecResult, as_codec, get_codec, list_codecs,
                     register_codec)
from .api import Archive, Bound, Session, SessionError

__version__ = "1.4.0"

#: top-level names now served through Session; importing them from
#: ``repro`` still works but emits a DeprecationWarning
_DEPRECATED = {
    "MultiVariableCompressor":
        "route multi-variable workloads through repro.Session.compress"
        "({'name': stack, ...}) or import it from repro.pipeline",
    "StreamingCompressor":
        "route streaming workloads through repro.Session.compress"
        "(frame_iterator) or import it from repro.pipeline",
}


def __getattr__(name):
    if name in _DEPRECATED:
        _warnings.warn(
            f"repro.{name} is deprecated: {_DEPRECATED[name]}",
            DeprecationWarning, stacklevel=2)
        from . import pipeline
        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Session", "Archive", "Bound", "SessionError",
    "VAEConfig", "DiffusionConfig", "PipelineConfig", "ReproConfig",
    "tiny", "small", "paper",
    "nrmse", "rmse", "mse", "psnr", "ssim", "temporal_autocorrelation",
    "decorrelation_time", "CompressionAccounting", "compression_ratio",
    "LatentDiffusionCompressor", "CompressionResult", "CompressedBlob",
    "TwoStageTrainer", "TrainingConfig", "train_compressor",
    "save_bundle", "load_bundle",
    "ArtifactStore", "ArtifactManifest", "save_artifact", "load_artifact",
    "CodecEngine", "BatchResult",
    "Codec", "CodecResult", "register_codec", "get_codec", "list_codecs",
    "as_codec",
    "StreamingCompressor", "StreamArchive",
    "MultiVariableCompressor", "MultiVarArchive", "MultiVarResult",
    "__version__",
]
