"""The long-running compression service behind ``repro serve``.

:class:`CompressionService` stands the platform's one front door
(:class:`repro.api.Session`) up as an autonomous subsystem:

* **submission** — :meth:`submit` validates a job request, resolves it
  to canonical facts (dataset spec, codec spec, bound, entropy
  backend), admits it through the per-client rate limiter and the
  bounded queue (429-style rejections, never unbounded growth), and
  returns a :class:`~repro.service.jobs.Job` record with a
  deterministic id;
* **execution** — the shared :class:`repro.runtime.TaskRuntime` (the
  same substrate the pipeline executors dispatch through) pumps the
  queue into the session (which owns the executor backend, codec
  cache and seeds), so a served compress is *byte-identical* to the
  same ``Session.compress`` call in-process;
* **caching** — results land in the content-addressed
  :class:`~repro.service.cache.ResultCache`; a repeated identical
  request is answered at submission time from the cache (the job is
  born ``done`` with ``cache_hit=True``) without ever touching the
  queue;
* **observability** — every stage writes through one
  :class:`~repro.service.telemetry.MetricsRegistry`;
  :meth:`health` and :meth:`metrics_text` are what the HTTP layer
  serves;
* **shutdown** — :meth:`close` flips the service into *draining*
  (new submissions rejected with a 503-mapped error), waits for
  queued and running jobs, then releases the queue, the workers and
  the session — safe to call twice, safe to call from ``finally``.

:class:`ServiceClient` is the in-process twin of the HTTP client: the
same submit/wait/result surface without a socket, for tests and
scripting.
"""

from __future__ import annotations

import dataclasses
import io
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..api import Archive, Bound, Session, SessionError
from ..data.registry import get_dataset_spec
from ..runtime import TaskRuntime
from .cache import ResultCache
from .jobs import (Job, JobError, TERMINAL_STATES, job_id,
                   normalize_request, request_digest)
from .queue import (ClientRateLimiter, JobQueue, ServiceRejection)
from .telemetry import MetricsRegistry

__all__ = ["CompressionService", "ServiceClient", "ServiceError",
           "UnknownJobError", "ServiceClosedError"]

#: media types the jobs produce
MEDIA_ARCHIVE = "application/octet-stream"
MEDIA_NPY = "application/x-npy"
MEDIA_NPZ = "application/x-npz"

#: ``train`` request kwargs forwarded to :meth:`Session.train`
_TRAIN_KWARGS = ("preset", "vae_iters", "diffusion_iters", "sr_iters",
                 "finetune_iters", "lam", "train_fraction", "stride",
                 "window", "corrector")


class ServiceError(ValueError):
    """A malformed or unresolvable request (HTTP 400)."""


class UnknownJobError(KeyError):
    """No job with the given id (HTTP 404)."""


class ServiceClosedError(ServiceRejection):
    """The service is draining and rejects new work (HTTP 503)."""

    http_status = 503


def _parse_select(select):
    """JSON select value -> the :meth:`Session.decompress` selector.

    Ints and shard-id/variable-name strings pass through; ``"T0:T1"``
    strings become time-range slices; lists recurse.
    """
    if select is None:
        return None
    if isinstance(select, list):
        return [_parse_select(s) for s in select]
    if isinstance(select, str) and ":" in select:
        a, _, b = select.partition(":")
        try:
            return slice(int(a) if a else None, int(b) if b else None)
        except ValueError:
            raise ServiceError(f"bad select time range {select!r}; "
                               f"expected T0:T1") from None
    return select


def _parse_bound(bound) -> Optional[Bound]:
    """JSON bound value -> :class:`Bound` (dict, string, or number)."""
    if bound is None:
        return None
    try:
        if isinstance(bound, Bound):
            return bound
        if isinstance(bound, dict):
            return Bound(bound.get("kind", "nrmse"), bound["value"])
        return Bound.parse(bound)
    except (KeyError, ValueError, TypeError) as exc:
        raise ServiceError(f"bad bound {bound!r}: {exc}") from None


class CompressionService:
    """Job queue + worker pool + result cache over one ``Session``.

    Parameters
    ----------
    cache_dir:
        Root of the content-addressed result cache (created if
        missing).
    session:
        A ready :class:`~repro.api.Session`, or ``None`` to build one
        from ``session_kwargs``.  A session built here is owned (and
        closed) by the service; a passed-in session is borrowed and
        stays open.
    workers:
        Job worker threads (each drives the session's executor, so
        total parallelism is ``workers x session executor width``).
    max_queue:
        Bounded queue capacity; submissions beyond it are rejected.
    rate_limit / rate_burst:
        Per-client token-bucket admission (requests/second and burst
        depth); ``0`` disables limiting.
    cache_entries / cache_bytes:
        Result-cache LRU bounds.
    start:
        Start the worker threads immediately (tests pass ``False`` to
        observe queue states).
    """

    def __init__(self, cache_dir: Union[str, os.PathLike],
                 session: Optional[Session] = None, *,
                 workers: int = 2, max_queue: int = 64,
                 rate_limit: float = 0.0,
                 rate_burst: Optional[float] = None,
                 cache_entries: int = 256,
                 cache_bytes: int = 1 << 30,
                 registry: Optional[MetricsRegistry] = None,
                 start: bool = True,
                 **session_kwargs):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._owns_session = session is None
        self.session = session or Session(**session_kwargs)
        self.cache = ResultCache(cache_dir, max_entries=cache_entries,
                                 max_bytes=cache_bytes)
        self.queue = JobQueue(maxsize=max_queue)
        self.limiter = ClientRateLimiter(rate_limit, rate_burst)
        self.metrics = registry or MetricsRegistry()
        self.started_at = time.time()

        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._result_meta: Dict[str, Dict[str, Any]] = {}
        self._draining = threading.Event()
        self._closed = False
        self._num_workers = int(workers)
        # the shared task runtime pumps the JobQueue into _execute —
        # the same substrate the pipeline executors dispatch through
        self._runtime = TaskRuntime(mode="thread",
                                    max_workers=self._num_workers,
                                    name="repro-serve")

        m = self.metrics
        self._c_submitted = m.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted by the service, by type.")
        self._c_completed = m.counter(
            "repro_jobs_completed_total",
            "Jobs reaching a terminal state, by state and type.")
        self._c_rejected = m.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected by admission control, by reason.")
        self._c_cache_hits = m.counter(
            "repro_cache_hits_total",
            "Submissions answered from the result cache.")
        self._c_cache_misses = m.counter(
            "repro_cache_misses_total",
            "Submissions that had to be computed.")
        self._c_bytes_in = m.counter(
            "repro_bytes_in_total",
            "Request body bytes accepted.")
        self._c_bytes_out = m.counter(
            "repro_bytes_out_total",
            "Result bytes produced or served.")
        self._h_job_seconds = m.histogram(
            "repro_job_seconds",
            "Job execution wall clock, by type and codec.")
        m.gauge("repro_queue_depth",
                "Jobs waiting in the bounded queue.",
                callback=lambda: self.queue.depth)
        m.gauge("repro_jobs_inflight",
                "Jobs currently executing.",
                callback=lambda: self._runtime.inflight)
        m.gauge("repro_cache_entries",
                "Result-cache entries resident.",
                callback=lambda: len(self.cache))
        m.gauge("repro_cache_bytes",
                "Result-cache bytes resident.",
                callback=lambda: self.cache.stats()["bytes"])
        m.gauge("repro_uptime_seconds",
                "Seconds since service start.",
                callback=lambda: time.time() - self.started_at)
        self._g_jobs = m.gauge(
            "repro_jobs", "Known jobs by state.")

        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._runtime.start_workers(self.queue, self._execute)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Shut down: reject new work, settle existing, release.

        With ``drain=True`` (the SIGTERM path) queued and running jobs
        finish first (bounded by ``timeout`` seconds if given); with
        ``drain=False`` queued jobs are cancelled and only running
        ones are awaited.  Idempotent and exception-safe — the serve
        loop calls this from ``finally``.
        """
        self._draining.set()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                job = self.queue.get(timeout=0)
                if job is None:
                    break
                self._finish(job, "cancelled")
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while self.queue.depth or self._runtime.inflight:
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(0.01)
        self.queue.close()
        self._runtime.stop_workers(wait=True, timeout=10.0)
        self._runtime.close()
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "CompressionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------
    def submit(self, request: Dict[str, Any],
               client: str = "local") -> Job:
        """Admit one job request; returns its :class:`Job` record.

        Raises :class:`ServiceClosedError` while draining,
        :class:`~repro.service.queue.RateLimitedError` /
        :class:`~repro.service.queue.QueueFullError` on admission
        control, and :class:`ServiceError` for requests that cannot be
        resolved against the registries.
        """
        if self._draining.is_set():
            raise ServiceClosedError("service is draining; no new "
                                     "jobs accepted", retry_after=30.0)
        self.limiter.allow(client)
        try:
            normalized = normalize_request(request)
            facts = self._canonical_facts(normalized)
        except JobError:
            self._c_rejected.inc(reason="invalid")
            raise
        except ServiceError:
            self._c_rejected.inc(reason="invalid")
            raise
        digest = request_digest(facts)
        with self._lock:
            self._seq += 1
            job = Job(id=job_id(digest, self._seq),
                      type=normalized["type"], request=normalized,
                      digest=digest, client=client)
            self._jobs[job.id] = job

        cached = self.cache.get_path(digest)
        if cached is not None:
            self._c_cache_hits.inc()
            meta = self._result_meta.get(digest)
            size = os.path.getsize(cached)
            job.cache_hit = True
            job.result = dict(meta) if meta else {
                "bytes": size, "media_type": MEDIA_ARCHIVE}
            job.transition("done")
            self._c_submitted.inc(type=job.type)
            self._c_completed.inc(state="done", type=job.type)
            return job

        self._c_cache_misses.inc()
        try:
            self.queue.put(job)
        except ServiceRejection:
            with self._lock:
                self._jobs.pop(job.id, None)
            self._c_rejected.inc(reason="queue_full")
            raise
        self._c_submitted.inc(type=job.type)
        return job

    def _canonical_facts(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve a normalized request into the fully-canonical facts
        the digest (= cache key) is computed over: dataset spec, codec
        spec, bound, entropy backend and the deterministic knobs.  Two
        spellings of the same work share one digest; anything the
        registries cannot resolve raises :class:`ServiceError` at
        submission time (HTTP 400), not inside a worker.
        """
        job_type = req["type"]
        facts: Dict[str, Any] = {"type": job_type}
        try:
            if job_type in ("compress", "train"):
                spec = self._dataset_spec(req)
                facts["dataset"] = dataclasses.asdict(spec)
            if job_type == "compress":
                facts["codec"] = self._codec_spec(req.get("codec"))
                bound = _parse_bound(req.get("bound"))
                facts["bound"] = (None if bound is None
                                  else [bound.kind, bound.value])
                backend = (req.get("entropy_backend")
                           or self.session.entropy_backend
                           or "arithmetic")
                facts["entropy_backend"] = backend
                facts["variables"] = req.get("variables")
                facts["shards"] = req.get("shards")
                facts["seed"] = int(req.get("seed",
                                            self.session.seed))
            elif job_type == "decompress":
                facts["source"] = self._source_digest(req)
                facts["select"] = req.get("select")
                facts["expect_codec"] = req.get("expect_codec")
            else:  # train
                facts["codec"] = req["codec"]
                facts["variable"] = int(req.get("variable", 0))
                train = req.get("train") or {}
                if not isinstance(train, dict):
                    raise ServiceError("'train' must be an object of "
                                       "training kwargs")
                unknown = sorted(set(train) - set(_TRAIN_KWARGS))
                if unknown:
                    raise ServiceError(
                        f"unknown train kwargs {unknown}; allowed: "
                        f"{', '.join(_TRAIN_KWARGS)}")
                facts["train"] = {k: train[k] for k in sorted(train)}
                facts["seed"] = int(req.get("seed",
                                            self.session.seed))
        except (KeyError, ValueError, TypeError) as exc:
            if isinstance(exc, (ServiceError, UnknownJobError)):
                raise
            raise ServiceError(
                f"cannot resolve request: "
                f"{exc.args[0] if exc.args else exc}") from None
        return facts

    def _dataset_spec(self, req: Dict[str, Any]):
        overrides = dict(req.get("shape") or {})
        overrides.update(req.get("dataset_params") or {})
        return get_dataset_spec(req["dataset"], **overrides)

    def _codec_spec(self, codec: Optional[str]) -> Dict[str, Any]:
        try:
            resolved = self.session.resolve_codec(codec)
        except SessionError as exc:
            raise ServiceError(exc.args[0]) from None
        try:
            return resolved.to_spec()
        except TypeError:
            # wrapped/trained-in-memory codecs have no portable spec;
            # the codec name still keys the cache correctly within
            # this service instance
            return {"codec": resolved.name}

    def _source_digest(self, req: Dict[str, Any]) -> str:
        if req.get("digest"):
            return str(req["digest"])
        source = self.job(req["job"])
        if source.state != "done":
            raise ServiceError(
                f"decompress source job {source.id} is "
                f"{source.state}, not done")
        return source.digest

    # -- execution ------------------------------------------------------
    # (the runtime's pump workers drain self.queue into _execute;
    #  there is no bespoke _worker_loop anymore)
    def _execute(self, job: Job) -> None:
        try:
            job.transition("running")
        except JobError:
            return  # lost a cancellation race; nothing to do
        t0 = time.perf_counter()
        try:
            data, media, stats = self._dispatch(job)
            self.cache.put(job.digest, data)
        except Exception as exc:  # worker threads must never die
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, "failed")
            return
        elapsed = time.perf_counter() - t0
        result = {"bytes": len(data), "media_type": media, **stats}
        with self._lock:
            self._result_meta[job.digest] = dict(result)
        job.result = result
        self._finish(job, "done")
        self._h_job_seconds.observe(elapsed, type=job.type,
                                    codec=str(stats.get("codec", "-")))
        self._c_bytes_out.inc(len(data))

    def _finish(self, job: Job, state: str) -> None:
        try:
            job.transition(state)
        except JobError:
            return
        self._c_completed.inc(state=state, type=job.type)

    def _dispatch(self, job: Job):
        req = job.request
        if job.type == "compress":
            return self._run_compress(req)
        if job.type == "decompress":
            return self._run_decompress(req)
        return self._run_train(req)

    def _run_compress(self, req: Dict[str, Any]):
        spec = self._dataset_spec(req)
        archive = self.session.compress(
            spec, codec=req.get("codec"),
            bound=_parse_bound(req.get("bound")),
            variables=req.get("variables"),
            shards=req.get("shards"),
            seed=(None if req.get("seed") is None
                  else int(req["seed"])),
            entropy_backend=req.get("entropy_backend"))
        data = archive.to_bytes()
        stats = {k: v for k, v in archive.stats.items()
                 if isinstance(v, (int, float, str, bool))}
        return data, MEDIA_ARCHIVE, {"kind": archive.kind, **stats}

    def _run_decompress(self, req: Dict[str, Any]):
        digest = self._source_digest(req)
        path = self.cache.peek_path(digest)
        if path is None:
            raise ServiceError(
                f"source result {digest[:12]} is no longer cached")
        restored = self.session.decompress(
            Archive.open(path), select=_parse_select(req.get("select")),
            expect_codec=req.get("expect_codec"))
        buf = io.BytesIO()
        if isinstance(restored, dict):
            np.savez(buf, **restored)
            media = MEDIA_NPZ
            stats = {"variables": sorted(restored)}
        else:
            np.save(buf, restored)
            media = MEDIA_NPY
            stats = {"shape": list(restored.shape)}
        return buf.getvalue(), media, stats

    def _run_train(self, req: Dict[str, Any]):
        spec = self._dataset_spec(req)
        kwargs = {k: v for k, v in (req.get("train") or {}).items()
                  if k in _TRAIN_KWARGS}
        with tempfile.TemporaryDirectory(
                dir=self.cache.root) as tmp:
            save = os.path.join(tmp, "artifact.npz")
            _, manifest = self.session.train(
                req["codec"], spec, save=save,
                variable=int(req.get("variable", 0)),
                seed=(None if req.get("seed") is None
                      else int(req["seed"])),
                **kwargs)
            with open(save, "rb") as fh:
                data = fh.read()
        return data, MEDIA_NPZ, {"codec": req["codec"],
                                 "state_hash": manifest.state_hash}

    # -- job access -----------------------------------------------------
    def job(self, job_id_: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id_)
        if job is None:
            raise UnknownJobError(f"no job {job_id_!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id_: str) -> Job:
        """Cancel a queued job; raises :class:`ServiceError` once it
        is running or terminal."""
        job = self.job(job_id_)
        if self.queue.remove(job_id_) is not None:
            self._finish(job, "cancelled")
            return job
        if job.state == "cancelled":
            return job
        raise ServiceError(f"job {job_id_} is {job.state}; only "
                           f"queued jobs can be cancelled")

    def result_path(self, job_id_: str) -> str:
        """Cached result-object path of a ``done`` job (the bytes the
        HTTP layer streams)."""
        job = self.job(job_id_)
        if job.state != "done":
            raise ServiceError(f"job {job_id_} is {job.state}; "
                               f"results exist only for done jobs")
        path = self.cache.peek_path(job.digest)
        if path is None:
            raise ServiceError(
                f"result of job {job_id_} was evicted from the "
                f"cache; resubmit the request to recompute it")
        return path

    def result_bytes(self, job_id_: str) -> bytes:
        with open(self.result_path(job_id_), "rb") as fh:
            return fh.read()

    # -- observability --------------------------------------------------
    def _jobs_by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in
                  ("queued", "running", "done", "failed", "cancelled")}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def health(self) -> Dict[str, Any]:
        """Liveness summary (the ``GET /health`` body)."""
        alive = self._runtime.workers_alive
        store_ok = self.cache.writable()
        status = "draining" if self.draining else (
            "ok" if store_ok and (alive or not self._runtime.started)
            else "degraded")
        return {
            "status": status,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.maxsize,
            "workers": self._num_workers,
            "workers_alive": alive,
            "inflight": self._runtime.inflight,
            "executor": self.session.executor.name,
            "store_writable": store_ok,
            "jobs": self._jobs_by_state(),
            "cache": self.cache.stats(),
        }

    def metrics_text(self) -> str:
        """Prometheus exposition text (the ``GET /metrics`` body)."""
        for state, count in self._jobs_by_state().items():
            self._g_jobs.set(count, state=state)
        return self.metrics.render()


class ServiceClient:
    """In-process client: the HTTP surface without the socket.

    Drives a :class:`CompressionService` directly — same submit /
    poll / fetch-result verbs the HTTP API exposes, returning the
    same JSON-safe dicts — so tests and scripts exercise the full job
    life cycle without standing up a server.
    """

    def __init__(self, service: CompressionService,
                 client: str = "local"):
        self.service = service
        self.client = client

    def submit(self, request: Optional[Dict[str, Any]] = None,
               **fields) -> Dict[str, Any]:
        body = dict(request or {})
        body.update(fields)
        return self.service.submit(body, client=self.client).to_dict()

    def job(self, job_id_: str) -> Dict[str, Any]:
        return self.service.job(job_id_).to_dict()

    def wait(self, job_id_: str, timeout: float = 60.0,
             poll: float = 0.005) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.service.job(job_id_)
            if job.state in TERMINAL_STATES:
                return job.to_dict()
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id_} still {job.state} after "
                    f"{timeout}s")
            time.sleep(poll)

    def result(self, job_id_: str) -> bytes:
        return self.service.result_bytes(job_id_)

    def cancel(self, job_id_: str) -> Dict[str, Any]:
        return self.service.cancel(job_id_).to_dict()

    def health(self) -> Dict[str, Any]:
        return self.service.health()

    def metrics_text(self) -> str:
        return self.service.metrics_text()
