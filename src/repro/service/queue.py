"""Bounded work queue + per-client token-bucket rate limiting.

The service never lets work pile up unboundedly: :class:`JobQueue`
holds at most ``maxsize`` queued jobs and *rejects* the overflow
(:class:`QueueFullError` → HTTP 429) instead of growing — backpressure
is the contract, matching the autonomous-subsystem designs this
service is modeled on.  Admission additionally passes through a
per-client :class:`TokenBucket` (:class:`RateLimitedError` → HTTP 429
with ``Retry-After``), so one chatty client cannot starve the rest.

Both rejection types subclass :class:`ServiceRejection`, which carries
the HTTP status and retry hint the server layer forwards verbatim.

The queue is a plain FIFO over ``deque`` + ``Condition``: worker
threads block in :meth:`JobQueue.get` and are woken by puts or by
:meth:`JobQueue.close` (which makes every present and future ``get``
return ``None`` — the worker shutdown signal).  Queued-but-unstarted
jobs can be removed by id (:meth:`JobQueue.remove`), which is what
job cancellation uses; running jobs are not the queue's problem.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from ..util import LRUCache
from .jobs import Job

__all__ = ["JobQueue", "TokenBucket", "ClientRateLimiter",
           "ServiceRejection", "QueueFullError", "RateLimitedError"]


class ServiceRejection(RuntimeError):
    """Admission-control rejection; carries the HTTP mapping."""

    http_status = 429

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class QueueFullError(ServiceRejection):
    """The bounded queue is at capacity — shed load, don't grow."""


class RateLimitedError(ServiceRejection):
    """A client exceeded its token-bucket request rate."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_acquire`` is non-blocking — admission control wants an
    immediate yes/no plus a retry hint, never a stalled handler
    thread.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ValueError("rate must be positive (tokens/second)")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None
                           else max(1.0, rate))
        if self.burst < 1.0:
            raise ValueError("burst must allow at least one request")
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst,
                           self._tokens + elapsed * self.rate)

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Take one token if available; never blocks."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until one token will be available."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._refill(now)
            missing = max(0.0, 1.0 - self._tokens)
            return missing / self.rate


class ClientRateLimiter:
    """Per-client-key token buckets with bounded client tracking.

    ``rate <= 0`` disables limiting (every ``allow`` passes).  Client
    buckets are kept in the shared :class:`repro.util.LRUCache`
    (entry-bounded) so an open service scraping arbitrary client names
    cannot grow memory without bound.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 max_clients: int = 1024):
        self.rate = float(rate)
        self.burst = burst
        self.max_clients = int(max_clients)
        self._buckets = LRUCache(max_entries=max(1, self.max_clients))

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> None:
        """Admit one request for ``client`` or raise
        :class:`RateLimitedError`."""
        if not self.enabled:
            return
        with self._buckets.lock:
            bucket = self._buckets.peek(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets.put(client, bucket)
            else:
                self._buckets.touch(client)
        # acquire outside the registry lock: bucket has its own
        if not bucket.try_acquire():
            raise RateLimitedError(
                f"client {client!r} exceeded {self.rate:g} "
                f"requests/second",
                retry_after=bucket.retry_after())


class JobQueue:
    """Bounded FIFO of queued :class:`Job` records.

    ``put`` is non-blocking and raises :class:`QueueFullError` at
    capacity; ``get`` blocks (optionally with a timeout) until a job,
    close, or timeout.  ``depth`` is the live queue length the health
    endpoint and the ``repro_queue_depth`` gauge report.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._items: "deque[Job]" = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise QueueFullError("service is shutting down",
                                     retry_after=30.0)
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"queue is full ({self.maxsize} jobs); retry "
                    f"later", retry_after=1.0)
            self._items.append(job)
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job, or ``None`` on close/timeout."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._items.popleft()

    def remove(self, job_id: str) -> Optional[Job]:
        """Pull a queued job out by id (cancellation); ``None`` if it
        is not waiting (already running, finished, or unknown)."""
        with self._cond:
            for i, job in enumerate(self._items):
                if job.id == job_id:
                    del self._items[i]
                    return job
        return None

    def close(self) -> None:
        """Reject future puts and wake every blocked getter."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
