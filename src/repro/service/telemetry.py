"""Operational metrics for the compression service.

The queue, the result cache and the HTTP handlers all write through
one :class:`MetricsRegistry` — a tiny, dependency-free implementation
of the three Prometheus instrument kinds the service needs:

:class:`Counter`
    Monotonic totals (jobs submitted, cache hits, bytes in/out).
:class:`Gauge`
    Point-in-time levels (queue depth, jobs by state).  Gauges may be
    set directly or bound to a callback that is sampled at render
    time, so values like queue depth are always fresh in a scrape.
:class:`Histogram`
    Cumulative-bucket latency distributions (per-codec job seconds)
    in the standard ``_bucket``/``_sum``/``_count`` layout.

All instruments accept label key/value pairs and are thread-safe (one
lock per instrument; the service's worker threads, HTTP handler
threads and the scraper all hit them concurrently).
:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``text/plain; version=0.0.4``) that ``GET /metrics`` serves.

Deliberately *not* a Prometheus client library: no runtime deps is a
hard constraint of this repo, and the service only needs the text
format, not push gateways or exemplars.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "METRICS_CONTENT_TYPE", "DEFAULT_BUCKETS"]

#: content type of the exposition format :meth:`MetricsRegistry.render`
#: produces
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: default latency buckets (seconds): spans sub-millisecond cache hits
#: through multi-minute training jobs
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0,
                   60.0, 300.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()
                   ) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    f = float(value)
    return repr(int(f)) if f == int(f) and abs(f) < 1e15 else repr(f)


class _Instrument:
    """Shared label-keyed storage + locking."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def render(self) -> List[str]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [f"{self.name}{_render_labels(k)} {_fmt(v)}"
                for k, v in items]


class Gauge(_Instrument):
    """Point-in-time level; settable or sampled from a callback."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 callback: Optional[Callable[[], float]] = None):
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}
        self._callback = callback

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        if self._callback is not None and not labels:
            return float(self._callback())
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        if self._callback is not None:
            return [f"{self.name} {_fmt(float(self._callback()))}"]
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [f"{self.name}{_render_labels(k)} {_fmt(v)}"
                for k, v in items]


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus histogram layout)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        value = float(value)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * len(self.bounds))
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def render(self) -> List[str]:
        with self._lock:
            keys = sorted(self._totals)
            counts = {k: list(self._counts[k]) for k in keys}
            sums = dict(self._sums)
            totals = dict(self._totals)
        lines: List[str] = []
        for key in keys or [()]:
            row = counts.get(key, [0] * len(self.bounds))
            for bound, cum in zip(self.bounds, row):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', _fmt(bound))])} "
                    f"{cum}")
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(key, [('le', '+Inf')])} "
                f"{totals.get(key, 0)}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_fmt(sums.get(key, 0.0))}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{totals.get(key, 0)}")
        return lines


class MetricsRegistry:
    """Named instruments + the text-format renderer.

    ``counter``/``gauge``/``histogram`` create-or-return by name, so
    the queue, cache and handlers can each ask for the instrument they
    write without threading references through constructors.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}

    def _get(self, name: str, factory: Callable[[], _Instrument]
             ) -> _Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            return inst

    def counter(self, name: str, help_text: str = "") -> Counter:
        inst = self._get(name, lambda: Counter(name, help_text))
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{inst.kind}")
        return inst

    def gauge(self, name: str, help_text: str = "",
              callback: Optional[Callable[[], float]] = None) -> Gauge:
        inst = self._get(name, lambda: Gauge(name, help_text, callback))
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{inst.kind}")
        return inst

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        inst = self._get(name, lambda: Histogram(name, help_text,
                                                 buckets))
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{inst.kind}")
        return inst

    def render(self) -> str:
        with self._lock:
            instruments = [self._instruments[n]
                           for n in sorted(self._instruments)]
        lines: List[str] = []
        for inst in instruments:
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            lines.extend(inst.render())
        return "\n".join(lines) + "\n"
