"""Typed job records for the compression service.

A *job* is one unit of queued work — a compress, decompress or train
request — with a deterministic id, a state machine, and a
JSON-serializable wire form (:meth:`Job.to_dict` is exactly what
``GET /v1/jobs/<id>`` returns).

**Deterministic ids.**  A job id is derived from the canonical digest
of the request body plus a per-digest submission sequence number
(``j<seq>-<digest12>``): replaying the same submission order against a
fresh service reproduces the same ids, and the digest prefix makes
"same request, resubmitted" visible at a glance.  The digest itself —
:func:`request_digest` over :func:`canonical_request` — is the
service's *cache key*: it covers exactly the fields that determine the
result bytes (dataset spec, codec spec, bound, entropy backend,
shards/variables/seed/select), so two requests that must produce
byte-identical archives share one digest, and request fields that are
purely operational (client name, priority) never poison the cache.

**States.**  ``queued → running → done | failed``, plus ``cancelled``
(reachable only from ``queued`` — running work is never killed
mid-write).  Transitions are validated; an illegal transition is a
programming error and raises.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Job", "JobError", "JOB_TYPES", "JOB_STATES",
           "TERMINAL_STATES", "canonical_request", "request_digest",
           "job_id", "normalize_request"]

#: work kinds the service executes
JOB_TYPES = ("compress", "decompress", "train")

#: the job state machine's vocabulary
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: legal state transitions
_TRANSITIONS = {
    "queued": {"running", "cancelled", "done", "failed"},
    "running": {"done", "failed"},
}

#: request fields that determine the result bytes, per job type; the
#: canonical form (and therefore the cache key and the job-id digest)
#: is built from these and nothing else
_CANONICAL_FIELDS = {
    "compress": ("type", "dataset", "shape", "dataset_params", "codec",
                 "bound", "entropy_backend", "variables", "shards",
                 "seed"),
    "decompress": ("type", "job", "digest", "select", "expect_codec"),
    "train": ("type", "codec", "dataset", "shape", "dataset_params",
              "variable", "train", "seed"),
}


class JobError(ValueError):
    """A malformed job request or an illegal state transition."""


def normalize_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a request body and strip it to its canonical fields.

    Raises :class:`JobError` with a client-presentable message for an
    unknown type or missing required fields; returns a new dict
    holding only the fields that participate in the canonical digest.
    """
    if not isinstance(request, dict):
        raise JobError("request body must be a JSON object")
    job_type = request.get("type")
    if job_type not in JOB_TYPES:
        raise JobError(f"unknown job type {job_type!r}; expected one "
                       f"of {', '.join(JOB_TYPES)}")
    if job_type in ("compress", "train") and not request.get("dataset"):
        raise JobError(f"{job_type} jobs need a 'dataset' field (a "
                       f"registered dataset name)")
    if job_type == "train" and not request.get("codec"):
        raise JobError("train jobs need a 'codec' field (a trainable "
                       "codec name)")
    if job_type == "decompress" and not (request.get("job")
                                         or request.get("digest")):
        raise JobError("decompress jobs need a 'job' (source job id) "
                       "or 'digest' (result digest) field")
    out = {k: request[k] for k in _CANONICAL_FIELDS[job_type]
           if request.get(k) is not None}
    return out


def canonical_request(request: Dict[str, Any]) -> str:
    """Stable JSON of a (normalized) request — the digest preimage."""
    return json.dumps(request, sort_keys=True, separators=(",", ":"),
                      default=str)


def request_digest(request: Dict[str, Any],
                   extra: Optional[Dict[str, Any]] = None) -> str:
    """SHA-256 hex digest of the canonical request.

    ``extra`` merges in *resolved* facts the raw request only implies
    (the fully-resolved :class:`~repro.data.registry.DatasetSpec`
    fields, the codec's spec dict, the session's effective entropy
    backend), so two spellings of the same work share a digest and two
    different sessions never collide.
    """
    merged = dict(request)
    if extra:
        merged.update(extra)
    payload = canonical_request(merged)
    return hashlib.sha256(payload.encode()).hexdigest()


def job_id(digest: str, seq: int) -> str:
    """Deterministic job id: submission sequence + digest prefix."""
    return f"j{seq:06d}-{digest[:12]}"


@dataclass
class Job:
    """One queued/running/finished unit of service work.

    ``request`` is the normalized (canonical-fields-only) body;
    ``digest`` the content address of its result; ``result`` a small
    JSON-safe dict describing the outcome (byte count, media type,
    codec stats) — the result *bytes* live in the service cache, keyed
    by ``digest``, never on the job record.
    """

    id: str
    type: str
    request: Dict[str, Any]
    digest: str
    client: str = "local"
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    cache_hit: bool = False

    def __post_init__(self):
        if self.type not in JOB_TYPES:
            raise JobError(f"unknown job type {self.type!r}")
        if self.state not in JOB_STATES:
            raise JobError(f"unknown job state {self.state!r}")
        self._lock = threading.Lock()

    # -- state machine --------------------------------------------------
    def transition(self, state: str) -> None:
        """Move to ``state``, validating the edge (thread-safe)."""
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        with self._lock:
            allowed = _TRANSITIONS.get(self.state, set())
            if state not in allowed:
                raise JobError(f"job {self.id} cannot move "
                               f"{self.state!r} -> {state!r}")
            self.state = state
            now = time.time()
            if state == "running":
                self.started = now
            elif state in TERMINAL_STATES:
                self.finished = now

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wall_seconds(self) -> Optional[float]:
        """Queue-to-finish wall clock (None while in flight)."""
        if self.finished is None:
            return None
        return self.finished - self.created

    # -- wire form ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe record (the ``GET /v1/jobs/<id>`` body)."""
        out: Dict[str, Any] = {
            "id": self.id, "type": self.type, "state": self.state,
            "digest": self.digest, "client": self.client,
            "created": self.created, "started": self.started,
            "finished": self.finished, "cache_hit": self.cache_hit,
            "request": dict(self.request),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = dict(self.result)
        return out
