"""Stdlib HTTP front end for :class:`CompressionService`.

A deliberately small JSON API over ``http.server`` (no web framework —
zero-dependency is a hard constraint of this repo):

========  ==========================  =====================================
method    path                        meaning
========  ==========================  =====================================
POST      ``/v1/jobs``                submit a job (JSON body); ``202`` +
                                      job record, or ``200`` on a cache
                                      hit (the job is born ``done``)
GET       ``/v1/jobs``                list known jobs (most recent first)
GET       ``/v1/jobs/<id>``           job record (state, timings, result
                                      metadata)
GET       ``/v1/jobs/<id>/result``    the result bytes, streamed from the
                                      content-addressed cache
DELETE    ``/v1/jobs/<id>``           cancel a queued job
GET       ``/health``                 liveness JSON (``503`` while
                                      draining)
GET       ``/metrics``                Prometheus text exposition
========  ==========================  =====================================

Error mapping is uniform: admission-control rejections
(:class:`~repro.service.queue.ServiceRejection`) become their carried
status (429/503) with a ``Retry-After`` header; malformed requests
(:class:`~repro.service.jobs.JobError`,
:class:`~repro.service.core.ServiceError`) become 400; unknown jobs
404.  Every error body is ``{"error": ...}`` JSON.

:func:`serve` is the blocking entry point behind ``repro serve``: it
installs SIGTERM/SIGINT handlers that stop accepting, drain queued and
running jobs, and close the service — the graceful-shutdown contract
the CI smoke job exercises.
"""

from __future__ import annotations

import json
import logging
import shutil
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .core import (CompressionService, ServiceError, UnknownJobError)
from .jobs import JobError
from .queue import ServiceRejection
from .telemetry import METRICS_CONTENT_TYPE

__all__ = ["ServiceHTTPServer", "make_server", "serve"]

logger = logging.getLogger("repro.serve")

#: request bodies beyond this are rejected outright (413)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request → one service call."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # the service instance hangs off the server object
    @property
    def service(self) -> CompressionService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:
        logger.info("%s %s", self.address_string(), fmt % args)

    def _client_key(self) -> str:
        """Rate-limit key: explicit header, else peer address."""
        return (self.headers.get("X-Client")
                or self.client_address[0])

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         retry_after: Optional[float] = None) -> None:
        headers = ()
        if retry_after is not None:
            headers = (("Retry-After",
                        str(max(1, int(round(retry_after))))),)
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body too large ({length} bytes; max "
                f"{MAX_BODY_BYTES})")
        raw = self.rfile.read(length) if length else b""
        self.service._c_bytes_in.inc(len(raw))
        if not raw:
            raise JobError("empty request body; POST a JSON job "
                           "request")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobError(f"request body is not valid JSON: "
                           f"{exc}") from None

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            handler = self._route(method, path)
            if handler is None:
                self._send_error_json(404, f"no route {method} {path}")
                return
            handler()
        except ServiceRejection as exc:
            self._send_error_json(exc.http_status, str(exc),
                                  retry_after=exc.retry_after)
        except (JobError, ServiceError) as exc:
            self._send_error_json(400, str(exc))
        except UnknownJobError as exc:
            self._send_error_json(
                404, exc.args[0] if exc.args else str(exc))
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error on %s %s", method, path)
            try:
                self._send_error_json(
                    500, f"internal error: {type(exc).__name__}")
            except OSError:
                pass

    def _route(self, method: str, path: str):
        if path == "/health" and method == "GET":
            return self._handle_health
        if path == "/metrics" and method == "GET":
            return self._handle_metrics
        if path == "/v1/jobs":
            if method == "POST":
                return self._handle_submit
            if method == "GET":
                return self._handle_list
            return None
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result") and method == "GET":
                return lambda: self._handle_result(
                    rest[:-len("/result")])
            if "/" not in rest:
                if method == "GET":
                    return lambda: self._handle_job(rest)
                if method == "DELETE":
                    return lambda: self._handle_cancel(rest)
        return None

    # -- endpoints ------------------------------------------------------
    def _handle_submit(self) -> None:
        request = self._read_body()
        job = self.service.submit(request, client=self._client_key())
        status = 200 if job.cache_hit else 202
        self._send_json(status, job.to_dict())

    def _handle_list(self) -> None:
        jobs = sorted(self.service.jobs(), key=lambda j: j.created,
                      reverse=True)
        self._send_json(200, {"jobs": [j.to_dict() for j in jobs]})

    def _handle_job(self, job_id: str) -> None:
        self._send_json(200, self.service.job(job_id).to_dict())

    def _handle_cancel(self, job_id: str) -> None:
        self._send_json(200, self.service.cancel(job_id).to_dict())

    def _handle_result(self, job_id: str) -> None:
        job = self.service.job(job_id)
        path = self.service.result_path(job_id)
        media = (job.result or {}).get("media_type",
                                       "application/octet-stream")
        with open(path, "rb") as fh:
            fh.seek(0, 2)
            size = fh.tell()
            fh.seek(0)
            self.send_response(200)
            self.send_header("Content-Type", media)
            self.send_header("Content-Length", str(size))
            self.send_header("X-Repro-Digest", job.digest)
            self.end_headers()
            shutil.copyfileobj(fh, self.wfile)
        self.service._c_bytes_out.inc(size)

    def _handle_health(self) -> None:
        health = self.service.health()
        status = 503 if health["status"] == "draining" else 200
        self._send_json(status, health)

    def _handle_metrics(self) -> None:
        body = self.service.metrics_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # http.server entry points
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`CompressionService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: CompressionService):
        super().__init__(address, _Handler)
        self.service = service


def make_server(service: CompressionService, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP server; ``port=0`` picks a free
    port (``server.server_address`` has the real one) — what the e2e
    tests use."""
    return ServiceHTTPServer((host, port), service)


def serve(service: CompressionService, host: str = "127.0.0.1",
          port: int = 8090, *,
          install_signals: bool = True) -> int:
    """Run the service until SIGTERM/SIGINT; returns an exit code.

    Shutdown is graceful: stop accepting new jobs (503), let queued
    and running work finish, then release the workers, the cache and
    the session.  The ``finally`` path always closes the service, so
    even a crashed accept loop cannot leak the session's executor.
    """
    httpd = make_server(service, host, port)
    bound_host, bound_port = httpd.server_address[:2]
    stop = threading.Event()

    def _shutdown(signum, frame):  # noqa: ARG001 - signal signature
        logger.info("signal %d: draining and shutting down", signum)
        stop.set()
        # shutdown() must come from another thread than serve_forever
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {}
    if install_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _shutdown)
    logger.info("repro serve listening on http://%s:%d "
                "(workers=%d queue=%d cache=%s)", bound_host,
                bound_port, service._num_workers, service.queue.maxsize,
                service.cache.root)
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        httpd.server_close()
        service.close(drain=True)
        logger.info("repro serve stopped cleanly")
    return 0
