"""repro.service — the long-running compression service.

Stands the :class:`~repro.api.Session` facade up as an autonomous
subsystem behind ``repro serve``: a bounded job queue with per-client
rate limiting (:mod:`~repro.service.queue`), typed job records with
deterministic ids (:mod:`~repro.service.jobs`), a content-addressed
result cache (:mod:`~repro.service.cache`), Prometheus-style
observability (:mod:`~repro.service.telemetry`), the orchestrating
:class:`CompressionService` + in-process :class:`ServiceClient`
(:mod:`~repro.service.core`) and the stdlib HTTP front end
(:mod:`~repro.service.server`).

Served results are deterministic: a compress job's archive is
byte-identical to the same ``Session.compress`` call made in-process,
which is what makes content-addressed caching sound.
"""

from .cache import ResultCache
from .core import (CompressionService, ServiceClient, ServiceClosedError,
                   ServiceError, UnknownJobError)
from .jobs import (JOB_STATES, JOB_TYPES, Job, JobError, TERMINAL_STATES,
                   canonical_request, job_id, normalize_request,
                   request_digest)
from .queue import (ClientRateLimiter, JobQueue, QueueFullError,
                    RateLimitedError, ServiceRejection, TokenBucket)
from .server import ServiceHTTPServer, make_server, serve
from .telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                        METRICS_CONTENT_TYPE)

__all__ = [
    "CompressionService", "ServiceClient", "ServiceError",
    "ServiceClosedError", "UnknownJobError",
    "Job", "JobError", "JOB_TYPES", "JOB_STATES", "TERMINAL_STATES",
    "canonical_request", "request_digest", "job_id",
    "normalize_request",
    "JobQueue", "TokenBucket", "ClientRateLimiter", "ServiceRejection",
    "QueueFullError", "RateLimitedError",
    "ResultCache",
    "ServiceHTTPServer", "make_server", "serve",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "METRICS_CONTENT_TYPE",
]
