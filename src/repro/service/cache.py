"""Content-addressed result cache: repeated requests are O(read).

The service's cache key is the canonical digest of everything that
determines an archive's bytes — ``(DatasetSpec, codec spec, Bound,
entropy backend, shards/variables/seed/select)``, exactly the
spec-portability contract the platform layers established (see
:func:`repro.service.jobs.request_digest`).  Because served results
are deterministic and byte-identical to the in-process facade, a
digest maps to *one* byte string forever: the cache never needs
invalidation, only eviction.

Entries are on-disk objects (``objects/<digest>.bin``, written with a
temp-file + ``os.replace`` so readers never observe partial writes),
mirroring the :class:`~repro.pipeline.artifacts.ArtifactStore` layout.
Serving a warm request therefore costs a file open — and since
archives are seekable containers (PR 8), job-result metadata reads
only the footer.  The in-memory side is the shared
:class:`repro.util.LRUCache` (digest → byte size, bounded by entry
count *and* total bytes); its eviction callback unlinks the evicted
object file, and compound check-disk-then-bump operations run under
the cache's public lock.

Thread-safe; hit/miss totals feed the ``repro_cache_*`` metrics and
the bench's warm-vs-cold speedup floor.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Optional, Union

from ..util import LRUCache

__all__ = ["ResultCache"]

PathLike = Union[str, os.PathLike]


class ResultCache:
    """Disk-backed LRU of result bytes keyed by content digest."""

    def __init__(self, root: PathLike, max_entries: int = 256,
                 max_bytes: int = 1 << 30):
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        os.makedirs(self.objects_dir, exist_ok=True)
        self._lru = LRUCache(max_entries=max_entries, max_bytes=max_bytes,
                             on_evict=self._unlink_evicted)
        self.max_entries = self._lru.max_entries
        self.max_bytes = self._lru.max_bytes
        self._scan()

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    # -- persistence ----------------------------------------------------
    def _scan(self) -> None:
        """Adopt objects already on disk (service restart), oldest
        modification first so eviction order survives the restart."""
        found = []
        for name in os.listdir(self.objects_dir):
            if not name.endswith(".bin"):
                continue
            path = os.path.join(self.objects_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            found.append((st.st_mtime, name[:-4], st.st_size))
        for _, digest, size in sorted(found):
            self._lru.put(digest, size, nbytes=size)

    def _path(self, digest: str) -> str:
        if not digest or any(c in digest for c in "/\\."):
            raise ValueError(f"bad cache digest {digest!r}")
        return os.path.join(self.objects_dir, f"{digest}.bin")

    def _unlink_evicted(self, digest, size, nbytes) -> None:
        try:
            os.unlink(self._path(digest))
        except OSError:
            pass

    # -- core API -------------------------------------------------------
    def get_path(self, digest: str) -> Optional[str]:
        """Object path for ``digest`` (bumping its recency), or
        ``None`` on a miss.  Counts a hit/miss either way."""
        with self._lru.lock:
            if digest in self._lru:
                path = self._path(digest)
                if os.path.exists(path):
                    self._lru.touch(digest)
                    self._lru.hits += 1
                    return path
                # the object vanished under us (external cleanup);
                # drop the index row and fall through to a miss
                self._lru.pop(digest)
            self._lru.misses += 1
            return None

    def peek_path(self, digest: str) -> Optional[str]:
        """Object path without touching the hit/miss counters.

        Result *streaming* uses this (bumping recency but not the
        admission counters), so ``repro_cache_hits_total`` keeps its
        meaning: submissions answered from cache.
        """
        with self._lru.lock:
            if digest in self._lru:
                path = self._path(digest)
                if os.path.exists(path):
                    self._lru.touch(digest)
                    return path
                self._lru.pop(digest)
            return None

    def get_bytes(self, digest: str) -> Optional[bytes]:
        path = self.get_path(digest)
        if path is None:
            return None
        with open(path, "rb") as fh:
            return fh.read()

    def put(self, digest: str, data: bytes) -> str:
        """Store ``data`` under ``digest`` (idempotent) and return the
        object path.  Writes are atomic — a temp file in the objects
        directory renamed into place — so a concurrent reader sees
        either no object or the complete one."""
        path = self._path(digest)
        with self._lru.lock:
            if digest in self._lru and os.path.exists(path):
                self._lru.touch(digest)
                return path
            fd, tmp = tempfile.mkstemp(dir=self.objects_dir,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._lru.put(digest, len(data), nbytes=len(data))
            return path

    # -- introspection --------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        return digest in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    def writable(self) -> bool:
        """Whether the objects directory accepts writes (the health
        endpoint's store-writability probe)."""
        try:
            fd, tmp = tempfile.mkstemp(dir=self.objects_dir,
                                       suffix=".probe")
            os.close(fd)
            os.unlink(tmp)
            return True
        except OSError:
            return False

    def stats(self) -> Dict[str, int]:
        return self._lru.stats()
