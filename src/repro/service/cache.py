"""Content-addressed result cache: repeated requests are O(read).

The service's cache key is the canonical digest of everything that
determines an archive's bytes — ``(DatasetSpec, codec spec, Bound,
entropy backend, shards/variables/seed/select)``, exactly the
spec-portability contract the platform layers established (see
:func:`repro.service.jobs.request_digest`).  Because served results
are deterministic and byte-identical to the in-process facade, a
digest maps to *one* byte string forever: the cache never needs
invalidation, only eviction.

Entries are on-disk objects (``objects/<digest>.bin``, written with a
temp-file + ``os.replace`` so readers never observe partial writes),
mirroring the :class:`~repro.pipeline.artifacts.ArtifactStore` layout.
Serving a warm request therefore costs a file open — and since
archives are seekable containers (PR 8), job-result metadata reads
only the footer.  The in-memory side is just the LRU index: digest →
byte size, bounded by entry count *and* total bytes (the
:class:`~repro.entropy.tablecoder.TableCache` shape), evicting
least-recently-used object files.

Thread-safe; hit/miss totals feed the ``repro_cache_*`` metrics and
the bench's warm-vs-cold speedup floor.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional, Union

__all__ = ["ResultCache"]

PathLike = Union[str, os.PathLike]


class ResultCache:
    """Disk-backed LRU of result bytes keyed by content digest."""

    def __init__(self, root: PathLike, max_entries: int = 256,
                 max_bytes: int = 1 << 30):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        os.makedirs(self.objects_dir, exist_ok=True)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._bytes = 0
        self._scan()

    # -- persistence ----------------------------------------------------
    def _scan(self) -> None:
        """Adopt objects already on disk (service restart), oldest
        modification first so eviction order survives the restart."""
        found = []
        for name in os.listdir(self.objects_dir):
            if not name.endswith(".bin"):
                continue
            path = os.path.join(self.objects_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            found.append((st.st_mtime, name[:-4], st.st_size))
        for _, digest, size in sorted(found):
            self._entries[digest] = size
            self._bytes += size
        self._evict()

    def _path(self, digest: str) -> str:
        if not digest or any(c in digest for c in "/\\."):
            raise ValueError(f"bad cache digest {digest!r}")
        return os.path.join(self.objects_dir, f"{digest}.bin")

    # -- core API -------------------------------------------------------
    def get_path(self, digest: str) -> Optional[str]:
        """Object path for ``digest`` (bumping its recency), or
        ``None`` on a miss.  Counts a hit/miss either way."""
        with self._lock:
            if digest in self._entries:
                path = self._path(digest)
                if os.path.exists(path):
                    self._entries.move_to_end(digest)
                    self.hits += 1
                    return path
                # the object vanished under us (external cleanup);
                # drop the index row and fall through to a miss
                self._bytes -= self._entries.pop(digest)
            self.misses += 1
            return None

    def peek_path(self, digest: str) -> Optional[str]:
        """Object path without touching the hit/miss counters.

        Result *streaming* uses this (bumping recency but not the
        admission counters), so ``repro_cache_hits_total`` keeps its
        meaning: submissions answered from cache.
        """
        with self._lock:
            if digest in self._entries:
                path = self._path(digest)
                if os.path.exists(path):
                    self._entries.move_to_end(digest)
                    return path
                self._bytes -= self._entries.pop(digest)
            return None

    def get_bytes(self, digest: str) -> Optional[bytes]:
        path = self.get_path(digest)
        if path is None:
            return None
        with open(path, "rb") as fh:
            return fh.read()

    def put(self, digest: str, data: bytes) -> str:
        """Store ``data`` under ``digest`` (idempotent) and return the
        object path.  Writes are atomic — a temp file in the objects
        directory renamed into place — so a concurrent reader sees
        either no object or the complete one."""
        path = self._path(digest)
        with self._lock:
            if digest in self._entries and os.path.exists(path):
                self._entries.move_to_end(digest)
                return path
            fd, tmp = tempfile.mkstemp(dir=self.objects_dir,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if digest in self._entries:
                self._bytes -= self._entries.pop(digest)
            self._entries[digest] = len(data)
            self._bytes += len(data)
            self._evict(keep=digest)
            return path

    def _evict(self, keep: Optional[str] = None) -> None:
        """LRU-evict down to both bounds (caller holds the lock)."""
        while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes):
            oldest = next(iter(self._entries))
            if oldest == keep and len(self._entries) == 1:
                break  # never evict the entry being inserted
            if oldest == keep:
                self._entries.move_to_end(keep)
                continue
            size = self._entries.pop(oldest)
            self._bytes -= size
            try:
                os.unlink(self._path(oldest))
            except OSError:
                pass

    # -- introspection --------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def writable(self) -> bool:
        """Whether the objects directory accepts writes (the health
        endpoint's store-writability probe)."""
        try:
            fd, tmp = tempfile.mkstemp(dir=self.objects_dir,
                                       suffix=".probe")
            os.close(fd)
            os.unlink(tmp)
            return True
        except OSError:
            return False

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries),
                    "bytes": self._bytes}
