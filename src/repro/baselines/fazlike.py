"""FAZ-analogue: modular auto-tuned wavelet / predictor compressor.

FAZ [29] is a modular framework that combines prediction schemes and
wavelet transforms, auto-tuning the pipeline per dataset.  This module
implements the same two-module family:

* a **reversible wavelet coder**: the data is pre-quantized to the
  error grid (``q = round(x / 2eb)``, pointwise error ``<= eb``), then
  transformed by a multi-level *integer* CDF 5/3 lifting wavelet —
  exactly invertible on integers, so the transform adds no error — and
  the subbands are entropy-coded per level;
* the **interpolation predictor** of :class:`~repro.baselines.szlike.
  SZLikeCompressor`;

:class:`FAZLikeCompressor.compress` runs both candidate pipelines and
keeps whichever stream is smaller (a 1-byte selector records the
choice), which is FAZ's auto-tuning in its simplest honest form.  Both
candidates guarantee the same pointwise bound, so the selection cannot
weaken the guarantee.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from ..postprocess.coding import decode_ints, encode_ints
from .szlike import SZLikeCompressor

__all__ = ["FAZLikeCompressor", "WaveletCoder", "lift_forward",
           "lift_inverse"]

_MAGIC = b"FAZ1"
_WAVELET_MAGIC = b"WVL1"
_WHDR = "<IIIId"  # T, H, W, levels, eb

_TAG_WAVELET = 0
_TAG_PREDICTOR = 1


# ----------------------------------------------------------------------
# integer CDF 5/3 lifting along one axis (JPEG2000 reversible filter)
# ----------------------------------------------------------------------
def lift_forward(x: np.ndarray, axis: int) -> np.ndarray:
    """One forward 5/3 lifting pass along ``axis``.

    Returns an int64 array with the approximation band in the first
    ``ceil(n/2)`` slots and the detail band after it.  Exactly
    invertible by :func:`lift_inverse` (whole-sample symmetric
    boundary extension).
    """
    x = np.moveaxis(np.asarray(x, dtype=np.int64), axis, 0)
    n = x.shape[0]
    if n < 2:
        return np.moveaxis(x.copy(), 0, axis)
    s = x[0::2].copy()
    d = x[1::2].copy()
    nd = d.shape[0]
    # predict: d[i] -= floor((s[i] + s[i+1]) / 2); mirror at the end
    right = s[1:nd + 1] if s.shape[0] > nd else np.concatenate(
        [s[1:], s[-1:]], axis=0)
    d -= np.floor_divide(s[:nd] + right, 2)
    # update: s[i] += floor((d[i-1] + d[i] + 2) / 4); mirror both ends
    ns = s.shape[0]
    dprev = np.concatenate([d[:1], d[:ns - 1]], axis=0)
    dcur = d[:ns] if nd >= ns else np.concatenate([d, d[-1:]], axis=0)
    s += np.floor_divide(dprev + dcur + 2, 4)
    out = np.concatenate([s, d], axis=0)
    return np.moveaxis(out, 0, axis)


def lift_inverse(w: np.ndarray, axis: int) -> np.ndarray:
    """Exact inverse of :func:`lift_forward`."""
    w = np.moveaxis(np.asarray(w, dtype=np.int64), axis, 0)
    n = w.shape[0]
    if n < 2:
        return np.moveaxis(w.copy(), 0, axis)
    ns = (n + 1) // 2
    s = w[:ns].copy()
    d = w[ns:].copy()
    nd = d.shape[0]
    dprev = np.concatenate([d[:1], d[:ns - 1]], axis=0)
    dcur = d[:ns] if nd >= ns else np.concatenate([d, d[-1:]], axis=0)
    s -= np.floor_divide(dprev + dcur + 2, 4)
    right = s[1:nd + 1] if ns > nd else np.concatenate(
        [s[1:], s[-1:]], axis=0)
    d += np.floor_divide(s[:nd] + right, 2)
    out = np.empty_like(w)
    out[0::2] = s
    out[1::2] = d
    return np.moveaxis(out, 0, axis)


def _corner_sizes(shape: Tuple[int, ...], levels: int
                  ) -> List[Tuple[int, ...]]:
    """Low-pass corner shape after each level (index 0 = input shape)."""
    sizes = [tuple(shape)]
    cur = tuple(shape)
    for _ in range(levels):
        cur = tuple((n + 1) // 2 if n > 1 else n for n in cur)
        sizes.append(cur)
    return sizes


class WaveletCoder:
    """Multi-level reversible 5/3 coder with a pointwise bound."""

    name = "wavelet-5/3"

    def __init__(self, levels: int = 3):
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels

    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        eb = float(error_bound)
        q = np.rint(frames / (2 * eb)).astype(np.int64)

        sizes = _corner_sizes(frames.shape, self.levels)
        work = q.copy()
        details: List[np.ndarray] = []
        for lv in range(self.levels):
            cur = sizes[lv]
            nxt = sizes[lv + 1]
            block = work[:cur[0], :cur[1], :cur[2]].copy()
            for axis in range(3):
                block = lift_forward(block, axis)
            work[:cur[0], :cur[1], :cur[2]] = block
            mask = np.ones(cur, dtype=bool)
            mask[:nxt[0], :nxt[1], :nxt[2]] = False
            details.append(block[mask])
        coarse = work[:sizes[-1][0], :sizes[-1][1], :sizes[-1][2]]

        header = _WAVELET_MAGIC + struct.pack(
            _WHDR, *frames.shape, self.levels, eb)
        parts = [header, encode_ints(coarse.ravel())]
        # fine-to-coarse order is irrelevant; keep level order stable
        parts.extend(encode_ints(dv) for dv in details)
        return b"".join(parts)

    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _WAVELET_MAGIC:
            raise ValueError("not a wavelet stream")
        T, H, W, levels, eb = struct.unpack_from(_WHDR, data, 4)
        pos = 4 + struct.calcsize(_WHDR)
        shape = (T, H, W)
        sizes = _corner_sizes(shape, levels)
        coarse, pos = decode_ints(data, pos)
        details = []
        for _ in range(levels):
            dv, pos = decode_ints(data, pos)
            details.append(dv)

        work = np.zeros(shape, dtype=np.int64)
        work[:sizes[-1][0], :sizes[-1][1],
             :sizes[-1][2]] = coarse.reshape(sizes[-1])
        for lv in range(levels - 1, -1, -1):
            cur = sizes[lv]
            nxt = sizes[lv + 1]
            block = work[:cur[0], :cur[1], :cur[2]].copy()
            mask = np.ones(cur, dtype=bool)
            mask[:nxt[0], :nxt[1], :nxt[2]] = False
            block[mask] = details[lv]
            for axis in (2, 1, 0):
                block = lift_inverse(block, axis)
            work[:cur[0], :cur[1], :cur[2]] = block
        return work.astype(np.float64) * (2 * eb)


class FAZLikeCompressor:
    """Auto-tuned modular coder: best of {wavelet, predictor}.

    Parameters
    ----------
    levels:
        Transform depth shared by both candidate modules.
    """

    name = "FAZ-like"

    def __init__(self, levels: int = 3):
        self.wavelet = WaveletCoder(levels=levels)
        self.predictor = SZLikeCompressor(max_level=levels)

    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        """Compress with pointwise bound; keeps the smaller candidate."""
        wav = self.wavelet.compress(frames, error_bound)
        prd = self.predictor.compress(frames, error_bound)
        if len(wav) <= len(prd):
            return _MAGIC + bytes([_TAG_WAVELET]) + wav
        return _MAGIC + bytes([_TAG_PREDICTOR]) + prd

    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not a FAZ-like stream")
        tag = data[4]
        body = data[5:]
        if tag == _TAG_WAVELET:
            return self.wavelet.decompress(body)
        if tag == _TAG_PREDICTOR:
            return self.predictor.decompress(body)
        raise ValueError(f"unknown FAZ-like module tag {tag}")

    def chosen_module(self, data: bytes) -> str:
        """Which module an existing stream used (for reporting)."""
        if data[:4] != _MAGIC:
            raise ValueError("not a FAZ-like stream")
        return ("wavelet" if data[4] == _TAG_WAVELET else "predictor")
