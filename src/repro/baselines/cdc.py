"""CDC baseline [38]: conditional diffusion compression in data space.

CDC encodes an image into a quantized latent (stored for **every**
image) and reconstructs by running a conditional diffusion model in the
*data* domain, with the latent as side information.  Two
parameterizations are evaluated in the paper: CDC-X predicts the clean
signal directly, CDC-eps predicts the added noise.

To apply CDC to spatiotemporal stacks the paper "treats three
consecutive frames as a three-channel input"; this implementation does
the same.  Because the reverse process runs at full spatial resolution,
decoding is far slower than our latent-space diffusion — the effect
Table 2 quantifies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..compression import RDLoss, VAEHyperprior
from ..config import DiffusionConfig, VAEConfig
from ..diffusion.schedule import NoiseSchedule
from ..diffusion.unet import DenoisingUNet
from ..nn import Tensor, no_grad
from ..nn import functional as F
from ..nn.optim import Adam, clip_grad_norm
from .common import LearnedBaseline, normalize_frames

__all__ = ["CDCCompressor"]


class CDCCompressor(LearnedBaseline):
    """Data-space conditional diffusion compressor (X or eps variant).

    Parameters
    ----------
    parameterization:
        ``"x"`` — the denoiser outputs the clean signal estimate;
        ``"eps"`` — it outputs the noise estimate (DDPM standard).
    """

    GROUP = 3  # consecutive frames treated as channels
    #: trained components persisted by state_dict()/load_state()
    _state_modules = ("vae", "unet")

    def __init__(self, vae_cfg: VAEConfig, diff_cfg: DiffusionConfig,
                 parameterization: str = "eps", seed: int = 0,
                 original_dtype_bytes: int = 4):
        super().__init__(original_dtype_bytes)
        if parameterization not in ("x", "eps"):
            raise ValueError(
                f"unknown parameterization {parameterization!r}")
        if vae_cfg.in_channels != self.GROUP:
            raise ValueError(
                f"CDC requires a {self.GROUP}-channel VAE config")
        self.parameterization = parameterization
        rng = np.random.default_rng(seed)
        self.vae = VAEHyperprior(vae_cfg, rng=rng)
        self.upfactor = vae_cfg.downsample_factor
        # data-space UNet input: GROUP data channels + latent channels
        self.unet = DenoisingUNet(
            DiffusionConfig(
                latent_channels=self.GROUP + vae_cfg.latent_channels,
                base_channels=diff_cfg.base_channels,
                channel_mults=diff_cfg.channel_mults,
                time_embed_dim=diff_cfg.time_embed_dim,
                num_frames=1,  # CDC is purely 2-D: window length 1
                train_steps=diff_cfg.train_steps,
                finetune_steps=diff_cfg.finetune_steps,
                num_groups=diff_cfg.num_groups),
            rng=rng, out_channels=self.GROUP)
        self.schedule = NoiseSchedule(diff_cfg.train_steps,
                                      diff_cfg.beta_schedule)
        self.seed = seed

    # ------------------------------------------------------------------
    def name_tag(self) -> str:
        return f"CDC-{'X' if self.parameterization == 'x' else 'eps'}"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.name_tag()

    # ------------------------------------------------------------------
    def _group(self, frames_norm: np.ndarray) -> np.ndarray:
        """(T, H, W) -> (G, 3, H, W), padding by edge repetition."""
        T = frames_norm.shape[0]
        pad = (-T) % self.GROUP
        if pad:
            frames_norm = np.concatenate(
                [frames_norm, np.repeat(frames_norm[-1:], pad, axis=0)],
                axis=0)
        G = frames_norm.shape[0] // self.GROUP
        return frames_norm.reshape(G, self.GROUP, *frames_norm.shape[1:])

    def _cond_channels(self, y_int: np.ndarray) -> np.ndarray:
        """Upsample latents to data resolution for concat conditioning."""
        up = np.repeat(np.repeat(y_int, self.upfactor, axis=2),
                       self.upfactor, axis=3)
        return up

    def _denoise(self, x_t: np.ndarray, cond: np.ndarray,
                 t: int) -> np.ndarray:
        """One network evaluation; returns eps_hat regardless of param."""
        inp = np.concatenate([x_t, cond], axis=1)[:, None]  # (B,1,C,H,W)
        with no_grad():
            out = self.unet(Tensor(inp), t).numpy()[:, 0]
        return self._eps_from_out(x_t, out, t)

    def _eps_from_out(self, x_t: np.ndarray, out: np.ndarray,
                      t: int) -> np.ndarray:
        """Convert the network output to an eps estimate."""
        if self.parameterization == "eps":
            return out
        # x-parameterization: convert the x0 estimate to an eps estimate
        i = t - 1
        sab = self.schedule.sqrt_alpha_bars[i]
        somab = max(self.schedule.sqrt_one_minus_alpha_bars[i], 1e-12)
        return (x_t - sab * out) / somab

    # ------------------------------------------------------------------
    def train(self, windows: Sequence[np.ndarray], vae_iters: int = 200,
              diffusion_iters: int = 300, batch: int = 4, lr: float = 1e-3,
              lam: float = 1e-6) -> None:
        frames = np.concatenate(
            [normalize_frames(np.asarray(w))[0] for w in windows], axis=0)
        groups = self._group(frames)
        rng = np.random.default_rng((self.seed, 1))

        # stage 1: VAE on 3-channel groups
        opt = Adam(self.vae.parameters(), lr=lr)
        loss_fn = RDLoss(lam=lam)
        self.vae.train()
        for _ in range(vae_iters):
            idx = rng.integers(0, groups.shape[0], size=batch)
            x = Tensor(groups[idx])
            opt.zero_grad()
            out = self.vae(x, rng=rng)
            loss_fn(x, out).loss.backward()
            clip_grad_norm(self.vae.parameters(), 1.0)
            opt.step()
        self.vae.eval()

        # stage 2: conditional diffusion in data space
        opt = Adam(self.unet.parameters(), lr=lr)
        self.unet.train()
        for _ in range(diffusion_iters):
            idx = rng.integers(0, groups.shape[0], size=batch)
            x0 = groups[idx]
            y = self.vae.encode_latents(x0)
            cond = self._cond_channels(y)
            t = int(rng.integers(1, self.schedule.steps + 1))
            eps = rng.standard_normal(x0.shape)
            x_t = self.schedule.q_sample(x0, t, eps)
            inp = np.concatenate([x_t, cond], axis=1)[:, None]
            out = self.unet(Tensor(inp), t)
            out2d = F.reshape(out, x0.shape)
            target = eps if self.parameterization == "eps" else x0
            loss = F.mse_loss(out2d, Tensor(target))
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(self.unet.parameters(), 1.0)
            opt.step()
        self.unet.eval()

    # ------------------------------------------------------------------
    def _encode(self, frames_norm: np.ndarray) -> list:
        groups = self._group(frames_norm)
        streams, _ = self.vae.compress(groups)
        return [streams]

    def _decode(self, streams: list, num_frames: int,
                seed: int) -> np.ndarray:
        y_int = self.vae.decompress_latents(streams[0])
        cond = self._cond_channels(y_int)
        shape = (y_int.shape[0], self.GROUP, *cond.shape[2:])
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        # Preallocate the UNet input once: conditioning channels never
        # change across steps, only the x_t slice is rewritten.  The
        # per-step noise buffer is likewise reused (standard_normal's
        # ``out=`` draws the identical stream).
        B = shape[0]
        inp = np.empty((B, 1, self.GROUP + cond.shape[1], *shape[2:]))
        inp[:, 0, self.GROUP:] = cond
        noise = np.empty_like(x)
        for t in range(self.schedule.steps, 0, -1):
            inp[:, 0, :self.GROUP] = x
            with no_grad():
                out = self.unet(Tensor(inp), t).numpy()[:, 0]
            eps_hat = self._eps_from_out(x, out, t)
            if t > 1:
                rng.standard_normal(out=noise)
                x = self.schedule.posterior_step(x, t, eps_hat, noise,
                                                 clip_x0=(-1.5, 1.5))
            else:
                x = self.schedule.posterior_step(x, t, eps_hat, None,
                                                 clip_x0=(-1.5, 1.5))
        return x.reshape(-1, *shape[2:])[:num_frames]
