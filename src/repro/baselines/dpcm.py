"""DPCM-analogue: closed-loop temporal prediction, pointwise bounded.

Differential Pulse Code Modulation [31] encodes the difference between
successive values.  For spatiotemporal stacks the natural DPCM axis is
time: each frame is predicted from the *reconstructed* previous frames
and only the prediction residual is quantized (linear grid of width
``2 * eb``) and entropy coded.  Because the loop is closed — the
encoder's predictor sees exactly what the decoder will see — the
pointwise bound ``|x - x̂|_inf <= eb`` holds by construction.

Two predictor orders are provided:

* order 1: ``x̂_t = x̂_{t-1}`` (classic DPCM);
* order 2: ``x̂_t = 2 x̂_{t-1} - x̂_{t-2}`` (linear extrapolation,
  which exploits the smooth temporal advection of scientific fields).

This is the weakest member of the rule-based family — it ignores all
spatial correlation — and serves as the floor the multilevel methods
(:mod:`~repro.baselines.szlike`, :mod:`~repro.baselines.mgard`) are
measured against.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from ..postprocess.coding import decode_ints, encode_ints

__all__ = ["DPCMCompressor"]

_MAGIC = b"DPC1"
_HDR = "<IIIId"  # T, H, W, order, eb


class DPCMCompressor:
    """Temporal-predictive error-bounded coder (DPCM family).

    Parameters
    ----------
    order:
        Predictor order, 1 (previous frame) or 2 (linear extrapolation).
    """

    name = "DPCM"

    def __init__(self, order: int = 2):
        if order not in (1, 2):
            raise ValueError("order must be 1 or 2")
        self.order = order

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        """Compress with pointwise absolute bound ``error_bound``."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        eb = float(error_bound)
        T = frames.shape[0]
        recon = np.empty_like(frames)
        chunks: List[np.ndarray] = []
        for t in range(T):
            pred = self._predict(recon, t)
            q = np.rint((frames[t] - pred) / (2 * eb)).astype(np.int64)
            recon[t] = pred + q * (2 * eb)
            chunks.append(q.ravel())
        header = _MAGIC + struct.pack(_HDR, *frames.shape, self.order, eb)
        # one stream for all residual planes: the histogram header is
        # paid once and the alphabet is shared across time
        body = encode_ints(np.concatenate(chunks))
        return header + body

    # ------------------------------------------------------------------
    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not a DPCM stream")
        T, H, W, order, eb = struct.unpack_from(_HDR, data, 4)
        pos = 4 + struct.calcsize(_HDR)
        q_all, pos = decode_ints(data, pos)
        q_all = q_all.reshape(T, H, W)
        recon = np.empty((T, H, W))
        # order comes from the stream, not self — decompress must stay
        # free of instance mutation so codec engines can run it from
        # several threads at once
        for t in range(T):
            recon[t] = (self._predict(recon, t, order=order)
                        + q_all[t] * (2 * eb))
        return recon

    # ------------------------------------------------------------------
    def _predict(self, recon: np.ndarray, t: int,
                 order: int = None) -> np.ndarray:
        """Predict frame ``t`` from already-reconstructed history."""
        order = self.order if order is None else order
        if t == 0:
            return np.zeros(recon.shape[1:])
        if t == 1 or order == 1:
            return recon[t - 1]
        return 2.0 * recon[t - 1] - recon[t - 2]
