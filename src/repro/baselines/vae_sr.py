"""VAE-SR baseline [25]: VAE coding + super-resolution refinement.

The strongest learning-based baseline in the paper's comparison.  It
codes the latent of **every** frame with a (more aggressive) VAE +
hyperprior and sharpens the decoder output with a residual
super-resolution module — high fidelity, but it pays latent storage per
frame, which is exactly the cost the keyframe-diffusion scheme avoids.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..compression import RDLoss, VAEHyperprior
from ..config import VAEConfig
from ..nn import Conv2d, Module, Sequential, SiLU, Tensor, fastpath, no_grad
from ..nn import functional as F
from ..nn.optim import Adam, clip_grad_norm
from .common import LearnedBaseline, normalize_frames

__all__ = ["VAESRCompressor", "SRModule"]


class SRModule(Module):
    """Residual refinement network (the "SR" stage of VAE-SR)."""

    def __init__(self, filters: int = 16,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.net = Sequential(
            Conv2d(1, filters, 3, padding=1, rng=rng), SiLU(),
            Conv2d(filters, filters, 3, padding=1, rng=rng), SiLU(),
            Conv2d(filters, 1, 3, padding=1, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        if fastpath.active():
            arr = x.data if isinstance(x, Tensor) else np.asarray(
                x, dtype=np.float64)
            return Tensor(self._fast(arr))
        return x + self.net(x)

    def _fast(self, arr: np.ndarray) -> np.ndarray:
        return arr + self.net._fast(arr)


class VAESRCompressor(LearnedBaseline):
    """Every-frame VAE + hyperprior coding with SR refinement."""

    name = "VAE-SR"
    #: trained components persisted by state_dict()/load_state()
    _state_modules = ("vae", "sr")

    def __init__(self, vae_cfg: VAEConfig, sr_filters: int = 16,
                 seed: int = 0, original_dtype_bytes: int = 4):
        super().__init__(original_dtype_bytes)
        rng = np.random.default_rng(seed)
        self.vae = VAEHyperprior(vae_cfg, rng=rng)
        self.sr = SRModule(sr_filters, rng=rng)
        self.seed = seed

    # ------------------------------------------------------------------
    def train(self, windows: Sequence[np.ndarray], vae_iters: int = 200,
              sr_iters: int = 100, batch: int = 4, lr: float = 1e-3,
              lam: float = 1e-6) -> None:
        frames = np.concatenate(
            [normalize_frames(np.asarray(w))[0] for w in windows], axis=0)
        rng = np.random.default_rng((self.seed, 1))

        # stage 1: the VAE under the RD loss
        opt = Adam(self.vae.parameters(), lr=lr)
        loss_fn = RDLoss(lam=lam)
        self.vae.train()
        for _ in range(vae_iters):
            idx = rng.integers(0, frames.shape[0], size=batch)
            x = Tensor(frames[idx][:, None])
            opt.zero_grad()
            out = self.vae(x, rng=rng)
            loss_fn(x, out).loss.backward()
            clip_grad_norm(self.vae.parameters(), 1.0)
            opt.step()
        self.vae.eval()

        # stage 2: SR on the quantized-reconstruction residual
        opt = Adam(self.sr.parameters(), lr=lr)
        self.sr.train()
        for _ in range(sr_iters):
            idx = rng.integers(0, frames.shape[0], size=batch)
            x = frames[idx][:, None]
            y = self.vae.encode_latents(x)
            dec = Tensor(self.vae.decode_latents(y))
            opt.zero_grad()
            refined = self.sr(dec)
            loss = F.mse_loss(refined, Tensor(x))
            loss.backward()
            clip_grad_norm(self.sr.parameters(), 1.0)
            opt.step()
        self.sr.eval()

    # ------------------------------------------------------------------
    def _encode(self, frames_norm: np.ndarray) -> list:
        streams, _ = self.vae.compress(frames_norm[:, None])
        return [streams]

    def _decode(self, streams: list, num_frames: int,
                seed: int) -> np.ndarray:
        y_int = self.vae.decompress_latents(streams[0])
        dec = self.vae.decode_latents(y_int)
        with no_grad():
            refined = self.sr(Tensor(dec)).numpy()
        return refined[:, 0]
