"""``repro.baselines`` — the compressors the paper compares against.

Rule-based (Sec. 4.7, dotted lines in Fig. 3):

* :mod:`repro.baselines.szlike` — SZ3 analogue: multi-level
  interpolation-predictive, pointwise error-bounded;
* :mod:`repro.baselines.zfplike` — ZFP analogue: blockwise
  near-orthogonal transform coding.

Additional rule-based families from the paper's related work (Sec. 2),
used by the extended rule-based comparison bench:

* :mod:`repro.baselines.tthresh` — TTHRESH analogue: HOSVD transform
  coding with an L2 (RMSE) guarantee;
* :mod:`repro.baselines.mgard` — MGARD analogue: multilevel
  hierarchical coefficients with progressive recovery;
* :mod:`repro.baselines.dpcm` — temporal DPCM predictor;
* :mod:`repro.baselines.fazlike` — FAZ analogue: auto-tuned modular
  wavelet/predictor coder (reversible integer 5/3 lifting).

Learning-based (solid lines in Fig. 3), all of which store latents for
**every** frame/block — the storage overhead our keyframe scheme
removes:

* :mod:`repro.baselines.cdc` — conditional diffusion compression in
  *data* space (CDC-X predicts the signal, CDC-eps the noise);
* :mod:`repro.baselines.gcd` — 3-D block-based data-space diffusion;
* :mod:`repro.baselines.vae_sr` — VAE + super-resolution refinement.
"""

from .cdc import CDCCompressor
from .dpcm import DPCMCompressor
from .fazlike import FAZLikeCompressor, WaveletCoder
from .gcd import GCDCompressor
from .mgard import MGARDLikeCompressor
from .szlike import SZLikeCompressor
from .tthresh import TTHRESHLikeCompressor
from .vae_sr import VAESRCompressor
from .zfplike import ZFPLikeCompressor

__all__ = ["SZLikeCompressor", "ZFPLikeCompressor", "CDCCompressor",
           "GCDCompressor", "VAESRCompressor", "TTHRESHLikeCompressor",
           "MGARDLikeCompressor", "DPCMCompressor", "FAZLikeCompressor",
           "WaveletCoder"]
