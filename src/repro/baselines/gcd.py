"""GCD baseline [20]: 3-D block-based data-space conditional diffusion.

GCD extends CDC from 2-D images to spatiotemporal blocks: a latent is
stored for every frame of every block, and a video-style diffusion
model denoises the whole block in the *data* domain with the upsampled
latents as per-frame conditioning channels.  Against our method it pays
twice — per-frame latent storage *and* full-resolution reverse
diffusion (Table 2 shows GCD as the slowest decoder).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..compression import RDLoss, VAEHyperprior
from ..config import DiffusionConfig, VAEConfig
from ..diffusion.schedule import NoiseSchedule
from ..diffusion.unet import DenoisingUNet
from ..nn import Tensor, no_grad
from ..nn import functional as F
from ..nn.optim import Adam, clip_grad_norm
from .common import LearnedBaseline, normalize_frames

__all__ = ["GCDCompressor"]

#: Byte budget for pre-drawing every window's noise when batching the
#: reverse process.  Above it, decode falls back to the sequential
#: per-window loop (bit-identical by construction).
GCD_NOISE_BYTES_MAX = 1 << 28


class GCDCompressor(LearnedBaseline):
    """Every-frame latents + data-space video diffusion decoder."""

    name = "GCD"
    #: trained components persisted by state_dict()/load_state()
    _state_modules = ("vae", "unet")

    def __init__(self, vae_cfg: VAEConfig, diff_cfg: DiffusionConfig,
                 seed: int = 0, original_dtype_bytes: int = 4):
        super().__init__(original_dtype_bytes)
        if vae_cfg.in_channels != 1:
            raise ValueError("GCD uses a single-channel per-frame VAE")
        rng = np.random.default_rng(seed)
        self.vae = VAEHyperprior(vae_cfg, rng=rng)
        self.upfactor = vae_cfg.downsample_factor
        self.window = diff_cfg.num_frames
        self.unet = DenoisingUNet(
            DiffusionConfig(
                latent_channels=1 + vae_cfg.latent_channels,
                base_channels=diff_cfg.base_channels,
                channel_mults=diff_cfg.channel_mults,
                time_embed_dim=diff_cfg.time_embed_dim,
                num_frames=diff_cfg.num_frames,
                train_steps=diff_cfg.train_steps,
                finetune_steps=diff_cfg.finetune_steps,
                num_groups=diff_cfg.num_groups),
            rng=rng, out_channels=1)
        self.schedule = NoiseSchedule(diff_cfg.train_steps,
                                      diff_cfg.beta_schedule)
        self.seed = seed

    # ------------------------------------------------------------------
    def _cond_window(self, y_int: np.ndarray) -> np.ndarray:
        """(N, C, h, w) latents -> (1, N, C, H, W) conditioning."""
        up = np.repeat(np.repeat(y_int, self.upfactor, axis=2),
                       self.upfactor, axis=3)
        return up[None]

    def _window_batches(self, windows: Sequence[np.ndarray]) -> np.ndarray:
        out = [normalize_frames(np.asarray(w))[0] for w in windows]
        for w in out:
            if w.shape[0] != self.window:
                raise ValueError(
                    f"training windows must have {self.window} frames")
        return np.stack(out)  # (W, N, H, W)

    # ------------------------------------------------------------------
    def train(self, windows: Sequence[np.ndarray], vae_iters: int = 200,
              diffusion_iters: int = 300, batch: int = 2, lr: float = 1e-3,
              lam: float = 1e-6) -> None:
        stacks = self._window_batches(windows)
        frames = stacks.reshape(-1, *stacks.shape[2:])
        rng = np.random.default_rng((self.seed, 1))

        # stage 1: per-frame VAE
        opt = Adam(self.vae.parameters(), lr=lr)
        loss_fn = RDLoss(lam=lam)
        self.vae.train()
        for _ in range(vae_iters):
            idx = rng.integers(0, frames.shape[0], size=4)
            x = Tensor(frames[idx][:, None])
            opt.zero_grad()
            out = self.vae(x, rng=rng)
            loss_fn(x, out).loss.backward()
            clip_grad_norm(self.vae.parameters(), 1.0)
            opt.step()
        self.vae.eval()

        # stage 2: conditional video diffusion in data space
        opt = Adam(self.unet.parameters(), lr=lr)
        self.unet.train()
        for _ in range(diffusion_iters):
            idx = rng.integers(0, stacks.shape[0],
                               size=min(batch, stacks.shape[0]))
            x0 = stacks[idx][:, :, None]              # (B, N, 1, H, W)
            B = x0.shape[0]
            conds = []
            for b in range(B):
                y = self.vae.encode_latents(x0[b])
                conds.append(self._cond_window(y)[0])
            cond = np.stack(conds)                    # (B, N, C, H, W)
            t = int(rng.integers(1, self.schedule.steps + 1))
            eps = rng.standard_normal(x0.shape)
            x_t = self.schedule.q_sample(x0, t, eps)
            inp = np.concatenate([x_t, cond], axis=2)
            out = self.unet(Tensor(inp), t)
            loss = F.mse_loss(out, Tensor(eps))
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(self.unet.parameters(), 1.0)
            opt.step()
        self.unet.eval()

    # ------------------------------------------------------------------
    def _encode(self, frames_norm: np.ndarray) -> list:
        from ..pipeline.compressor import window_starts
        out = []
        for start in window_starts(frames_norm.shape[0], self.window):
            chunk = frames_norm[start:start + self.window]
            streams, _ = self.vae.compress(chunk[:, None])
            out.append(streams)
        return out

    def _decode(self, streams: list, num_frames: int,
                seed: int) -> np.ndarray:
        from ..pipeline.compressor import window_starts
        rng = np.random.default_rng(seed)
        starts = window_starts(num_frames, self.window)
        conds = np.concatenate(
            [self._cond_window(self.vae.decompress_latents(wdw))
             for wdw in streams], axis=0)          # (W, N, C, h, w)
        W = conds.shape[0]
        h, w = conds.shape[3:]
        steps = self.schedule.steps
        # All windows share one rng, so batching them needs every draw
        # hoisted up front *in the sequential order*: per window, the
        # init noise first, then the per-step noise (none at t == 1).
        noise_bytes = W * steps * self.window * h * w * 8
        if noise_bytes > GCD_NOISE_BYTES_MAX:
            return self._decode_sequential(conds, starts, num_frames, rng)
        x = np.empty((W, self.window, 1, h, w))
        step_noise = np.empty((steps - 1, W, self.window, 1, h, w))
        for b in range(W):
            rng.standard_normal(out=x[b])
            for s in range(steps - 1):
                rng.standard_normal(out=step_noise[s, b])
        # Conditioning channels are constant across steps: write them
        # into the preallocated UNet input once.
        inp = np.empty((W, self.window, 1 + conds.shape[2], h, w))
        inp[:, :, 1:] = conds
        for t in range(steps, 0, -1):
            inp[:, :, :1] = x
            with no_grad():
                eps_hat = self.unet(Tensor(inp), t).numpy()
            noise = step_noise[steps - t] if t > 1 else None
            x = self.schedule.posterior_step(x, t, eps_hat, noise,
                                             clip_x0=(-1.5, 1.5))
        recon = np.empty((num_frames, h, w))
        for b, start in enumerate(starts):
            recon[start:start + self.window] = x[b, :, 0]
        return recon

    def _decode_sequential(self, conds: np.ndarray, starts: list,
                           num_frames: int,
                           rng: np.random.Generator) -> np.ndarray:
        """Legacy per-window reverse loop (memory-bounded fallback)."""
        h, w = conds.shape[3:]
        recon = np.empty((num_frames, h, w))
        for b, start in enumerate(starts):
            cond = conds[b:b + 1]
            x = rng.standard_normal((1, self.window, 1, h, w))
            for t in range(self.schedule.steps, 0, -1):
                inp = np.concatenate([x, cond], axis=2)
                with no_grad():
                    eps_hat = self.unet(Tensor(inp), t).numpy()
                if t > 1:
                    noise = rng.standard_normal(x.shape)
                    x = self.schedule.posterior_step(x, t, eps_hat, noise,
                                                     clip_x0=(-1.5, 1.5))
                else:
                    x = self.schedule.posterior_step(x, t, eps_hat, None,
                                                     clip_x0=(-1.5, 1.5))
            recon[start:start + self.window] = x[0, :, 0]
        return recon
