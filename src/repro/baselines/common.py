"""Shared machinery for the learned baselines.

All three learned baselines (CDC, GCD, VAE-SR) follow the same
storage pattern the paper contrasts with ours: a VAE+hyperprior codes
the latents of **every** frame, and a learned decoder reconstructs.
This module centralizes frame normalization, latent stream accounting,
error-bound correction and the result container so each baseline file
only implements its decoder and training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression import VAEHyperprior
from ..metrics import CompressionAccounting, nrmse
from ..pipeline.compressor import LatentDiffusionCompressor
from ..postprocess import ErrorBoundCorrector, ResidualPCA

__all__ = ["BaselineResult", "LearnedBaseline", "normalize_frames",
           "denormalize_frames", "stream_bytes"]

# Re-use the pipeline's exact per-frame normalization.
normalize_frames = LatentDiffusionCompressor._normalize_frames
denormalize_frames = LatentDiffusionCompressor._denormalize_frames

#: Fixed per-stream header cost charged to every baseline (geometry,
#: entropy-model headers) — matches the order of magnitude of our own
#: blob header so comparisons stay fair.
HEADER_BYTES = 64


def stream_bytes(streams: Dict) -> int:
    """Actual coded bytes of a VAE compress() stream bundle."""
    return len(streams["y_stream"]) + len(streams["z_stream"])


@dataclass
class BaselineResult:
    """Compression outcome of a baseline (mirrors CompressionResult)."""

    reconstruction: np.ndarray
    accounting: CompressionAccounting
    achieved_nrmse: float

    @property
    def ratio(self) -> float:
        return self.accounting.ratio


class LearnedBaseline:
    """Base class: every-frame latent storage + optional error bound."""

    name = "learned-baseline"

    #: attribute names of the trainable :class:`~repro.nn.Module`
    #: components; drives the generic :meth:`state_dict` /
    #: :meth:`load_state` persistence path (set by each subclass)
    _state_modules: Tuple[str, ...] = ()

    def __init__(self, original_dtype_bytes: int = 4):
        self.original_dtype_bytes = original_dtype_bytes
        self.corrector: Optional[ErrorBoundCorrector] = None

    # -- subclass interface ------------------------------------------------
    def _encode(self, frames_norm: np.ndarray) -> List[Dict]:
        """Entropy-code normalized ``(T, H, W)`` frames.

        Returns the list of VAE stream bundles (one or more dicts in
        the ``VAEHyperprior.compress`` format) that, together with the
        frame count and a noise seed, fully determine the decode.
        """
        raise NotImplementedError

    def _decode(self, streams: List[Dict], num_frames: int,
                seed: int) -> np.ndarray:
        """Reconstruct normalized frames from :meth:`_encode` streams.

        This *is* the decompressor: it must depend only on the coded
        streams, the frame count and the seed — never on the original
        frames — so a serialized payload decodes to exactly the
        reconstruction reported at compression time.
        """
        raise NotImplementedError

    def _reconstruct(self, frames_norm: np.ndarray, seed: int
                     ) -> Tuple[np.ndarray, int]:
        """Encode + decode; returns ``(reconstruction_norm, bytes)``."""
        streams = self._encode(frames_norm)
        recon = self._decode(streams, frames_norm.shape[0], seed)
        return recon, sum(stream_bytes(s) for s in streams)

    # -- shared pipeline -----------------------------------------------------
    def compress(self, frames: np.ndarray,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None,
                 seed: int = 0) -> BaselineResult:
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        norm, norms = normalize_frames(frames)
        recon_norm, coded = self._reconstruct(norm, seed)
        recon = denormalize_frames(recon_norm, norms)
        latent_bytes = coded + HEADER_BYTES + norms.size * 4

        tau = error_bound
        if nrmse_bound is not None:
            rng_ = float(frames.max() - frames.min())
            tau = nrmse_bound * rng_ * np.sqrt(frames.size)
        guarantee = 0
        if tau is not None:
            if self.corrector is None:
                raise ValueError(f"{self.name} has no fitted corrector")
            res = self.corrector.correct(frames, recon, tau)
            recon = res.corrected
            guarantee = res.payload_bytes

        acc = CompressionAccounting(
            original_bytes=frames.size * self.original_dtype_bytes,
            latent_bytes=latent_bytes, guarantee_bytes=guarantee)
        return BaselineResult(reconstruction=recon, accounting=acc,
                              achieved_nrmse=nrmse(frames, recon))

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Full trained state as flat ``{name: array}`` (real arrays,
        suitable for :mod:`repro.nn.serialization` / the artifact
        store).

        Keys are ``<module>/<param>`` for every module named in
        ``_state_modules``, plus ``corrector/basis`` and
        ``corrector/meta`` (block, rank, coeff_quant_bits) when a
        corrector is fitted.
        """
        state: Dict[str, np.ndarray] = {}
        for mod_name in self._state_modules:
            module = getattr(self, mod_name)
            for key, arr in module.state_dict().items():
                state[f"{mod_name}/{key}"] = arr
        if self.corrector is not None:
            pca = self.corrector.pca
            state["corrector/basis"] = pca.basis.copy()
            state["corrector/meta"] = np.asarray(
                [pca.block, pca.rank, self.corrector.coeff_quant_bits],
                dtype=np.int64)
        return state

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output in place (strict)."""
        for mod_name in self._state_modules:
            prefix = f"{mod_name}/"
            sub = {k[len(prefix):]: v for k, v in state.items()
                   if k.startswith(prefix)}
            getattr(self, mod_name).load_state_dict(sub)
        if "corrector/basis" in state:
            block, rank, bits = (int(v) for v in state["corrector/meta"])
            pca = ResidualPCA.from_state({
                "block": block, "rank": rank,
                "basis": state["corrector/basis"]})
            self.corrector = ErrorBoundCorrector(pca,
                                                 coeff_quant_bits=bits)
        else:
            self.corrector = None

    # -- corrector ------------------------------------------------------------
    def fit_corrector(self, windows: Sequence[np.ndarray], block: int = 4,
                      rank: int = 8, max_windows: int = 4) -> None:
        residuals: List[np.ndarray] = []
        for wdw in list(windows)[:max_windows]:
            wdw = np.asarray(wdw)
            res = self.compress(wdw)
            residuals.append(wdw - res.reconstruction)
        pca = ResidualPCA(block=block, rank=rank)
        pca.fit(np.concatenate(residuals, axis=0))
        self.corrector = ErrorBoundCorrector(pca)
