"""ZFP-analogue: blockwise near-orthogonal transform coding.

ZFP [28] partitions data into 4^d blocks, applies a fast near-orthogonal
decorrelating transform and encodes coefficients by bit planes.  This
analogue keeps the essential structure for ``(T, H, W)`` stacks:

* non-overlapping ``4x4`` spatial blocks per frame,
* ZFP's forward lifting transform applied separably along both axes
  (the exact integer-friendly matrix from the ZFP paper, here in
  floating point),
* uniform coefficient quantization with a step chosen from the error
  bound and the transform's operator norm (giving a true pointwise
  bound, slightly conservative like fixed-accuracy ZFP),
* arithmetic coding of the quantized coefficients grouped by their
  within-block frequency (DC and AC bands get separate contexts).

Being transform-based with short blocks, it decorrelates less than the
prediction-based SZ analogue on smooth fields — reproducing the
SZ3-over-ZFP ordering the paper reports.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from ..postprocess.coding import decode_ints, encode_ints

__all__ = ["ZFPLikeCompressor"]

_MAGIC = b"ZFL1"

# ZFP's near-orthogonal 4-point decorrelating transform.
_ZFP_T = np.array([
    [4, 4, 4, 4],
    [5, 1, -1, -5],
    [-4, 4, 4, -4],
    [-2, 6, -6, 2],
], dtype=np.float64) / 16.0
_ZFP_TI = np.linalg.inv(_ZFP_T)

#: Worst-case amplification ||T^-1||_inf used for the pointwise bound.
_INV_NORM = float(np.abs(np.kron(_ZFP_TI, _ZFP_TI)).sum(axis=1).max())


def _pad_to(x: np.ndarray, mult: int) -> np.ndarray:
    T, H, W = x.shape
    Hp, Wp = -(-H // mult) * mult, -(-W // mult) * mult
    if (Hp, Wp) == (H, W):
        return x
    return np.pad(x, ((0, 0), (0, Hp - H), (0, Wp - W)), mode="edge")


def _block_view(x: np.ndarray) -> np.ndarray:
    """(T, H, W) -> (T*nb, 4, 4) non-overlapping block rows."""
    T, H, W = x.shape
    return (x.reshape(T, H // 4, 4, W // 4, 4)
            .transpose(0, 1, 3, 2, 4)
            .reshape(-1, 4, 4))


def _unblock(blocks: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
    T, H, W = shape
    return (blocks.reshape(T, H // 4, W // 4, 4, 4)
            .transpose(0, 1, 3, 2, 4)
            .reshape(T, H, W))


class ZFPLikeCompressor:
    """Error-bounded transform compressor (ZFP family)."""

    name = "ZFP-like"

    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        T, H, W = frames.shape
        padded = _pad_to(frames, 4)
        blocks = _block_view(padded)
        # separable transform: rows then columns
        coef = np.einsum("ij,bjk,lk->bil", _ZFP_T, blocks, _ZFP_T,
                         optimize=True)
        qstep = 2.0 * error_bound / _INV_NORM
        q = np.rint(coef / qstep).astype(np.int64)
        header = _MAGIC + struct.pack("<IIIIId", T, H, W,
                                      padded.shape[1], padded.shape[2],
                                      error_bound)
        # separate contexts: DC coefficient vs the 15 AC coefficients
        dc = q[:, 0, 0]
        ac = np.concatenate([q.reshape(-1, 16)[:, 1:].ravel()])
        return header + encode_ints(dc) + encode_ints(ac)

    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not a ZFP-like stream")
        T, H, W, Hp, Wp, eb = struct.unpack_from("<IIIIId", data, 4)
        pos = 4 + struct.calcsize("<IIIIId")
        dc, pos = decode_ints(data, pos)
        ac, pos = decode_ints(data, pos)
        nb = dc.size
        q = np.zeros((nb, 16), dtype=np.int64)
        q[:, 0] = dc
        q[:, 1:] = ac.reshape(nb, 15)
        qstep = 2.0 * eb / _INV_NORM
        coef = q.reshape(nb, 4, 4).astype(np.float64) * qstep
        blocks = np.einsum("ij,bjk,lk->bil", _ZFP_TI, coef, _ZFP_TI,
                           optimize=True)
        padded = _unblock(blocks, (T, Hp, Wp))
        return padded[:, :H, :W]
