"""MGARD-analogue: multilevel hierarchical coefficients, progressive.

MGARD [2, 13] transforms floating-point data into a hierarchy of
multilevel coefficients (differences between nodal values and their
multilinear interpolation from the next-coarser grid) and quantizes
each level against an error budget, which yields both rigorous error
control and progressive, resolution-by-resolution recovery.

This module implements that family for ``(T, H, W)`` stacks:

* level ``L`` (coarsest): the dyadic sub-lattice is quantized directly;
* level ``ℓ < L``: nodes new at level ``ℓ`` carry the difference
  between their value and the multilinear interpolation of the
  *original* coarser nodal values (open-loop, like MGARD's projection
  hierarchy — contrast with the closed-loop prediction of
  :mod:`repro.baselines.szlike`);
* each level is quantized with its own step from a geometric budget
  split.  Multilinear interpolation is a convex combination, so a
  coarse-level pointwise error never amplifies when propagated to
  finer levels; the triangle inequality over levels gives the global
  pointwise guarantee ``|x - x̂|_inf <= eb``.

Progressive recovery: :meth:`MGARDLikeCompressor.decompress` takes
``max_level`` and reconstructs the data as seen from that level of the
hierarchy (finer corrections left at their interpolated prediction),
exactly how MGARD serves reduced-resolution queries.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MGARDLikeCompressor"]

from ..postprocess.coding import decode_ints, encode_ints

_MAGIC = b"MGD1"
_HDR = "<IIIIdd"  # T, H, W, levels, eb, budget_ratio


def _level_mask(shape: Tuple[int, ...], level: int) -> np.ndarray:
    """Boolean mask of nodes that exist on the level-``level`` lattice."""
    step = 2 ** level
    mask = np.zeros(shape, dtype=bool)
    mask[tuple(slice(None, None, step) for _ in shape)] = True
    return mask


def _interpolate_from_level(values: np.ndarray, level: int) -> np.ndarray:
    """Multilinear interpolation of the level-``level`` lattice to all nodes.

    ``values`` holds valid data on the level lattice (stride
    ``2**level`` along each axis); everywhere else it is ignored.  The
    interpolation proceeds axis by axis, halving the stride: midpoints
    get the mean of their two lattice neighbours (boundary midpoints
    copy their single neighbour).  All operations are whole-lattice
    slices — no per-element loops.
    """
    out = values.copy()
    step = 2 ** level
    while step > 1:
        half = step // 2
        for axis in range(out.ndim):
            n = out.shape[axis]
            odd = np.arange(half, n, step)
            if odd.size == 0:
                continue

            def take(idx, a=axis, s=step, h=half):
                sl = []
                for ax in range(out.ndim):
                    if ax == a:
                        sl.append(idx)
                    elif ax < a:
                        sl.append(slice(None, None, h))
                    else:
                        sl.append(slice(None, None, s))
                return tuple(sl)

            left = out[take(odd - half)]
            valid = odd + half < n
            right_pos = np.where(valid, odd + half, odd - half)
            right = out[take(right_pos)]
            out[take(odd)] = 0.5 * (left + right)
        step = half
    return out


class MGARDLikeCompressor:
    """Multilevel error-bounded coder with progressive recovery.

    Parameters
    ----------
    levels:
        Hierarchy depth; the coarsest lattice has stride ``2**levels``.
    budget_ratio:
        Geometric decay of the per-level error budget (coarser levels
        get the larger share since their errors are interpolated into
        everything below them).
    """

    name = "MGARD-like"

    def __init__(self, levels: int = 3, budget_ratio: float = 0.5):
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if not (0.0 < budget_ratio < 1.0):
            raise ValueError("budget_ratio must be in (0, 1)")
        self.levels = levels
        self.budget_ratio = budget_ratio

    # ------------------------------------------------------------------
    def _budgets(self, eb: float) -> List[float]:
        """Per-level pointwise budgets, coarsest first, summing to <= eb.

        Geometric split: level L gets the biggest slice.  The sum over
        all ``levels + 1`` entries (coarse lattice + each refinement) is
        ``eb`` exactly, so the triangle inequality closes the proof.
        """
        r = self.budget_ratio
        weights = np.array([r ** i for i in range(self.levels + 1)])
        return list(eb * weights / weights.sum())

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        """Compress with pointwise absolute bound ``error_bound``."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        eb = float(error_bound)
        budgets = self._budgets(eb)

        chunks: List[np.ndarray] = []
        # coarsest lattice, quantized directly
        cs = 2 ** self.levels
        coarse = frames[::cs, ::cs, ::cs]
        q0 = np.rint(coarse / (2 * budgets[0])).astype(np.int64)
        chunks.append(q0.ravel())

        # hierarchical coefficients, coarse-to-fine (open loop: the
        # prediction interpolates ORIGINAL coarser values, so every
        # level's coefficients are independent of quantization choices)
        for li, level in enumerate(range(self.levels, 0, -1)):
            pred = _interpolate_from_level(frames, level)
            new_nodes = _level_mask(frames.shape, level - 1) & ~_level_mask(
                frames.shape, level)
            coeff = frames[new_nodes] - pred[new_nodes]
            q = np.rint(coeff / (2 * budgets[li + 1])).astype(np.int64)
            chunks.append(q)

        header = _MAGIC + struct.pack(_HDR, *frames.shape, self.levels, eb,
                                      self.budget_ratio)
        body = b"".join(encode_ints(c) for c in chunks)
        return header + body

    # ------------------------------------------------------------------
    def decompress(self, data: bytes,
                   max_level: Optional[int] = None) -> np.ndarray:
        """Reconstruct; ``max_level`` (0 = full) truncates the hierarchy.

        With ``max_level = k`` the corrections of levels finer than
        ``k`` are dropped and those nodes keep their interpolated
        prediction — the progressive/multiresolution read MGARD serves.
        """
        if data[:4] != _MAGIC:
            raise ValueError("not an MGARD-like stream")
        T, H, W, levels, eb, ratio = struct.unpack_from(_HDR, data, 4)
        pos = 4 + struct.calcsize(_HDR)
        shape = (T, H, W)
        budgets = self._rebudget(eb, levels, ratio)
        stop_level = 0 if max_level is None else int(max_level)
        if not (0 <= stop_level <= levels):
            raise ValueError(f"max_level must be in [0, {levels}]")

        recon = np.zeros(shape)
        cs = 2 ** levels
        q0, pos = decode_ints(data, pos)
        recon[::cs, ::cs, ::cs] = (
            q0.reshape(recon[::cs, ::cs, ::cs].shape) * (2 * budgets[0]))

        for li, level in enumerate(range(levels, 0, -1)):
            pred = _interpolate_from_level(recon, level)
            new_nodes = _level_mask(shape, level - 1) & ~_level_mask(
                shape, level)
            q, pos = decode_ints(data, pos)
            if level - 1 >= stop_level:
                recon[new_nodes] = (pred[new_nodes]
                                    + q * (2 * budgets[li + 1]))
            else:
                recon[new_nodes] = pred[new_nodes]
        if stop_level > 0:
            # nodes finer than stop_level were never filled; fill by
            # interpolation so the output is a smooth coarse view
            recon = _interpolate_from_level(recon, stop_level)
        return recon

    @staticmethod
    def _rebudget(eb: float, levels: int, ratio: float) -> List[float]:
        weights = np.array([ratio ** i for i in range(levels + 1)])
        return list(eb * weights / weights.sum())
