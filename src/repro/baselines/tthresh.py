"""TTHRESH-analogue: HOSVD tensor compression with an L2 bound.

TTHRESH [5] compresses a multidimensional array by a higher-order SVD
(HOSVD): orthogonal factor matrices are computed from the SVD of each
mode unfolding, the data is rotated into the core-coefficient domain,
and the (rapidly decaying) core coefficients are coded progressively.
This module implements the same family for ``(T, H, W)`` stacks:

* mode-k factor matrices ``U_k`` from the unfolding SVDs, truncated to
  the smallest ranks whose discarded energy fits a share of the error
  budget (orthogonality makes discarded energy exactly the L2 error);
* uniform quantization of the core with the largest step whose
  *measured* reconstruction error still meets the bound (TTHRESH codes
  bitplanes; a searched uniform step plus an arithmetic coder is the
  same rate-distortion family with a simpler stream);
* factor matrices stored as float32 — their rounding error is covered
  by the verify-and-shrink loop, so the bound that is returned is the
  one actually measured against the decompressed output.

Unlike the pointwise-bounded predictors (:mod:`repro.baselines.szlike`),
the natural guarantee of an orthogonal-transform coder is the global L2
norm; :meth:`TTHRESHLikeCompressor.compress` therefore takes an RMSE
target, mirroring TTHRESH's own error metric.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from ..postprocess.coding import decode_ints, encode_ints

__all__ = ["TTHRESHLikeCompressor", "hosvd", "tucker_reconstruct"]

_MAGIC = b"TTH1"
_HDR = "<IIIIIId"  # shape (3), ranks (3), quant step


def _unfold(x: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: mode axis first, rest flattened."""
    return np.moveaxis(x, mode, 0).reshape(x.shape[mode], -1)


def _mode_dot(x: np.ndarray, mat: np.ndarray, mode: int) -> np.ndarray:
    """Tensor-times-matrix along ``mode`` (contract x's mode axis)."""
    moved = np.moveaxis(x, mode, -1)
    out = moved @ mat.T
    return np.moveaxis(out, -1, mode)


def hosvd(x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Full higher-order SVD: ``x = core x1 U0 x2 U1 x3 U2``.

    Returns the core tensor and the per-mode orthogonal factors.
    """
    x = np.asarray(x, dtype=np.float64)
    factors = []
    for mode in range(x.ndim):
        unf = _unfold(x, mode)
        # Left singular vectors only; economy SVD (HPC guide: prefer
        # full_matrices=False, the rest of U is never used).
        u, _, _ = np.linalg.svd(unf, full_matrices=False)
        factors.append(u)
    core = x
    for mode, u in enumerate(factors):
        core = _mode_dot(core, u.T, mode)
    return core, factors


def tucker_reconstruct(core: np.ndarray,
                       factors: List[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`hosvd` for (possibly truncated) factors."""
    x = core
    for mode, u in enumerate(factors):
        x = _mode_dot(x, u, mode)
    return x


class TTHRESHLikeCompressor:
    """HOSVD transform coder with a measured L2 (RMSE) guarantee.

    Parameters
    ----------
    truncation_share:
        Fraction of the squared error budget spent on rank truncation
        (the rest goes to core quantization).
    """

    name = "TTHRESH-like"

    def __init__(self, truncation_share: float = 0.1):
        if not (0.0 <= truncation_share < 1.0):
            raise ValueError("truncation_share must be in [0, 1)")
        self.truncation_share = truncation_share

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, rmse_bound: float) -> bytes:
        """Compress so the decompressed RMSE is ``<= rmse_bound``.

        The guarantee is verified against the *actual* decode path
        (including float32 factor storage); the quantization step is
        shrunk until it holds.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if rmse_bound <= 0:
            raise ValueError("rmse_bound must be positive")
        tau2 = rmse_bound * rmse_bound * frames.size   # squared L2 budget

        core, factors = hosvd(frames)
        ranks = self._truncation_ranks(core, tau2 * self.truncation_share)
        core_t = core[tuple(slice(0, r) for r in ranks)]
        factors_t = [u[:, :r] for u, r in zip(factors, ranks)]
        trunc_err2 = float((core ** 2).sum() - (core_t ** 2).sum())

        quant_budget2 = max(tau2 - trunc_err2, 1e-300)
        # Start from the worst-case-safe step and grow it while the
        # measured error still fits; then refine downward if the float32
        # factor rounding pushed it over.
        step = 2.0 * np.sqrt(quant_budget2 / core_t.size)
        step = self._search_step(frames, core_t, factors_t, step, tau2)
        q = np.rint(core_t / step).astype(np.int64)

        header = _MAGIC + struct.pack(
            _HDR, *frames.shape, *ranks, step)
        parts = [header]
        for u in factors_t:
            parts.append(u.astype("<f4").tobytes())
        parts.append(encode_ints(q.ravel()))
        return b"".join(parts)

    # ------------------------------------------------------------------
    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not a TTHRESH-like stream")
        vals = struct.unpack_from(_HDR, data, 4)
        shape, ranks, step = vals[:3], vals[3:6], vals[6]
        pos = 4 + struct.calcsize(_HDR)
        factors = []
        for n, r in zip(shape, ranks):
            u = np.frombuffer(data, dtype="<f4", count=n * r,
                              offset=pos).astype(np.float64).reshape(n, r)
            factors.append(u)
            pos += 4 * n * r
        q, pos = decode_ints(data, pos)
        core = (q.astype(np.float64) * step).reshape(ranks)
        return tucker_reconstruct(core, factors)

    # ------------------------------------------------------------------
    @staticmethod
    def _truncation_ranks(core: np.ndarray, budget2: float
                          ) -> Tuple[int, ...]:
        """Smallest per-mode ranks whose discarded energy <= budget2.

        Because the factors are orthogonal, the energy of a discarded
        mode-k slab is exactly its squared-sum contribution to the L2
        error; slabs are dropped greedily from the cheapest mode first.
        """
        ndim = core.ndim
        # slab energies per mode, from the last index inward
        energies = []
        for mode in range(ndim):
            sq = np.moveaxis(core, mode, 0) ** 2
            energies.append(sq.reshape(core.shape[mode], -1).sum(axis=1))
        ranks = list(core.shape)
        spent = 0.0
        # Greedy: repeatedly drop the smallest trailing slab across modes.
        while True:
            candidates = [(energies[m][ranks[m] - 1], m)
                          for m in range(ndim) if ranks[m] > 1]
            if not candidates:
                break
            e, m = min(candidates)
            if spent + e > budget2:
                break
            spent += e
            ranks[m] -= 1
            # energies of other modes change after truncation, but only
            # downward — the greedy drop stays safe (never exceeds the
            # budget) at the cost of slightly conservative ranks.
        return tuple(ranks)

    def _search_step(self, frames: np.ndarray, core_t: np.ndarray,
                     factors_t: List[np.ndarray], step: float,
                     tau2: float) -> float:
        """Largest quantization step whose measured error fits tau2."""
        f32 = [u.astype(np.float32).astype(np.float64) for u in factors_t]

        def err2(s: float) -> float:
            q = np.rint(core_t / s) * s
            rec = tucker_reconstruct(q, f32)
            return float(((frames - rec) ** 2).sum())

        # grow while safe
        grow = 0
        while err2(step * 2) <= tau2 and grow < 40:
            step *= 2
            grow += 1
        # shrink until safe (handles float32 factor rounding)
        shrink = 0
        while err2(step) > tau2 and shrink < 60:
            step *= 0.5
            shrink += 1
        if err2(step) > tau2:
            raise RuntimeError("could not satisfy RMSE bound")
        return step
