"""SZ3-analogue: interpolation-predictive, pointwise error-bounded.

SZ3's default pipeline predicts each value by multi-level spline
interpolation over already-reconstructed neighbours, quantizes the
prediction residual on a linear grid of width ``2*eb`` and entropy-codes
the quantization bins [27].  This module implements the same family for
``(T, H, W)`` stacks:

* level ``L``: the coarse lattice (every ``2^L``-th sample along each
  axis) is quantized directly;
* descending levels: midpoints along each axis are predicted by linear
  interpolation *of reconstructed values* and their residuals quantized
  — every operation is vectorized over the whole lattice (see the HPC
  guide: no per-element Python loops);
* the pointwise bound ``|x - x̂|_inf <= eb`` holds by construction
  because every residual is quantized against its own reconstruction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..postprocess.coding import decode_ints, encode_ints

__all__ = ["SZLikeCompressor"]

_MAGIC = b"SZL1"


@dataclass
class _Plan:
    """One interpolation pass: axis and lattice strides."""

    axis: int
    step: int  # predict points at odd multiples of step along axis


def _interp_plan(shape: Tuple[int, ...], max_level: int) -> List[_Plan]:
    """Coarse-to-fine passes over all axes."""
    plans = []
    for level in range(max_level, 0, -1):
        step = 2 ** (level - 1)
        for axis in range(len(shape)):
            if shape[axis] > step:
                plans.append(_Plan(axis=axis, step=step))
    return plans


class SZLikeCompressor:
    """Error-bounded predictive compressor (SZ3 family).

    Parameters
    ----------
    max_level:
        Number of dyadic interpolation levels (the coarse lattice has
        stride ``2**max_level``).
    """

    name = "SZ3-like"

    def __init__(self, max_level: int = 4):
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        self.max_level = max_level

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, error_bound: float) -> bytes:
        """Compress with pointwise absolute bound ``error_bound``."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        eb = float(error_bound)
        recon = np.zeros_like(frames)
        chunks: List[np.ndarray] = []

        cs = 2 ** self.max_level
        coarse = frames[::cs, ::cs, ::cs]
        q0 = np.rint(coarse / (2 * eb)).astype(np.int64)
        recon[::cs, ::cs, ::cs] = q0 * (2 * eb)
        chunks.append(q0.ravel())

        for plan in _interp_plan(frames.shape, self.max_level):
            pred, targets = self._predict(recon, frames.shape, plan)
            truth = frames[targets]
            q = np.rint((truth - pred) / (2 * eb)).astype(np.int64)
            recon[targets] = pred + q * (2 * eb)
            chunks.append(q.ravel())

        header = _MAGIC + struct.pack("<IIId", *frames.shape, eb)
        body = b"".join(encode_ints(c) for c in chunks)
        return header + body

    # ------------------------------------------------------------------
    def decompress(self, data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise ValueError("not an SZ-like stream")
        T, H, W, eb = struct.unpack_from("<IIId", data, 4)
        pos = 4 + struct.calcsize("<IIId")
        shape = (T, H, W)
        recon = np.zeros(shape)

        cs = 2 ** self.max_level
        q0, pos = decode_ints(data, pos)
        recon[::cs, ::cs, ::cs] = (
            q0.reshape(recon[::cs, ::cs, ::cs].shape) * (2 * eb))

        for plan in _interp_plan(shape, self.max_level):
            pred, targets = self._predict(recon, shape, plan)
            q, pos = decode_ints(data, pos)
            recon[targets] = pred + q.reshape(pred.shape) * (2 * eb)
        return recon

    # ------------------------------------------------------------------
    @staticmethod
    def _predict(recon: np.ndarray, shape: Tuple[int, ...],
                 plan: _Plan) -> Tuple[np.ndarray, Tuple]:
        """Linear interpolation of midpoints along ``plan.axis``.

        Known samples sit at even multiples of ``step`` on this axis
        (and at multiples of ``step`` on finer-processed axes);
        midpoints at odd multiples are predicted as the mean of their
        two neighbours (copy at the boundary).  Returns the prediction
        array and the index tuple selecting the target positions.
        """
        axis, step = plan.axis, plan.step
        n = shape[axis]
        # positions to fill: odd multiples of step
        odd = np.arange(step, n, 2 * step)
        if odd.size == 0:
            return (np.zeros((0,)),
                    tuple(slice(None) if a != axis else np.array([], int)
                          for a in range(len(shape))))

        def take(idx_along_axis):
            # axes before the current one were refined earlier in this
            # level's pass order (stride `step`); later axes are still
            # at stride ``2*step``.
            sl = [slice(None, None, step) if a < axis
                  else slice(None, None, 2 * step) if a > axis
                  else idx_along_axis
                  for a in range(len(shape))]
            return tuple(sl)

        left = recon[take(odd - step)]
        # neighbours beyond the end fall back to the left value
        valid = odd + step < n
        right_pos = np.where(valid, odd + step, odd - step)
        right = recon[take(right_pos)]
        pred = 0.5 * (left + right)
        targets = take(odd)
        return pred, targets
