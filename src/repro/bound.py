"""First-class error-bound value type.

Every compressor family in this repo guarantees its error in a
different metric — the rule-based coders bound the **pointwise** max
abs error, TTHRESH bounds the **RMSE**, the diffusion pipelines bound
the absolute **L2** norm (the paper's ``tau``) — and callers usually
think in a fourth, the relative **NRMSE** of Eq. 12.  Historically the
conversions lived in a table inside ``codecs/base.py`` and every layer
(engine, multivar, streaming, CLI) threaded the same
``error_bound``/``nrmse_bound`` kwarg pair through its signatures.

:class:`Bound` replaces that vocabulary with one value object::

    Bound.nrmse(1e-3)        # relative: NRMSE <= 1e-3
    Bound.pointwise(0.5)     # max |x - x_hat| <= 0.5
    Bound.rmse(0.1)          # RMSE <= 0.1
    Bound.l2(25.0)           # ||x - x_hat||_2 <= 25 (the paper's tau)

A bound converts between metrics given the data it applies to
(``R`` the data range, ``n`` the element count).  Conversions among
``rmse`` / ``l2`` / ``nrmse`` are exact linear bijections via the RMSE
as canonical intermediate (``L2 = rmse * sqrt(n)``, ``nrmse = rmse /
R``).  Conversions involving ``pointwise`` are **conservative** — the
converted target, when enforced, always implies the original one, in
both directions:

* *to* ``pointwise`` (from any metric): enforce ``max|err| <= rmse
  target`` — holds because ``rmse <= max|err|``; same formulas as the
  legacy table, so archives produced through :class:`Bound` are
  byte-identical to the kwargs era;
* *from* ``pointwise`` (to any metric): route through the L2 norm —
  ``max|err| <= ||err||_2``, so enforcing ``l2 <= v`` (equivalently
  ``rmse <= v / sqrt(n)``) guarantees ``max|err| <= v``.

Because conservative maps contract, a round-trip through
``pointwise`` returns a *tighter* bound, never a looser one; the
``rmse``/``l2``/``nrmse`` subgroup round-trips exactly.

This module is dependency-free (NumPy only) so every layer — codecs,
pipeline containers, the execution engine, the :mod:`repro.api`
facade — can share the one conversion table without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["Bound", "BOUND_KINDS"]

#: Metrics a bound can be expressed in.  The first three are the
#: native guarantee kinds a codec may declare
#: (:class:`repro.codecs.base.CodecCapabilities`); ``nrmse`` is the
#: relative caller-side vocabulary of Eq. 12.
BOUND_KINDS = ("pointwise", "rmse", "l2", "nrmse")


def _data_stats(frames, n: Optional[int],
                data_range: Optional[float]) -> Tuple[Optional[int],
                                                      Optional[float]]:
    """Resolve ``(n, range)`` from explicit values and/or ``frames``."""
    if frames is not None:
        frames = np.asarray(frames)
        if n is None:
            n = int(frames.size)
        if data_range is None:
            data_range = float(frames.max() - frames.min())
    return n, data_range


@dataclass(frozen=True)
class Bound:
    """One error-bound target: a metric ``kind`` and a ``value``.

    Frozen, hashable and picklable — a ``Bound`` travels unchanged
    through shard plans and process-pool work items, and each worker
    converts it against its *own* stack's statistics (exactly the
    per-window normalization the serial pipeline applies).
    """

    kind: str
    value: float

    def __post_init__(self):
        if self.kind not in BOUND_KINDS:
            raise ValueError(f"bound kind must be one of {BOUND_KINDS}, "
                             f"got {self.kind!r}")
        value = float(self.value)
        if not np.isfinite(value) or value <= 0:
            raise ValueError(f"bound value must be finite and positive, "
                             f"got {self.value!r}")
        object.__setattr__(self, "value", value)

    # -- constructors -----------------------------------------------------
    @classmethod
    def pointwise(cls, value: float) -> "Bound":
        """Max absolute per-element error bound."""
        return cls("pointwise", value)

    @classmethod
    def rmse(cls, value: float) -> "Bound":
        """Root-mean-square error bound."""
        return cls("rmse", value)

    @classmethod
    def l2(cls, value: float) -> "Bound":
        """Absolute L2-norm bound (the paper's ``tau``)."""
        return cls("l2", value)

    #: alias matching the paper's symbol for the L2 guarantee
    tau = l2

    @classmethod
    def nrmse(cls, value: float) -> "Bound":
        """Relative bound: NRMSE (RMSE over the data range, Eq. 12)."""
        return cls("nrmse", value)

    @classmethod
    def parse(cls, text: str) -> "Bound":
        """Parse ``"kind:value"`` (e.g. ``"nrmse:1e-3"``, ``"l2:25"``).

        A bare number parses as an NRMSE target, the most common
        caller-side vocabulary.
        """
        text = str(text).strip()
        if ":" in text:
            kind, _, value = text.partition(":")
            return cls(kind.strip().lower(), float(value))
        return cls("nrmse", float(text))

    # -- legacy interop ---------------------------------------------------
    @staticmethod
    def coalesce(bound: Optional[Union["Bound", float]] = None,
                 error_bound: Optional[float] = None,
                 nrmse_bound: Optional[float] = None
                 ) -> Optional["Bound"]:
        """Normalize the legacy kwarg vocabulary onto one ``Bound``.

        ``error_bound`` is the historical absolute L2 ``tau``;
        ``nrmse_bound`` the historical relative target.  ``bound`` must
        already be a :class:`Bound`.  Giving more than one is an
        error; giving none returns ``None`` (unbounded).
        """
        given = [b for b in (bound, error_bound, nrmse_bound)
                 if b is not None]
        if len(given) > 1:
            raise ValueError("give one of bound / error_bound / "
                             "nrmse_bound, not several")
        if bound is not None:
            if not isinstance(bound, Bound):
                raise TypeError(
                    f"bound must be a Bound (e.g. Bound.nrmse(1e-3)), "
                    f"got {type(bound).__name__}; codec-native floats "
                    f"go to Codec.compress directly")
            return bound
        if error_bound is not None:
            return Bound.l2(error_bound)
        if nrmse_bound is not None:
            return Bound.nrmse(nrmse_bound)
        return None

    def legacy_kwargs(self, frames=None) -> dict:
        """The ``error_bound``/``nrmse_bound`` pair this bound means.

        NRMSE and L2 map directly onto the legacy vocabulary;
        pointwise/RMSE bounds need ``frames`` (for ``sqrt(n)``) and
        convert to the absolute L2 form.
        """
        if self.kind == "nrmse":
            return {"error_bound": None, "nrmse_bound": self.value}
        if self.kind == "l2":
            return {"error_bound": self.value, "nrmse_bound": None}
        return {"error_bound": self.to("l2", frames=frames).value,
                "nrmse_bound": None}

    # -- conversions --------------------------------------------------
    def to(self, kind: str, *, frames=None, n: Optional[int] = None,
           data_range: Optional[float] = None) -> "Bound":
        """This bound re-expressed in another metric.

        Conversions needing the element count (``l2``) take ``n`` or
        ``frames``; conversions needing the data range (``nrmse``)
        take ``data_range`` or ``frames``.  Same-kind conversion
        returns ``self`` unchanged (no float drift).
        """
        if kind not in BOUND_KINDS:
            raise ValueError(f"bound kind must be one of {BOUND_KINDS}, "
                             f"got {kind!r}")
        if kind == self.kind:
            return self
        n, data_range = _data_stats(frames, n, data_range)

        if self.kind == "pointwise":
            # conservative: max|err| <= ||err||_2, so enforcing the
            # same value as an L2 target guarantees the pointwise one
            if kind == "l2":
                return Bound(kind, self.value)
            rmse = self.value / np.sqrt(self._need_n(n))
        elif self.kind == "l2":
            rmse = self.value / np.sqrt(self._need_n(n))
        elif self.kind == "nrmse":
            rmse = self.value * self._need_range(data_range)
        else:
            rmse = self.value
        # from the canonical intermediate (RMSE) to the target metric
        if kind in ("pointwise", "rmse"):
            value = rmse
        elif kind == "l2":
            value = rmse * np.sqrt(self._need_n(n))
        else:  # nrmse
            value = rmse / self._need_range(data_range)
        return Bound(kind, float(value))

    def native_for(self, codec, frames) -> float:
        """Value in ``codec``'s native guarantee metric for ``frames``."""
        return self.to(codec.capabilities.bound_kind, frames=frames).value

    def _need_n(self, n: Optional[int]) -> int:
        if n is None:
            raise ValueError(
                f"converting a {self.kind!r} bound to/from 'l2' needs "
                f"the element count; pass n=... or frames=...")
        return n

    def _need_range(self, data_range: Optional[float]) -> float:
        if data_range is None:
            raise ValueError(
                f"converting a {self.kind!r} bound to/from 'nrmse' "
                f"needs the data range; pass data_range=... or "
                f"frames=...")
        return data_range

    def __str__(self) -> str:
        return f"{self.kind}:{self.value:g}"
