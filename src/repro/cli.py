"""Command-line interface: ``python -m repro.cli <command>`` (or the
``repro`` console script).

Subcommands
-----------
``train``       train the two-stage pipeline on a ``.npy`` frame stack
                and save a model bundle (``.npz``);
``codecs``      list every registered codec and its contract;
``compress``    compress a ``.npy`` frame stack (``--codec`` selects
                any registered codec; the default is the trained
                latent-diffusion pipeline);
``decompress``  reconstruct frames from a compressed stream (codec
                auto-detected from the stream envelope);
``info``        inspect a compressed stream's accounting;
``qoi``         certify quantities of interest of a reconstruction
                against the original (Sec. 3.5 bound propagation);
``spectrum``    compare radial energy spectra of original vs
                reconstruction (turbulence fidelity diagnostic).

The model bundle holds the VAE, diffusion and PCA-corrector state plus
the configuration, so a single file moves a trained compressor between
machines.  Model-free codecs (the rule-based families) take ``-`` in
place of the bundle path.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from . import (CompressedBlob, TrainingConfig, TwoStageTrainer, small,
               tiny)
from .codecs import (LatentDiffusionCodec, codec_specs, get_codec,
                     is_envelope, list_codecs, pack_envelope,
                     unpack_envelope)
from .data.base import train_test_windows
from .pipeline.bundle import load_bundle, save_bundle

__all__ = ["main", "save_bundle", "load_bundle"]

_PRESETS = {"tiny": tiny, "small": small}

#: the default codec — the paper's pipeline, loaded from a bundle
_DEFAULT_CODEC = "ours"


class _CodecCliError(Exception):
    """CLI-level codec selection problem (printed, not raised raw)."""


def _codec_for(name: str, model: Optional[str]):
    """Build the selected codec, loading the model bundle if needed."""
    if name == _DEFAULT_CODEC:
        if not model or model == "-":
            raise _CodecCliError(
                "codec 'ours' needs a trained model bundle (.npz)")
        return LatentDiffusionCodec.from_bundle(model)
    try:
        codec = get_codec(name)
    except KeyError as exc:
        raise _CodecCliError(exc.args[0]) from None
    if codec.capabilities.needs_training:
        raise _CodecCliError(
            f"codec {name!r} is learning-based; only 'ours' supports "
            f"bundle loading from the CLI so far")
    return codec


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    frames = np.load(args.data)
    if frames.ndim != 3:
        print(f"error: expected a (T, H, W) array, got {frames.shape}",
              file=sys.stderr)
        return 2
    cfg = _PRESETS[args.preset]()
    train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                  train_fraction=args.train_fraction,
                                  stride=args.stride)
    tc = TrainingConfig(vae_iters=args.vae_iters,
                        diffusion_iters=args.diffusion_iters,
                        finetune_iters=args.finetune_iters,
                        lam=args.lam)
    trainer = TwoStageTrainer(cfg, tc, seed=args.seed)
    print(f"stage 1: VAE ({tc.vae_iters} iters) ...")
    trainer.train_vae(train)
    print(f"stage 2: diffusion ({tc.diffusion_iters} iters) ...")
    trainer.train_diffusion(train)
    if tc.finetune_iters:
        print(f"fine-tuning to {cfg.diffusion.finetune_steps} steps ...")
        trainer.finetune_diffusion(train)
    compressor = trainer.build_compressor(train)
    save_bundle(args.model, compressor)
    print(f"saved model bundle to {args.model}")
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'label':14s} {'bound':10s} "
          f"{'trained':8s} class")
    for name in list_codecs():
        spec = codec_specs()[name]
        codec = get_codec(name)
        caps = codec.capabilities
        print(f"{name:10s} {codec.label:14s} {caps.bound_kind:10s} "
              f"{'yes' if caps.needs_training else 'no':8s} "
              f"{spec.cls.__name__}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    frames = np.load(args.data)
    try:
        codec = _codec_for(args.codec, args.model)
    except _CodecCliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if (codec.capabilities.requires_bound and args.error_bound is None
            and args.nrmse_bound is None):
        print(f"error: codec {args.codec!r} requires --error-bound "
              f"or --nrmse-bound", file=sys.stderr)
        return 2
    result = codec.compress_bounded(frames, error_bound=args.error_bound,
                                    nrmse_bound=args.nrmse_bound,
                                    seed=args.seed)
    # the default pipeline writes its native blob format (readable by
    # older revisions); every other codec gets a tagged envelope
    payload = (result.payload if args.codec == _DEFAULT_CODEC
               else pack_envelope(codec.name, result.payload))
    with open(args.output, "wb") as fh:
        fh.write(payload)
    print(f"ratio={result.ratio:.2f}x nrmse={result.achieved_nrmse:.6f} "
          f"bytes={len(payload)}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.data, "rb") as fh:
        data = fh.read()
    if is_envelope(data):
        name, payload = unpack_envelope(data)
        if args.codec and args.codec != name:
            print(f"error: stream was written by codec {name!r}, "
                  f"not {args.codec!r}", file=sys.stderr)
            return 2
        try:
            codec = _codec_for(name, args.model)
        except _CodecCliError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        frames = codec.decompress(payload)
    else:
        # raw pipeline blob (legacy format, no envelope)
        if args.codec and args.codec != _DEFAULT_CODEC:
            print(f"error: stream is a raw pipeline blob, not a "
                  f"{args.codec!r} envelope", file=sys.stderr)
            return 2
        if not args.model or args.model == "-":
            print("error: raw pipeline streams need a trained model "
                  "bundle (.npz)", file=sys.stderr)
            return 2
        compressor = load_bundle(args.model)
        frames = compressor.decompress(CompressedBlob.from_bytes(data))
    np.save(args.output, frames)
    print(f"wrote {frames.shape} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.data, "rb") as fh:
        data = fh.read()
    if is_envelope(data):
        name, payload = unpack_envelope(data)
        print(f"codec            : {name}")
        print(f"total bytes      : {len(data)}")
        print(f"  payload        : {len(payload)}")
        return 0
    blob = CompressedBlob.from_bytes(data)
    total = blob.total_bytes()
    print(f"shape            : {blob.shape}")
    print(f"window           : {blob.window}")
    print(f"keyframes        : {blob.keyframe_strategy} "
          f"(interval {blob.keyframe_interval})")
    print(f"sampler          : {blob.sampler} ({blob.sample_steps} steps)")
    from .pipeline.compressor import window_starts
    print(f"windows          : "
          f"{len(window_starts(blob.shape[0], blob.window))}")
    print(f"keyframe latents : {blob.y_shape[0]}")
    print(f"total bytes      : {total}")
    print(f"  latent (L)     : {blob.latent_bytes()}")
    print(f"  guarantee (G)  : {blob.guarantee_bytes()}")
    return 0


def _cmd_qoi(args: argparse.Namespace) -> int:
    from .postprocess.qoi import (DerivativeQoI, QuadraticQoI,
                                  evaluate_qois, mean_qoi)
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    # the certificates are conditional on ||x - x_G||_2 <= tau; with the
    # original at hand the measured error is itself a valid tau
    tau = args.tau if args.tau else float(np.linalg.norm(x - x_g))
    qois = [mean_qoi(x.shape), QuadraticQoI()]
    qois += [DerivativeQoI(axis=a) for a in range(1, x.ndim)]
    print(f"PD bound tau = {tau:.6g}"
          + ("" if args.tau else " (measured L2 error)"))
    print(f"{'QoI':22s} {'abs error':>12s} {'certified':>12s} status")
    ok = True
    for r in evaluate_qois(x, x_g, qois, tau=tau):
        status = "OK" if r.within_bound else "VIOLATED"
        ok = ok and r.within_bound
        print(f"{r.name:22s} {r.achieved_error:12.4g} "
              f"{r.certified_bound:12.4g} {status}")
    return 0 if ok else 1


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from .analysis import radial_energy_spectrum, spectral_relative_error
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    k, e0 = radial_energy_spectrum(x)
    _, e1 = radial_energy_spectrum(x_g)
    err = spectral_relative_error(x, x_g, k_max=args.k_max)
    print(f"{'k':>4s} {'E_orig':>12s} {'E_recon':>12s} {'rel err':>10s}")
    for ki in range(min(len(err), (args.k_max or len(err) - 1) + 1)):
        print(f"{ki:4d} {e0[ki]:12.4e} {e1[ki]:12.4e} {err[ki]:10.3g}")
    finite = err[np.isfinite(err)]
    print(f"worst finite band error: "
          f"{finite.max() if finite.size else 0.0:.3g}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="train a compressor on a .npy stack")
    t.add_argument("data", help="(T, H, W) .npy file")
    t.add_argument("model", help="output model bundle (.npz)")
    t.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    t.add_argument("--vae-iters", type=int, default=300)
    t.add_argument("--diffusion-iters", type=int, default=800)
    t.add_argument("--finetune-iters", type=int, default=0)
    t.add_argument("--lam", type=float, default=1e-6)
    t.add_argument("--train-fraction", type=float, default=0.5)
    t.add_argument("--stride", type=int, default=1)
    t.add_argument("--seed", type=int, default=0)
    t.set_defaults(fn=_cmd_train)

    cl = sub.add_parser("codecs", help="list registered codecs")
    cl.set_defaults(fn=_cmd_codecs)

    c = sub.add_parser("compress", help="compress a .npy stack")
    c.add_argument("model", help="model bundle (.npz); '-' for "
                                 "model-free codecs")
    c.add_argument("data", help="(T, H, W) .npy file")
    c.add_argument("output", help="output compressed stream")
    c.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="registered codec name (see 'repro codecs')")
    c.add_argument("--nrmse-bound", type=float, default=None)
    c.add_argument("--error-bound", type=float, default=None,
                   help="absolute L2 bound tau (normalized onto the "
                        "codec's native bound metric)")
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(fn=_cmd_compress)

    d = sub.add_parser("decompress", help="reconstruct a stream")
    d.add_argument("model", help="model bundle (.npz); '-' for "
                                 "model-free codecs")
    d.add_argument("data", help="compressed stream file")
    d.add_argument("output", help="output .npy path")
    d.add_argument("--codec", default=None,
                   help="expected codec (auto-detected from the stream)")
    d.set_defaults(fn=_cmd_decompress)

    i = sub.add_parser("info", help="inspect a compressed stream")
    i.add_argument("data", help="compressed stream file")
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("qoi", help="certify quantities of interest")
    q.add_argument("original", help="(T, H, W) .npy original")
    q.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    q.add_argument("--tau", type=float, default=None,
                   help="guaranteed L2 bound (default: measured error)")
    q.set_defaults(fn=_cmd_qoi)

    s = sub.add_parser("spectrum", help="compare radial energy spectra")
    s.add_argument("original", help="(T, H, W) .npy original")
    s.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    s.add_argument("--k-max", type=int, default=8,
                   help="highest wavenumber band to print")
    s.set_defaults(fn=_cmd_spectrum)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
