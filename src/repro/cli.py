"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands
-----------
``train``       train the two-stage pipeline on a ``.npy`` frame stack
                and save a model bundle (``.npz``);
``compress``    compress a ``.npy`` frame stack with a trained bundle;
``decompress``  reconstruct frames from a compressed stream;
``info``        inspect a compressed stream's accounting;
``qoi``         certify quantities of interest of a reconstruction
                against the original (Sec. 3.5 bound propagation);
``spectrum``    compare radial energy spectra of original vs
                reconstruction (turbulence fidelity diagnostic).

The model bundle holds the VAE, diffusion and PCA-corrector state plus
the configuration, so a single file moves a trained compressor between
machines.
"""

from __future__ import annotations

import argparse
import dataclasses
import io
import json
import sys
from typing import Optional

import numpy as np

from . import (CompressedBlob, LatentDiffusionCompressor, TrainingConfig,
               TwoStageTrainer, nrmse, small, tiny)
from .config import DiffusionConfig, PipelineConfig, ReproConfig, VAEConfig
from .data.base import train_test_windows
from .diffusion import ConditionalDDPM
from .compression import VAEHyperprior
from .postprocess import ErrorBoundCorrector, ResidualPCA

__all__ = ["main", "save_bundle", "load_bundle"]

_PRESETS = {"tiny": tiny, "small": small}


# ----------------------------------------------------------------------
# Model bundle persistence
# ----------------------------------------------------------------------
def save_bundle(path: str, compressor: LatentDiffusionCompressor) -> None:
    """Serialize a trained compressor (weights + config + corrector)."""
    cfg = {
        "vae": dataclasses.asdict(compressor.vae.cfg),
        "diffusion": dataclasses.asdict(compressor.ddpm.cfg),
        "pipeline": dataclasses.asdict(compressor.config),
        "schedule_steps": compressor.ddpm.schedule.steps,
        "original_dtype_bytes": compressor.original_dtype_bytes,
    }
    arrays = {}
    for name, arr in compressor.vae.state_dict().items():
        arrays[f"vae/{name}"] = arr
    for name, arr in compressor.ddpm.state_dict().items():
        arrays[f"ddpm/{name}"] = arr
    if compressor.corrector is not None:
        pca = compressor.corrector.pca
        arrays["pca/basis"] = pca.basis
        cfg["pca"] = {"block": pca.block, "rank": pca.rank,
                      "coeff_quant_bits":
                          compressor.corrector.coeff_quant_bits}
    arrays["config_json"] = np.frombuffer(
        json.dumps(cfg).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_bundle(path: str) -> LatentDiffusionCompressor:
    """Inverse of :func:`save_bundle`."""
    with np.load(path) as archive:
        cfg = json.loads(bytes(archive["config_json"]).decode())
        vae_cfg = VAEConfig(**cfg["vae"])
        diff_cfg = DiffusionConfig(
            **{k: tuple(v) if k == "channel_mults" else v
               for k, v in cfg["diffusion"].items()})
        pipe_cfg = PipelineConfig(**cfg["pipeline"])
        vae = VAEHyperprior(vae_cfg)
        vae.load_state_dict({k[len("vae/"):]: archive[k]
                             for k in archive.files
                             if k.startswith("vae/")})
        ddpm = ConditionalDDPM(diff_cfg)
        ddpm.load_state_dict({k[len("ddpm/"):]: archive[k]
                              for k in archive.files
                              if k.startswith("ddpm/")})
        ddpm.set_schedule(int(cfg["schedule_steps"]))
        corrector = None
        if "pca/basis" in archive.files:
            pca = ResidualPCA.from_state({
                "block": cfg["pca"]["block"], "rank": cfg["pca"]["rank"],
                "basis": archive["pca/basis"]})
            corrector = ErrorBoundCorrector(
                pca, coeff_quant_bits=cfg["pca"]["coeff_quant_bits"])
        return LatentDiffusionCompressor(
            vae, ddpm, pipe_cfg, corrector=corrector,
            original_dtype_bytes=int(cfg["original_dtype_bytes"]))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    frames = np.load(args.data)
    if frames.ndim != 3:
        print(f"error: expected a (T, H, W) array, got {frames.shape}",
              file=sys.stderr)
        return 2
    cfg = _PRESETS[args.preset]()
    train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                  train_fraction=args.train_fraction,
                                  stride=args.stride)
    tc = TrainingConfig(vae_iters=args.vae_iters,
                        diffusion_iters=args.diffusion_iters,
                        finetune_iters=args.finetune_iters,
                        lam=args.lam)
    trainer = TwoStageTrainer(cfg, tc, seed=args.seed)
    print(f"stage 1: VAE ({tc.vae_iters} iters) ...")
    trainer.train_vae(train)
    print(f"stage 2: diffusion ({tc.diffusion_iters} iters) ...")
    trainer.train_diffusion(train)
    if tc.finetune_iters:
        print(f"fine-tuning to {cfg.diffusion.finetune_steps} steps ...")
        trainer.finetune_diffusion(train)
    compressor = trainer.build_compressor(train)
    save_bundle(args.model, compressor)
    print(f"saved model bundle to {args.model}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    compressor = load_bundle(args.model)
    frames = np.load(args.data)
    result = compressor.compress(frames, nrmse_bound=args.nrmse_bound,
                                 error_bound=args.error_bound,
                                 noise_seed=args.seed)
    with open(args.output, "wb") as fh:
        fh.write(result.blob.to_bytes())
    print(f"ratio={result.ratio:.2f}x nrmse={result.achieved_nrmse:.6f} "
          f"bytes={result.blob.total_bytes()}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    compressor = load_bundle(args.model)
    with open(args.data, "rb") as fh:
        blob = CompressedBlob.from_bytes(fh.read())
    frames = compressor.decompress(blob)
    np.save(args.output, frames)
    print(f"wrote {frames.shape} to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.data, "rb") as fh:
        blob = CompressedBlob.from_bytes(fh.read())
    total = blob.total_bytes()
    print(f"shape            : {blob.shape}")
    print(f"window           : {blob.window}")
    print(f"keyframes        : {blob.keyframe_strategy} "
          f"(interval {blob.keyframe_interval})")
    print(f"sampler          : {blob.sampler} ({blob.sample_steps} steps)")
    from .pipeline.compressor import window_starts
    print(f"windows          : "
          f"{len(window_starts(blob.shape[0], blob.window))}")
    print(f"keyframe latents : {blob.y_shape[0]}")
    print(f"total bytes      : {total}")
    print(f"  latent (L)     : {blob.latent_bytes()}")
    print(f"  guarantee (G)  : {blob.guarantee_bytes()}")
    return 0


def _cmd_qoi(args: argparse.Namespace) -> int:
    from .postprocess.qoi import (DerivativeQoI, QuadraticQoI,
                                  evaluate_qois, mean_qoi)
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    # the certificates are conditional on ||x - x_G||_2 <= tau; with the
    # original at hand the measured error is itself a valid tau
    tau = args.tau if args.tau else float(np.linalg.norm(x - x_g))
    qois = [mean_qoi(x.shape), QuadraticQoI()]
    qois += [DerivativeQoI(axis=a) for a in range(1, x.ndim)]
    print(f"PD bound tau = {tau:.6g}"
          + ("" if args.tau else " (measured L2 error)"))
    print(f"{'QoI':22s} {'abs error':>12s} {'certified':>12s} status")
    ok = True
    for r in evaluate_qois(x, x_g, qois, tau=tau):
        status = "OK" if r.within_bound else "VIOLATED"
        ok = ok and r.within_bound
        print(f"{r.name:22s} {r.achieved_error:12.4g} "
              f"{r.certified_bound:12.4g} {status}")
    return 0 if ok else 1


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from .analysis import radial_energy_spectrum, spectral_relative_error
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    k, e0 = radial_energy_spectrum(x)
    _, e1 = radial_energy_spectrum(x_g)
    err = spectral_relative_error(x, x_g, k_max=args.k_max)
    print(f"{'k':>4s} {'E_orig':>12s} {'E_recon':>12s} {'rel err':>10s}")
    for ki in range(min(len(err), (args.k_max or len(err) - 1) + 1)):
        print(f"{ki:4d} {e0[ki]:12.4e} {e1[ki]:12.4e} {err[ki]:10.3g}")
    finite = err[np.isfinite(err)]
    print(f"worst finite band error: "
          f"{finite.max() if finite.size else 0.0:.3g}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="train a compressor on a .npy stack")
    t.add_argument("data", help="(T, H, W) .npy file")
    t.add_argument("model", help="output model bundle (.npz)")
    t.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    t.add_argument("--vae-iters", type=int, default=300)
    t.add_argument("--diffusion-iters", type=int, default=800)
    t.add_argument("--finetune-iters", type=int, default=0)
    t.add_argument("--lam", type=float, default=1e-6)
    t.add_argument("--train-fraction", type=float, default=0.5)
    t.add_argument("--stride", type=int, default=1)
    t.add_argument("--seed", type=int, default=0)
    t.set_defaults(fn=_cmd_train)

    c = sub.add_parser("compress", help="compress a .npy stack")
    c.add_argument("model", help="model bundle (.npz)")
    c.add_argument("data", help="(T, H, W) .npy file")
    c.add_argument("output", help="output compressed stream")
    c.add_argument("--nrmse-bound", type=float, default=None)
    c.add_argument("--error-bound", type=float, default=None)
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(fn=_cmd_compress)

    d = sub.add_parser("decompress", help="reconstruct a stream")
    d.add_argument("model", help="model bundle (.npz)")
    d.add_argument("data", help="compressed stream file")
    d.add_argument("output", help="output .npy path")
    d.set_defaults(fn=_cmd_decompress)

    i = sub.add_parser("info", help="inspect a compressed stream")
    i.add_argument("data", help="compressed stream file")
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("qoi", help="certify quantities of interest")
    q.add_argument("original", help="(T, H, W) .npy original")
    q.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    q.add_argument("--tau", type=float, default=None,
                   help="guaranteed L2 bound (default: measured error)")
    q.set_defaults(fn=_cmd_qoi)

    s = sub.add_parser("spectrum", help="compare radial energy spectra")
    s.add_argument("original", help="(T, H, W) .npy original")
    s.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    s.add_argument("--k-max", type=int, default=8,
                   help="highest wavenumber band to print")
    s.set_defaults(fn=_cmd_spectrum)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
