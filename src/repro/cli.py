"""Command-line interface: ``python -m repro <command>`` (or the
``repro`` console script).

The CLI is a thin, declarative layer over :class:`repro.api.Session` —
it parses flags, builds a session, and formats results.  All dispatch
(which pipeline runs, which container format is read or written, how
bounds are normalized) lives in :mod:`repro.api`.

Subcommands
-----------
``train``       train any trainable codec (``--codec ours|vae-sr|
                cdc-eps|cdc-x|gcd``) on a ``.npy`` stack or a
                registered dataset (``--dataset``) and save a portable
                model artifact (``--save model.npz``);
``codecs``      list every registered codec and its contract;
``datasets``    list every registered synthetic dataset;
``compress``    compress a ``.npy`` frame stack — or a registered
                dataset via ``--dataset NAME`` — with any registered
                codec (``--codec``), optionally loading trained state
                from an artifact (``--codec-artifact model.npz``),
                sharded over the time axis (``--shards N``) and
                executed on a pluggable backend
                (``--executor serial|thread|process``);
``decompress``  reconstruct frames from any compressed container
                (codec and container format auto-detected);
``info``        inspect a compressed stream's accounting, or a model
                artifact's provenance (codec, state hash, training
                config, dataset);
``qoi``         certify quantities of interest of a reconstruction
                against the original (Sec. 3.5 bound propagation);
``spectrum``    compare radial energy spectra of original vs
                reconstruction (turbulence fidelity diagnostic).

A model artifact holds a trained codec's state plus a provenance
manifest (codec spec, training config, dataset spec, state hash), so a
single file moves any trained codec between machines — and because
artifact-loaded codecs are spec-portable, straight into process-pool
sweeps.  Model-free codecs (the rule-based families) take ``-`` in
place of the bundle path.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from . import __version__
from .api import Archive, Session, SessionError
from .codecs import codec_specs, get_codec, list_codecs
from .data.registry import (dataset_entries, get_dataset_spec,
                            list_datasets)
from .entropy.backend import list_backends as list_entropy_backends
from .pipeline.bundle import load_bundle, save_bundle
from .pipeline.executors import list_executors

__all__ = ["main", "save_bundle", "load_bundle"]

#: the default codec — the paper's pipeline, loaded from a bundle
_DEFAULT_CODEC = "ours"

#: exceptions the facade raises for user-input problems; printed as
#: ``error: ...`` with exit code 2 instead of a traceback
_USER_ERRORS = (SessionError, KeyError, ValueError, TypeError)


def _fail(exc) -> int:
    print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
    return 2


def _parse_shape(text: str):
    """``TxHxW`` (or ``T,H,W``) -> dict of dataset overrides."""
    parts = text.replace(",", "x").split("x")
    if len(parts) != 3:
        raise ValueError(f"expected TxHxW, got {text!r}")
    t, h, w = (int(p) for p in parts)
    return {"t": t, "h": h, "w": w}


def _parse_select(text: str):
    """One ``--select`` value -> the Session selector it means.

    ``T0:T1`` (either end optional) is a time range, a bare integer is
    a variable number, anything else is a shard id / variable name.
    """
    if ":" in text:
        a, b = text.split(":", 1)
        try:
            return slice(int(a) if a else None, int(b) if b else None)
        except ValueError:
            raise ValueError(f"bad time range {text!r}; expected "
                             f"T0:T1") from None
    if text.lstrip("-").isdigit():
        return int(text)
    return text


def _session(args: argparse.Namespace, **extra) -> Session:
    """Build the session an invocation configures."""
    return Session(codec=getattr(args, "codec", None),
                   model=getattr(args, "model", None),
                   artifact=getattr(args, "codec_artifact", None),
                   seed=getattr(args, "seed", 0),
                   entropy_backend=getattr(args, "entropy_backend", None),
                   **extra)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    save = args.save or args.model
    if not save:
        print("error: give an output model path (--save PATH or the "
              "positional model argument)", file=sys.stderr)
        return 2
    if not save.endswith(".npz"):
        save += ".npz"  # mirror np.savez so the printed path is real

    if args.dataset is not None:
        source = args.dataset
    elif args.data:
        source = np.load(args.data)
    else:
        print("error: give a (T, H, W) .npy file or --dataset NAME "
              f"(registered: {', '.join(list_datasets())})",
              file=sys.stderr)
        return 2

    session = Session(seed=args.seed)
    try:
        overrides = _parse_shape(args.shape) if args.shape else None
        _, manifest = session.train(
            args.codec, source, save=save, variable=args.variable,
            dataset_overrides=overrides, preset=args.preset,
            vae_iters=args.vae_iters,
            diffusion_iters=args.diffusion_iters,
            sr_iters=args.sr_iters, finetune_iters=args.finetune_iters,
            lam=args.lam, train_fraction=args.train_fraction,
            stride=args.stride, window=args.window,
            corrector=args.corrector, seed=args.seed, log=print)
    except _USER_ERRORS as exc:
        return _fail(exc)
    print(f"saved model artifact to {save} "
          f"(state {manifest.state_hash[:16]})")
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'label':14s} {'bound':10s} "
          f"{'trained':8s} class")
    for name in list_codecs():
        spec = codec_specs()[name]
        codec = get_codec(name)
        caps = codec.capabilities
        print(f"{name:10s} {codec.label:14s} {caps.bound_kind:10s} "
              f"{'yes' if caps.needs_training else 'no':8s} "
              f"{spec.cls.__name__}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':8s} {'domain':12s} {'default (VxTxHxW)':18s} "
          f"{'paper shape':20s} {'paper GB':>9s} class")
    for name in list_datasets():
        entry = dataset_entries()[name]
        spec = get_dataset_spec(name)
        info = entry.cls.info
        default_shape = "x".join(str(d) for d in spec.shape)
        paper_shape = "x".join(str(d) for d in info.paper_shape)
        print(f"{name:8s} {info.domain:12s} {default_shape:18s} "
              f"{paper_shape:20s} {info.paper_size_gb:9.1f} "
              f"{entry.cls.__name__}")
    return 0


def _rebind_dataset_positionals(args: argparse.Namespace
                                ) -> Optional[str]:
    """Dataset mode takes no input file; re-bind the positionals as
    ``(model?, output?)`` so ``compress --dataset d out.cdx`` and
    ``compress --dataset d model.npz out.ldc`` both do what they say.
    Returns an error message on misuse."""
    pos = [p for p in (args.model, args.data, args.output)
           if p is not None]
    args.model, args.data, args.output = "-", None, None
    if len(pos) == 1:
        if pos[0].endswith(".npz"):
            args.model = pos[0]
        elif pos[0] != "-":
            args.output = pos[0]
    elif len(pos) >= 2:
        args.model = pos[0]
        if pos[-1] != "-":
            args.output = pos[-1]
        if len(pos) == 3 and pos[1] != "-":
            return ("--dataset generates its own frames; drop the "
                    "input file argument")
    return None


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        problem = _rebind_dataset_positionals(args)
        if problem:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    elif not args.data or args.data == "-":
        print("error: give a .npy input file or --dataset NAME "
              f"(registered: {', '.join(list_datasets())})",
              file=sys.stderr)
        return 2
    elif not args.output:
        print("error: output path required", file=sys.stderr)
        return 2

    try:
        session = _session(args, executor=args.executor,
                           workers=args.workers)
        codec = session.resolve_codec()
    except _USER_ERRORS as exc:
        return _fail(exc)
    # an artifact names its own codec; downstream reporting and the
    # default output name follow the loaded codec
    args.codec = codec.name
    if (codec.capabilities.requires_bound and args.error_bound is None
            and args.nrmse_bound is None):
        if args.dataset is None:
            print(f"error: codec {args.codec!r} requires --error-bound "
                  f"or --nrmse-bound", file=sys.stderr)
            return 2
        # dataset sweeps default to the benchmarks' relative bound
        args.nrmse_bound = 1e-2
        print(f"note: codec {args.codec!r} requires a bound; "
              f"defaulting to --nrmse-bound 0.01")

    try:
        if args.dataset is not None:
            overrides = _parse_shape(args.shape) if args.shape else None
            archive = session.compress(
                args.dataset, error_bound=args.error_bound,
                nrmse_bound=args.nrmse_bound,
                variables=[args.variable], shards=args.shards,
                dataset_overrides=overrides)
            output = args.output or f"{args.dataset}-{args.codec}.cdx"
        else:
            stem = args.data.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            if args.chunk_shards is not None:
                # out-of-core: hand the path to the session so frames
                # stream through in bounded shard groups
                archive = session.compress(
                    args.data, error_bound=args.error_bound,
                    nrmse_bound=args.nrmse_bound,
                    shards=args.shards if args.shards > 1 else None,
                    chunk_shards=args.chunk_shards, label=stem)
            else:
                frames = np.load(args.data)
                archive = session.compress(
                    frames, error_bound=args.error_bound,
                    nrmse_bound=args.nrmse_bound,
                    shards=args.shards if args.shards > 1 else None,
                    label=stem)
            output = args.output
    except _USER_ERRORS as exc:
        return _fail(exc)
    finally:
        session.close()

    archive.save(output)
    s = archive.stats
    if archive.kind == "shard":
        print(f"ratio={s['ratio']:.2f}x nrmse={s['nrmse']:.6f} "
              f"bytes={s['bytes']} shards={s['shards']} "
              f"executor={s['executor']} "
              f"wall={s['wall_seconds']:.3f}s -> {output}")
    else:
        print(f"ratio={s['ratio']:.2f}x nrmse={s['nrmse']:.6f} "
              f"bytes={s['bytes']}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        session = _session(args, executor=args.executor,
                           workers=args.workers)
        codec = session.resolve_codec()
    except _USER_ERRORS as exc:
        return _fail(exc)
    args.codec = codec.name
    if (codec.capabilities.requires_bound and args.error_bound is None
            and args.nrmse_bound is None):
        # dataset sweeps default to the benchmarks' relative bound
        args.nrmse_bound = 1e-2
        print(f"note: codec {args.codec!r} requires a bound; "
              f"defaulting to --nrmse-bound 0.01")
    try:
        overrides = _parse_shape(args.shape) if args.shape else None
        archive = session.sweep(
            args.dataset, error_bound=args.error_bound,
            nrmse_bound=args.nrmse_bound,
            variables=args.variable or None,
            shards=args.shards, window=args.window,
            journal=args.journal, resume=args.resume,
            dataset_overrides=overrides)
    except _USER_ERRORS as exc:
        return _fail(exc)
    finally:
        session.close()

    archive.save(args.output)
    s = archive.stats
    print(f"ratio={s['ratio']:.2f}x nrmse={s['nrmse']:.6f} "
          f"bytes={s['bytes']} shards={s['shards']} "
          f"computed={s['computed_shards']} "
          f"resumed={s['resumed_shards']} "
          f"executor={s['executor']} "
          f"wall={s['wall_seconds']:.3f}s -> {args.output}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    try:
        selects = [_parse_select(s) for s in (args.select or [])]
        select = (None if not selects
                  else selects[0] if len(selects) == 1 else selects)
        archive = Archive.open(args.data)
        session = _session(args)
        restored = session.decompress(archive,
                                      expect_codec=args.codec,
                                      select=select)
    except _USER_ERRORS as exc:
        return _fail(exc)
    partial = " (partial)" if select is not None else ""
    if isinstance(restored, dict):
        # multi-variable archives reconstruct to one (V, T, H, W)
        # stack, variables in sorted-name order
        names = sorted(restored)
        frames = np.stack([restored[n] for n in names])
        np.save(args.output, frames)
        print(f"wrote {frames.shape} ({', '.join(names)}){partial} to "
              f"{args.output}")
        return 0
    np.save(args.output, restored)
    if archive.kind == "shard" and select is None:
        print(f"wrote {restored.shape} "
              f"({len(archive.index())} shards) to "
              f"{args.output}")
    else:
        print(f"wrote {restored.shape}{partial} to {args.output}")
    return 0


def _fmt_provenance(value) -> str:
    if not value:
        return "<unrecorded>"
    return ", ".join(f"{k}={v}" for k, v in sorted(value.items()))


def _render_info(info: dict) -> int:
    kind = info["kind"]
    if kind == "artifact":
        m = info["manifest"]
        print(f"model artifact   : {m.codec} "
              f"(format v{m.format_version})")
        print(f"state hash       : {m.state_hash}")
        print(f"artifact key     : {m.key}")
        spec_params = m.spec.get("params", {})
        print(f"codec spec       : "
              f"{_fmt_provenance(spec_params) if spec_params else '<defaults>'}")
        print(f"training         : {_fmt_provenance(m.training)}")
        print(f"dataset          : {_fmt_provenance(m.dataset)}")
        return 0
    if kind == "bundle":
        print("model bundle     : ours (legacy, no manifest)")
        print(f"state arrays     : {info['state_arrays']}")
        print("hint             : re-save with save_bundle to "
              "gain an artifact manifest")
        return 0
    if kind == "shard":
        entries = info["entries"]
        seekable = ("seekable footer index"
                    if info.get("indexed") else "no footer (v1 scan)")
        print(f"shard archive    : {len(entries)} shards, "
              f"{len(info['variables'])} variable(s), {seekable}")
        print(f"total bytes      : {info['total_bytes']}")
        for e in entries:
            print(f"  {e['shard_id']:28s} codec={e['codec']:10s} "
                  f"frames=[{e['t0']},{e['t1']}) "
                  f"bytes={e['payload_bytes']} "
                  f"@{e['offset']}+{e['length']} "
                  f"crc={e['crc32']:08x}")
        return 0
    if kind == "envelope":
        print(f"codec            : {info['codec']}")
        print(f"total bytes      : {info['total_bytes']}")
        print(f"  payload        : {info['payload_bytes']}")
        return 0
    if kind == "multivar":
        seekable = ("seekable footer index"
                    if info.get("indexed") else "no footer (legacy)")
        print(f"multivar archive : {len(info['variables'])} "
              f"variable(s), codecs {', '.join(info['codecs'])}, "
              f"{seekable}")
        print(f"variables        : {', '.join(info['variables'])}")
        print(f"total bytes      : {info['total_bytes']}")
        for e in info.get("entries", []):
            print(f"  {e['variable']:16s} codec={e['codec']:10s} "
                  f"@{e['offset']}+{e['length']} "
                  f"crc={e['crc32']:08x}")
        return 0
    if kind == "stream":
        print(f"stream archive   : {info['chunks']} chunks, "
              f"{info['frames']} frames, "
              f"codecs {', '.join(info['codecs'])}")
        print(f"total bytes      : {info['total_bytes']}")
        return 0
    # raw pipeline blob
    blob = info["blob"]
    total = blob.total_bytes()
    print(f"shape            : {blob.shape}")
    print(f"window           : {blob.window}")
    print(f"keyframes        : {blob.keyframe_strategy} "
          f"(interval {blob.keyframe_interval})")
    print(f"sampler          : {blob.sampler} ({blob.sample_steps} steps)")
    print(f"entropy backend  : {blob.entropy_backend}")
    from .pipeline.compressor import window_starts
    print(f"windows          : "
          f"{len(window_starts(blob.shape[0], blob.window))}")
    print(f"keyframe latents : {blob.y_shape[0]}")
    print(f"total bytes      : {total}")
    print(f"  latent (L)     : {blob.latent_bytes()}")
    print(f"  guarantee (G)  : {blob.guarantee_bytes()}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    try:
        info = Session().info(args.data)
    except _USER_ERRORS as exc:
        return _fail(exc)
    return _render_info(info)


def _cmd_qoi(args: argparse.Namespace) -> int:
    from .postprocess.qoi import (DerivativeQoI, QuadraticQoI,
                                  evaluate_qois, mean_qoi)
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    # the certificates are conditional on ||x - x_G||_2 <= tau; with the
    # original at hand the measured error is itself a valid tau
    tau = args.tau if args.tau else float(np.linalg.norm(x - x_g))
    qois = [mean_qoi(x.shape), QuadraticQoI()]
    qois += [DerivativeQoI(axis=a) for a in range(1, x.ndim)]
    print(f"PD bound tau = {tau:.6g}"
          + ("" if args.tau else " (measured L2 error)"))
    print(f"{'QoI':22s} {'abs error':>12s} {'certified':>12s} status")
    ok = True
    for r in evaluate_qois(x, x_g, qois, tau=tau):
        status = "OK" if r.within_bound else "VIOLATED"
        ok = ok and r.within_bound
        print(f"{r.name:22s} {r.achieved_error:12.4g} "
              f"{r.certified_bound:12.4g} {status}")
    return 0 if ok else 1


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from .analysis import radial_energy_spectrum, spectral_relative_error
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    k, e0 = radial_energy_spectrum(x)
    _, e1 = radial_energy_spectrum(x_g)
    err = spectral_relative_error(x, x_g, k_max=args.k_max)
    print(f"{'k':>4s} {'E_orig':>12s} {'E_recon':>12s} {'rel err':>10s}")
    for ki in range(min(len(err), (args.k_max or len(err) - 1) + 1)):
        print(f"{ki:4d} {e0[ki]:12.4e} {e1[ki]:12.4e} {err[ki]:10.3g}")
    finite = err[np.isfinite(err)]
    print(f"worst finite band error: "
          f"{finite.max() if finite.size else 0.0:.3g}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # lazy import: the service stack (HTTP server, telemetry) should
    # cost nothing on the compress/decompress paths
    import logging

    from .service import CompressionService, serve

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        service = CompressionService(
            args.cache_dir,
            workers=args.workers,
            max_queue=args.max_queue,
            rate_limit=args.rate_limit,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            codec=args.codec,
            executor=args.executor,
            seed=args.seed,
            entropy_backend=args.entropy_backend)
    except _USER_ERRORS as exc:
        return _fail(exc)
    try:
        return serve(service, host=args.host, port=args.port)
    finally:
        service.close()


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--version", action="version",
                   version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="train any trainable codec and "
                                     "save a model artifact")
    t.add_argument("data", nargs="?", default=None,
                   help="(T, H, W) .npy file (omit with --dataset)")
    t.add_argument("model", nargs="?", default=None,
                   help="output model artifact (.npz); or use --save")
    t.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="trainable codec name: ours (default), "
                        "vae-sr, cdc-eps, cdc-x, gcd")
    t.add_argument("--dataset", default=None,
                   help="train on a registered synthetic dataset "
                        "instead of a file (see 'repro datasets')")
    t.add_argument("--variable", type=int, default=0,
                   help="dataset variable index (with --dataset)")
    t.add_argument("--shape", default=None,
                   help="dataset shape override TxHxW (with --dataset)")
    t.add_argument("--save", default=None,
                   help="output model artifact path (.npz)")
    t.add_argument("--preset", choices=("tiny", "small"), default="tiny",
                   help="architecture preset (codec 'ours')")
    t.add_argument("--vae-iters", type=int, default=300)
    t.add_argument("--diffusion-iters", type=int, default=800)
    t.add_argument("--sr-iters", type=int, default=100,
                   help="SR refinement iterations (codec 'vae-sr')")
    t.add_argument("--finetune-iters", type=int, default=0)
    t.add_argument("--lam", type=float, default=1e-6)
    t.add_argument("--train-fraction", type=float, default=0.5)
    t.add_argument("--stride", type=int, default=1)
    t.add_argument("--window", type=int, default=6,
                   help="training window length for learned codecs "
                        "without a native window")
    t.add_argument("--no-corrector", dest="corrector",
                   action="store_false",
                   help="skip fitting the error-bound corrector "
                        "(learned baseline codecs)")
    t.add_argument("--seed", type=int, default=0)
    t.set_defaults(fn=_cmd_train)

    cl = sub.add_parser("codecs", help="list registered codecs")
    cl.set_defaults(fn=_cmd_codecs)

    dl = sub.add_parser("datasets", help="list registered datasets")
    dl.set_defaults(fn=_cmd_datasets)

    c = sub.add_parser("compress", help="compress a .npy stack or a "
                                        "registered dataset")
    c.add_argument("model", nargs="?", default="-",
                   help="model bundle (.npz); '-' for model-free codecs")
    c.add_argument("data", nargs="?", default=None,
                   help="(T, H, W) .npy file (omit with --dataset)")
    c.add_argument("output", nargs="?", default=None,
                   help="output compressed stream (defaults to "
                        "<dataset>-<codec>.cdx in dataset mode)")
    c.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="registered codec name (see 'repro codecs')")
    c.add_argument("--codec-artifact", default=None,
                   help="load trained codec state from a model "
                        "artifact (.npz written by 'repro train')")
    c.add_argument("--dataset", default=None,
                   help="compress a registered synthetic dataset "
                        "instead of a file (see 'repro datasets')")
    c.add_argument("--variable", type=int, default=0,
                   help="dataset variable index (with --dataset)")
    c.add_argument("--shape", default=None,
                   help="dataset shape override TxHxW (with --dataset)")
    c.add_argument("--shards", type=int, default=1,
                   help="split the time axis into N shards and write "
                        "a shard archive")
    c.add_argument("--chunk-shards", type=int, default=None,
                   help="out-of-core mode: stream the .npy input "
                        "through the engine N shards at a time, so "
                        "peak memory is O(chunk) not O(dataset); the "
                        "archive is byte-identical to in-memory "
                        "compression (--shards defaults to one shard "
                        "per 16 frames in this mode)")
    c.add_argument("--executor", default="thread",
                   choices=list_executors(),
                   help="execution backend for sharded compression")
    c.add_argument("--workers", type=int, default=None,
                   help="pool width (default: one per CPU, clamped to "
                        "the shard count)")
    c.add_argument("--nrmse-bound", type=float, default=None)
    c.add_argument("--error-bound", type=float, default=None,
                   help="absolute L2 bound tau (normalized onto the "
                        "codec's native bound metric)")
    c.add_argument("--entropy-backend", default=None,
                   choices=list_entropy_backends(),
                   help="entropy coder for every written stream "
                        "(default: arithmetic, the legacy format; "
                        "vrans is the vectorized fast path, trans the "
                        "table-cached LUT coder with the fastest "
                        "decode; decoding always auto-detects from "
                        "the stream)")
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(fn=_cmd_compress)

    w = sub.add_parser(
        "sweep",
        help="journaled, resumable shard sweep over a registered "
             "dataset",
        description="Compress a registered dataset as a shard sweep "
                    "with an optional crash-safe journal: every "
                    "completed shard is durably recorded, and "
                    "re-running with --journal PATH --resume replays "
                    "completed shards and recomputes only the missing "
                    "ones, producing an archive byte-identical to an "
                    "uninterrupted run.")
    w.add_argument("dataset",
                   help="registered dataset name (see 'repro datasets')")
    w.add_argument("output", help="output shard archive path")
    w.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="registered codec name (see 'repro codecs')")
    w.add_argument("--codec-artifact", default=None,
                   help="load trained codec state from a model "
                        "artifact (.npz written by 'repro train')")
    w.add_argument("--variable", type=int, action="append",
                   default=None, metavar="V",
                   help="dataset variable index; repeat for several "
                        "(default: every variable)")
    w.add_argument("--shape", default=None,
                   help="dataset shape override TxHxW")
    w.add_argument("--shards", type=int, default=None,
                   help="split each variable's time axis into N "
                        "near-equal shards")
    w.add_argument("--window", type=int, default=None,
                   help="fixed shard width in frames (last shard "
                        "short) instead of --shards")
    w.add_argument("--journal", default=None, metavar="PATH",
                   help="crash-safe sweep journal (JSONL + "
                        "content-addressed payloads in PATH.objects/)")
    w.add_argument("--resume", action="store_true",
                   help="allow resuming a journal that already has "
                        "completed shards (without this flag a "
                        "non-empty journal is refused)")
    w.add_argument("--executor", default="thread",
                   choices=list_executors(),
                   help="execution backend for the sweep")
    w.add_argument("--workers", type=int, default=None,
                   help="pool width (default: one per CPU, clamped to "
                        "the shard count)")
    w.add_argument("--nrmse-bound", type=float, default=None)
    w.add_argument("--error-bound", type=float, default=None,
                   help="absolute L2 bound tau (normalized onto the "
                        "codec's native bound metric)")
    w.add_argument("--entropy-backend", default=None,
                   choices=list_entropy_backends(),
                   help="entropy coder for every written stream "
                        "(decoding auto-detects from the stream)")
    w.add_argument("--seed", type=int, default=0)
    w.set_defaults(fn=_cmd_sweep)

    d = sub.add_parser("decompress", help="reconstruct a stream")
    d.add_argument("model", help="model bundle (.npz); '-' for "
                                 "model-free codecs")
    d.add_argument("data", help="compressed stream file")
    d.add_argument("output", help="output .npy path")
    d.add_argument("--codec", default=None,
                   help="expected codec (auto-detected from the stream)")
    d.add_argument("--codec-artifact", default=None,
                   help="load trained codec state from a model "
                        "artifact (.npz written by 'repro train')")
    d.add_argument("--select", action="append", default=None,
                   metavar="SEL",
                   help="partial decode: a shard id, a variable "
                        "number/name, or a T0:T1 time range; repeat "
                        "to select several members (indexed archives "
                        "read only the touched bytes)")
    d.set_defaults(fn=_cmd_decompress)

    i = sub.add_parser("info", help="inspect a compressed stream or a "
                                    "model artifact")
    i.add_argument("data", help="compressed stream or model artifact")
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("qoi", help="certify quantities of interest")
    q.add_argument("original", help="(T, H, W) .npy original")
    q.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    q.add_argument("--tau", type=float, default=None,
                   help="guaranteed L2 bound (default: measured error)")
    q.set_defaults(fn=_cmd_qoi)

    s = sub.add_parser("spectrum", help="compare radial energy spectra")
    s.add_argument("original", help="(T, H, W) .npy original")
    s.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    s.add_argument("--k-max", type=int, default=8,
                   help="highest wavenumber band to print")
    s.set_defaults(fn=_cmd_spectrum)

    sv = sub.add_parser(
        "serve", help="run the long-running compression service "
                      "(HTTP JSON API with job queue, result cache "
                      "and /health + /metrics endpoints)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: loopback only)")
    sv.add_argument("--port", type=int, default=8090,
                    help="bind port (0 picks a free one)")
    sv.add_argument("--workers", type=int, default=2,
                    help="job worker threads (each drives the "
                         "session executor)")
    sv.add_argument("--cache-dir", default=".repro-serve-cache",
                    help="content-addressed result cache directory")
    sv.add_argument("--max-queue", type=int, default=64,
                    help="bounded queue capacity; overflow is "
                         "rejected with HTTP 429")
    sv.add_argument("--rate-limit", type=float, default=0.0,
                    help="per-client requests/second (0 disables)")
    sv.add_argument("--cache-entries", type=int, default=256,
                    help="result cache LRU entry bound")
    sv.add_argument("--cache-bytes", type=int, default=1 << 30,
                    help="result cache LRU byte bound")
    sv.add_argument("--codec", default=None,
                    help="default codec for jobs that name none")
    sv.add_argument("--executor", default="thread",
                    help="session executor backend "
                         "(serial/thread/process)")
    sv.add_argument("--entropy-backend", default=None,
                    help="session entropy-coder selection")
    sv.add_argument("--seed", type=int, default=0)
    sv.set_defaults(fn=_cmd_serve)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
