"""Command-line interface: ``python -m repro.cli <command>`` (or the
``repro`` console script).

Subcommands
-----------
``train``       train any trainable codec (``--codec ours|vae-sr|
                cdc-eps|cdc-x|gcd``) on a ``.npy`` stack or a
                registered dataset (``--dataset``) and save a portable
                model artifact (``--save model.npz``);
``codecs``      list every registered codec and its contract;
``datasets``    list every registered synthetic dataset;
``compress``    compress a ``.npy`` frame stack — or a registered
                dataset via ``--dataset NAME`` — with any registered
                codec (``--codec``), optionally loading trained state
                from an artifact (``--codec-artifact model.npz``),
                sharded over the time axis (``--shards N``) and
                executed on a pluggable backend
                (``--executor serial|thread|process``);
``decompress``  reconstruct frames from a compressed stream (codec and
                shard archives auto-detected from the stream);
``info``        inspect a compressed stream's accounting, or a model
                artifact's provenance (codec, state hash, training
                config, dataset);
``qoi``         certify quantities of interest of a reconstruction
                against the original (Sec. 3.5 bound propagation);
``spectrum``    compare radial energy spectra of original vs
                reconstruction (turbulence fidelity diagnostic).

A model artifact holds a trained codec's state plus a provenance
manifest (codec spec, training config, dataset spec, state hash), so a
single file moves any trained codec between machines — and because
artifact-loaded codecs are spec-portable, straight into process-pool
sweeps.  Model-free codecs (the rule-based families) take ``-`` in
place of the bundle path.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from . import (CompressedBlob, TrainingConfig, TwoStageTrainer, small,
               tiny)
from .codecs import (Codec, LatentDiffusionCodec, codec_specs, get_codec,
                     is_envelope, list_codecs, pack_envelope,
                     unpack_envelope)
from .data.base import train_test_windows
from .data.registry import (dataset_entries, get_dataset_spec,
                            list_datasets)
from .pipeline.artifacts import (is_artifact, load_artifact,
                                 read_manifest, save_artifact)
from .pipeline.bundle import load_bundle, save_bundle
from .pipeline.engine import CodecEngine
from .pipeline.executors import list_executors
from .pipeline.plan import (ShardEntry, assemble_shards,
                            is_shard_archive, pack_shard_archive,
                            plan_shards, time_slices,
                            unpack_shard_archive)

__all__ = ["main", "save_bundle", "load_bundle"]

_PRESETS = {"tiny": tiny, "small": small}

#: the default codec — the paper's pipeline, loaded from a bundle
_DEFAULT_CODEC = "ours"


class _CodecCliError(Exception):
    """CLI-level codec selection problem (printed, not raised raw)."""


def _codec_for(name: str, model: Optional[str],
               artifact: Optional[str] = None):
    """Build the selected codec, loading trained state if needed."""
    if artifact:
        try:
            codec = Codec.load_artifact(artifact)
        except (OSError, ValueError, KeyError) as exc:
            raise _CodecCliError(
                f"cannot load artifact {artifact!r}: {exc}") from None
        if name and name != _DEFAULT_CODEC and codec.name != name:
            raise _CodecCliError(
                f"artifact {artifact!r} holds codec {codec.name!r}, "
                f"not {name!r}")
        return codec
    if name == _DEFAULT_CODEC:
        if not model or model == "-":
            raise _CodecCliError(
                "codec 'ours' needs a trained model bundle (.npz)")
        return LatentDiffusionCodec.from_bundle(model)
    try:
        codec = get_codec(name)
    except KeyError as exc:
        raise _CodecCliError(exc.args[0]) from None
    if codec.capabilities.needs_training:
        raise _CodecCliError(
            f"codec {name!r} is learning-based; train it first "
            f"(repro train --codec {name}) and pass the saved model "
            f"with --codec-artifact")
    return codec


def _parse_shape(text: str):
    """``TxHxW`` (or ``T,H,W``) -> dict of dataset overrides."""
    parts = text.replace(",", "x").split("x")
    if len(parts) != 3:
        raise ValueError(f"expected TxHxW, got {text!r}")
    t, h, w = (int(p) for p in parts)
    return {"t": t, "h": h, "w": w}


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _train_frames(args: argparse.Namespace):
    """Resolve training frames (+ dataset provenance) for ``train``."""
    import dataclasses
    if args.dataset is not None:
        overrides = _parse_shape(args.shape) if args.shape else {}
        spec = get_dataset_spec(args.dataset, **overrides)
        frames = spec.build().frames(args.variable)
        return frames, dataclasses.asdict(spec)
    if not args.data:
        raise _CodecCliError("give a (T, H, W) .npy file or "
                             f"--dataset NAME (registered: "
                             f"{', '.join(list_datasets())})")
    return np.load(args.data), None


def _cmd_train(args: argparse.Namespace) -> int:
    save = args.save or args.model
    if not save:
        print("error: give an output model path (--save PATH or the "
              "positional model argument)", file=sys.stderr)
        return 2
    if not save.endswith(".npz"):
        save += ".npz"  # mirror np.savez so the printed path is real
    try:
        frames, dataset_meta = _train_frames(args)
    except (_CodecCliError, KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}",
              file=sys.stderr)
        return 2
    if frames.ndim != 3:
        print(f"error: expected a (T, H, W) array, got {frames.shape}",
              file=sys.stderr)
        return 2

    if args.codec == _DEFAULT_CODEC:
        return _train_ours(args, frames, dataset_meta, save)
    return _train_learned(args, frames, dataset_meta, save)


def _train_ours(args, frames, dataset_meta, save: str) -> int:
    """The paper's two-stage latent-diffusion training protocol."""
    cfg = _PRESETS[args.preset]()
    try:
        train, _ = train_test_windows(frames, window=cfg.pipeline.window,
                                      train_fraction=args.train_fraction,
                                      stride=args.stride)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tc = TrainingConfig(vae_iters=args.vae_iters,
                        diffusion_iters=args.diffusion_iters,
                        finetune_iters=args.finetune_iters,
                        lam=args.lam)
    trainer = TwoStageTrainer(cfg, tc, seed=args.seed)
    print(f"stage 1: VAE ({tc.vae_iters} iters) ...")
    trainer.train_vae(train)
    print(f"stage 2: diffusion ({tc.diffusion_iters} iters) ...")
    trainer.train_diffusion(train)
    if tc.finetune_iters:
        print(f"fine-tuning to {cfg.diffusion.finetune_steps} steps ...")
        trainer.finetune_diffusion(train)
    manifest = trainer.export_artifact(save, train, dataset=dataset_meta)
    print(f"saved model artifact to {save} "
          f"(state {manifest.state_hash[:16]})")
    return 0


def _train_learned(args, frames, dataset_meta, save: str) -> int:
    """Generalized training path for the learned baseline codecs."""
    import dataclasses
    import inspect
    try:
        codec = get_codec(args.codec, seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except TypeError:
        print(f"error: codec {args.codec!r} is model-free; there is "
              f"nothing to train", file=sys.stderr)
        return 2
    if not codec.capabilities.needs_training:
        print(f"error: codec {args.codec!r} is model-free; there is "
              f"nothing to train", file=sys.stderr)
        return 2
    window = codec.window if codec.window > 1 else args.window
    try:
        train, _ = train_test_windows(frames, window=window,
                                      train_fraction=args.train_fraction,
                                      stride=args.stride)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # map the shared CLI vocabulary onto each family's train() kwargs
    candidates = {"vae_iters": args.vae_iters,
                  "diffusion_iters": args.diffusion_iters,
                  "sr_iters": args.sr_iters, "lam": args.lam}
    accepted = inspect.signature(codec.impl.train).parameters
    kwargs = {k: v for k, v in candidates.items() if k in accepted}
    pretty = ", ".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    print(f"training {args.codec} on {len(train)} windows "
          f"({window} frames each): {pretty} ...")
    codec.train(train, **kwargs)
    if args.corrector:
        print("fitting error-bound corrector ...")
        codec.fit_corrector(train)
    training_meta = {**kwargs, "seed": args.seed, "window": window,
                     "corrector": bool(args.corrector)}
    manifest = save_artifact(save, codec, training=training_meta,
                             dataset=dataset_meta)
    print(f"saved model artifact to {save} "
          f"(state {manifest.state_hash[:16]})")
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'label':14s} {'bound':10s} "
          f"{'trained':8s} class")
    for name in list_codecs():
        spec = codec_specs()[name]
        codec = get_codec(name)
        caps = codec.capabilities
        print(f"{name:10s} {codec.label:14s} {caps.bound_kind:10s} "
              f"{'yes' if caps.needs_training else 'no':8s} "
              f"{spec.cls.__name__}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':8s} {'domain':12s} {'default (VxTxHxW)':18s} "
          f"{'paper shape':20s} {'paper GB':>9s} class")
    for name in list_datasets():
        entry = dataset_entries()[name]
        spec = get_dataset_spec(name)
        info = entry.cls.info
        default_shape = "x".join(str(d) for d in spec.shape)
        paper_shape = "x".join(str(d) for d in info.paper_shape)
        print(f"{name:8s} {info.domain:12s} {default_shape:18s} "
              f"{paper_shape:20s} {info.paper_size_gb:9.1f} "
              f"{entry.cls.__name__}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        # dataset mode takes no input file, so re-bind the positionals
        # as (model?, output?): `compress --dataset d out.cdx` and
        # `compress --dataset d model.npz out.ldc` both do what they say
        pos = [p for p in (args.model, args.data, args.output)
               if p is not None]
        args.model, args.data, args.output = "-", None, None
        if len(pos) == 1:
            if pos[0].endswith(".npz"):
                args.model = pos[0]
            elif pos[0] != "-":
                args.output = pos[0]
        elif len(pos) >= 2:
            args.model = pos[0]
            if pos[-1] != "-":
                args.output = pos[-1]
            if len(pos) == 3 and pos[1] != "-":
                print("error: --dataset generates its own frames; drop "
                      "the input file argument", file=sys.stderr)
                return 2
    elif not args.data or args.data == "-":
        print("error: give a .npy input file or --dataset NAME "
              f"(registered: {', '.join(list_datasets())})",
              file=sys.stderr)
        return 2
    elif not args.output:
        print("error: output path required", file=sys.stderr)
        return 2

    try:
        codec = _codec_for(args.codec, args.model,
                           artifact=args.codec_artifact)
    except _CodecCliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # an artifact names its own codec; downstream branching (envelope
    # vs raw blob, error messages) follows the loaded codec
    args.codec = codec.name
    if (codec.capabilities.requires_bound and args.error_bound is None
            and args.nrmse_bound is None):
        if args.dataset is None:
            print(f"error: codec {args.codec!r} requires --error-bound "
                  f"or --nrmse-bound", file=sys.stderr)
            return 2
        # dataset sweeps default to the benchmarks' relative bound
        args.nrmse_bound = 1e-2
        print(f"note: codec {args.codec!r} requires a bound; "
              f"defaulting to --nrmse-bound 0.01")

    # single-window file compression: the legacy path, byte-identical
    # to previous releases (raw blob for the pipeline, envelope else)
    if args.dataset is None and args.shards <= 1:
        frames = np.load(args.data)
        result = codec.compress_bounded(frames,
                                        error_bound=args.error_bound,
                                        nrmse_bound=args.nrmse_bound,
                                        seed=args.seed)
        payload = (result.payload if args.codec == _DEFAULT_CODEC
                   else pack_envelope(codec.name, result.payload))
        with open(args.output, "wb") as fh:
            fh.write(payload)
        print(f"ratio={result.ratio:.2f}x "
              f"nrmse={result.achieved_nrmse:.6f} bytes={len(payload)}")
        return 0

    # sharded path: plan -> engine (pluggable backend) -> shard archive
    try:
        engine = CodecEngine(codec, max_workers=args.workers,
                             base_seed=args.seed, executor=args.executor)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.dataset is not None:
        try:
            overrides = _parse_shape(args.shape) if args.shape else {}
            spec = get_dataset_spec(args.dataset, **overrides)
            plan = plan_shards(spec, variables=[args.variable],
                               shards=args.shards, base_seed=args.seed)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        try:
            batch = engine.compress_plan(plan,
                                         error_bound=args.error_bound,
                                         nrmse_bound=args.nrmse_bound)
        except TypeError as exc:  # codec not spec-portable
            print(f"error: {exc}", file=sys.stderr)
            return 2
        meta = [(t.shard_id, t.variable, t.t0, t.t1) for t in plan]
        output = args.output or f"{args.dataset}-{args.codec}.cdx"
    else:
        frames = np.load(args.data)
        slices = time_slices(frames.shape[0], shards=args.shards)
        stem = args.data.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        meta = [(f"{stem}/v0/t{a:04d}-{b:04d}", 0, a, b)
                for a, b in slices]
        try:
            batch = engine.compress([frames[a:b] for a, b in slices],
                                    error_bound=args.error_bound,
                                    nrmse_bound=args.nrmse_bound)
        except TypeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        output = args.output

    entries = [ShardEntry(shard_id=sid, variable=var, t0=t0, t1=t1,
                          payload=pack_envelope(codec.name, r.payload))
               for (sid, var, t0, t1), r in zip(meta, batch.results)]
    archive = pack_shard_archive(entries)
    with open(output, "wb") as fh:
        fh.write(archive)
    acc = batch.accounting()
    print(f"ratio={acc.ratio:.2f}x nrmse={batch.worst_nrmse():.6f} "
          f"bytes={len(archive)} shards={len(entries)} "
          f"executor={engine.executor.name} "
          f"wall={batch.wall_seconds:.3f}s -> {output}")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.data, "rb") as fh:
        data = fh.read()
    codecs = {}
    if args.codec_artifact:
        try:
            loaded = _codec_for(None, None, artifact=args.codec_artifact)
        except _CodecCliError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        codecs[loaded.name] = loaded
    if is_shard_archive(data):
        entries = unpack_shard_archive(data)
        arrays = []
        for e in entries:
            name, payload = unpack_envelope(e.payload)
            if args.codec and args.codec != name:
                print(f"error: shard {e.shard_id!r} was written by "
                      f"codec {name!r}, not {args.codec!r}",
                      file=sys.stderr)
                return 2
            if name not in codecs:
                try:
                    codecs[name] = _codec_for(name, args.model)
                except _CodecCliError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
            arrays.append(codecs[name].decompress(payload))
        frames = assemble_shards(entries, arrays)
        np.save(args.output, frames)
        print(f"wrote {frames.shape} ({len(entries)} shards) to "
              f"{args.output}")
        return 0
    if is_envelope(data):
        name, payload = unpack_envelope(data)
        if args.codec and args.codec != name:
            print(f"error: stream was written by codec {name!r}, "
                  f"not {args.codec!r}", file=sys.stderr)
            return 2
        try:
            codec = codecs.get(name) or _codec_for(name, args.model)
        except _CodecCliError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        frames = codec.decompress(payload)
    else:
        # raw pipeline blob (legacy format, no envelope)
        if args.codec and args.codec != _DEFAULT_CODEC:
            print(f"error: stream is a raw pipeline blob, not a "
                  f"{args.codec!r} envelope", file=sys.stderr)
            return 2
        if _DEFAULT_CODEC in codecs:
            compressor = codecs[_DEFAULT_CODEC].compressor
        elif not args.model or args.model == "-":
            print("error: raw pipeline streams need a trained model "
                  "bundle (.npz)", file=sys.stderr)
            return 2
        else:
            compressor = load_bundle(args.model)
        frames = compressor.decompress(CompressedBlob.from_bytes(data))
    np.save(args.output, frames)
    print(f"wrote {frames.shape} to {args.output}")
    return 0


def _fmt_provenance(value) -> str:
    if not value:
        return "<unrecorded>"
    return ", ".join(f"{k}={v}" for k, v in sorted(value.items()))


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.data, "rb") as fh:
        data = fh.read()
    if data[:4] == b"PK\x03\x04":  # .npz: a model artifact or bundle
        if is_artifact(args.data):
            m = read_manifest(args.data)
            print(f"model artifact   : {m.codec} "
                  f"(format v{m.format_version})")
            print(f"state hash       : {m.state_hash}")
            print(f"artifact key     : {m.key}")
            spec_params = m.spec.get("params", {})
            print(f"codec spec       : "
                  f"{_fmt_provenance(spec_params) if spec_params else '<defaults>'}")
            print(f"training         : {_fmt_provenance(m.training)}")
            print(f"dataset          : {_fmt_provenance(m.dataset)}")
            return 0
        with np.load(args.data) as archive:
            if "config_json" in archive.files:
                print("model bundle     : ours (legacy, no manifest)")
                print(f"state arrays     : "
                      f"{len([k for k in archive.files if k != 'config_json'])}")
                print("hint             : re-save with save_bundle to "
                      "gain an artifact manifest")
                return 0
        print("error: .npz file is neither a model artifact nor a "
              "legacy bundle", file=sys.stderr)
        return 2
    if is_shard_archive(data):
        entries = unpack_shard_archive(data)
        variables = sorted({e.variable for e in entries})
        print(f"shard archive    : {len(entries)} shards, "
              f"{len(variables)} variable(s)")
        print(f"total bytes      : {len(data)}")
        for e in entries:
            name, payload = unpack_envelope(e.payload)
            print(f"  {e.shard_id:28s} codec={name:10s} "
                  f"frames=[{e.t0},{e.t1}) bytes={len(payload)}")
        return 0
    if is_envelope(data):
        name, payload = unpack_envelope(data)
        print(f"codec            : {name}")
        print(f"total bytes      : {len(data)}")
        print(f"  payload        : {len(payload)}")
        return 0
    blob = CompressedBlob.from_bytes(data)
    total = blob.total_bytes()
    print(f"shape            : {blob.shape}")
    print(f"window           : {blob.window}")
    print(f"keyframes        : {blob.keyframe_strategy} "
          f"(interval {blob.keyframe_interval})")
    print(f"sampler          : {blob.sampler} ({blob.sample_steps} steps)")
    from .pipeline.compressor import window_starts
    print(f"windows          : "
          f"{len(window_starts(blob.shape[0], blob.window))}")
    print(f"keyframe latents : {blob.y_shape[0]}")
    print(f"total bytes      : {total}")
    print(f"  latent (L)     : {blob.latent_bytes()}")
    print(f"  guarantee (G)  : {blob.guarantee_bytes()}")
    return 0


def _cmd_qoi(args: argparse.Namespace) -> int:
    from .postprocess.qoi import (DerivativeQoI, QuadraticQoI,
                                  evaluate_qois, mean_qoi)
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    # the certificates are conditional on ||x - x_G||_2 <= tau; with the
    # original at hand the measured error is itself a valid tau
    tau = args.tau if args.tau else float(np.linalg.norm(x - x_g))
    qois = [mean_qoi(x.shape), QuadraticQoI()]
    qois += [DerivativeQoI(axis=a) for a in range(1, x.ndim)]
    print(f"PD bound tau = {tau:.6g}"
          + ("" if args.tau else " (measured L2 error)"))
    print(f"{'QoI':22s} {'abs error':>12s} {'certified':>12s} status")
    ok = True
    for r in evaluate_qois(x, x_g, qois, tau=tau):
        status = "OK" if r.within_bound else "VIOLATED"
        ok = ok and r.within_bound
        print(f"{r.name:22s} {r.achieved_error:12.4g} "
              f"{r.certified_bound:12.4g} {status}")
    return 0 if ok else 1


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from .analysis import radial_energy_spectrum, spectral_relative_error
    x = np.load(args.original)
    x_g = np.load(args.reconstruction)
    if x.shape != x_g.shape:
        print(f"error: shape mismatch {x.shape} vs {x_g.shape}",
              file=sys.stderr)
        return 2
    k, e0 = radial_energy_spectrum(x)
    _, e1 = radial_energy_spectrum(x_g)
    err = spectral_relative_error(x, x_g, k_max=args.k_max)
    print(f"{'k':>4s} {'E_orig':>12s} {'E_recon':>12s} {'rel err':>10s}")
    for ki in range(min(len(err), (args.k_max or len(err) - 1) + 1)):
        print(f"{ki:4d} {e0[ki]:12.4e} {e1[ki]:12.4e} {err[ki]:10.3g}")
    finite = err[np.isfinite(err)]
    print(f"worst finite band error: "
          f"{finite.max() if finite.size else 0.0:.3g}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="train any trainable codec and "
                                     "save a model artifact")
    t.add_argument("data", nargs="?", default=None,
                   help="(T, H, W) .npy file (omit with --dataset)")
    t.add_argument("model", nargs="?", default=None,
                   help="output model artifact (.npz); or use --save")
    t.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="trainable codec name: ours (default), "
                        "vae-sr, cdc-eps, cdc-x, gcd")
    t.add_argument("--dataset", default=None,
                   help="train on a registered synthetic dataset "
                        "instead of a file (see 'repro datasets')")
    t.add_argument("--variable", type=int, default=0,
                   help="dataset variable index (with --dataset)")
    t.add_argument("--shape", default=None,
                   help="dataset shape override TxHxW (with --dataset)")
    t.add_argument("--save", default=None,
                   help="output model artifact path (.npz)")
    t.add_argument("--preset", choices=sorted(_PRESETS), default="tiny",
                   help="architecture preset (codec 'ours')")
    t.add_argument("--vae-iters", type=int, default=300)
    t.add_argument("--diffusion-iters", type=int, default=800)
    t.add_argument("--sr-iters", type=int, default=100,
                   help="SR refinement iterations (codec 'vae-sr')")
    t.add_argument("--finetune-iters", type=int, default=0)
    t.add_argument("--lam", type=float, default=1e-6)
    t.add_argument("--train-fraction", type=float, default=0.5)
    t.add_argument("--stride", type=int, default=1)
    t.add_argument("--window", type=int, default=6,
                   help="training window length for learned codecs "
                        "without a native window")
    t.add_argument("--no-corrector", dest="corrector",
                   action="store_false",
                   help="skip fitting the error-bound corrector "
                        "(learned baseline codecs)")
    t.add_argument("--seed", type=int, default=0)
    t.set_defaults(fn=_cmd_train)

    cl = sub.add_parser("codecs", help="list registered codecs")
    cl.set_defaults(fn=_cmd_codecs)

    dl = sub.add_parser("datasets", help="list registered datasets")
    dl.set_defaults(fn=_cmd_datasets)

    c = sub.add_parser("compress", help="compress a .npy stack or a "
                                        "registered dataset")
    c.add_argument("model", nargs="?", default="-",
                   help="model bundle (.npz); '-' for model-free codecs")
    c.add_argument("data", nargs="?", default=None,
                   help="(T, H, W) .npy file (omit with --dataset)")
    c.add_argument("output", nargs="?", default=None,
                   help="output compressed stream (defaults to "
                        "<dataset>-<codec>.cdx in dataset mode)")
    c.add_argument("--codec", default=_DEFAULT_CODEC,
                   help="registered codec name (see 'repro codecs')")
    c.add_argument("--codec-artifact", default=None,
                   help="load trained codec state from a model "
                        "artifact (.npz written by 'repro train')")
    c.add_argument("--dataset", default=None,
                   help="compress a registered synthetic dataset "
                        "instead of a file (see 'repro datasets')")
    c.add_argument("--variable", type=int, default=0,
                   help="dataset variable index (with --dataset)")
    c.add_argument("--shape", default=None,
                   help="dataset shape override TxHxW (with --dataset)")
    c.add_argument("--shards", type=int, default=1,
                   help="split the time axis into N shards and write "
                        "a shard archive")
    c.add_argument("--executor", default="thread",
                   choices=list_executors(),
                   help="execution backend for sharded compression")
    c.add_argument("--workers", type=int, default=None,
                   help="pool width (default: one per CPU, clamped to "
                        "the shard count)")
    c.add_argument("--nrmse-bound", type=float, default=None)
    c.add_argument("--error-bound", type=float, default=None,
                   help="absolute L2 bound tau (normalized onto the "
                        "codec's native bound metric)")
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(fn=_cmd_compress)

    d = sub.add_parser("decompress", help="reconstruct a stream")
    d.add_argument("model", help="model bundle (.npz); '-' for "
                                 "model-free codecs")
    d.add_argument("data", help="compressed stream file")
    d.add_argument("output", help="output .npy path")
    d.add_argument("--codec", default=None,
                   help="expected codec (auto-detected from the stream)")
    d.add_argument("--codec-artifact", default=None,
                   help="load trained codec state from a model "
                        "artifact (.npz written by 'repro train')")
    d.set_defaults(fn=_cmd_decompress)

    i = sub.add_parser("info", help="inspect a compressed stream or a "
                                    "model artifact")
    i.add_argument("data", help="compressed stream or model artifact")
    i.set_defaults(fn=_cmd_info)

    q = sub.add_parser("qoi", help="certify quantities of interest")
    q.add_argument("original", help="(T, H, W) .npy original")
    q.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    q.add_argument("--tau", type=float, default=None,
                   help="guaranteed L2 bound (default: measured error)")
    q.set_defaults(fn=_cmd_qoi)

    s = sub.add_parser("spectrum", help="compare radial energy spectra")
    s.add_argument("original", help="(T, H, W) .npy original")
    s.add_argument("reconstruction", help="(T, H, W) .npy reconstruction")
    s.add_argument("--k-max", type=int, default=8,
                   help="highest wavenumber band to print")
    s.set_defaults(fn=_cmd_spectrum)
    return p


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
