"""Module entry point: ``python -m repro`` == the ``repro`` script.

Keeps the CLI invokable from a plain checkout (``PYTHONPATH=src
python -m repro ...``) without the console-script install.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
