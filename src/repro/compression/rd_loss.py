"""Rate–distortion objective (Eq. 8) and the paper's lambda schedule.

``L = MSE(x, x̂) + λ (E[-log2 p(y|μ,σ)] + E[-log2 p(z)])``

The paper initializes λ at 1e-5 and doubles it at iteration 250K of a
500K-iteration run; :class:`LambdaSchedule` reproduces that protocol
scaled to any total step count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn import Tensor
from ..nn import functional as F
from .vae import VAEOutput

__all__ = ["RDLoss", "RDLossOutput", "LambdaSchedule"]


@dataclass
class RDLossOutput:
    loss: Tensor
    distortion: float
    bits_per_element: float
    lam: float


class RDLoss:
    """Callable computing Eq. 8 from a :class:`VAEOutput`."""

    def __init__(self, lam: float = 1e-5, normalize_rate: bool = False):
        """``normalize_rate`` divides bits by the pixel count, which
        makes λ transferable across crop sizes (off by default to match
        the paper's formulation exactly)."""
        self.lam = lam
        self.normalize_rate = normalize_rate

    def __call__(self, x: Tensor, out: VAEOutput) -> RDLossOutput:
        distortion = F.mse_loss(out.x_hat, x)
        rate = out.bits_y + out.bits_z
        n = x.size
        if self.normalize_rate:
            rate = rate * (1.0 / n)
        loss = distortion + rate * self.lam
        return RDLossOutput(
            loss=loss,
            distortion=distortion.item(),
            bits_per_element=(out.bits_y.item() + out.bits_z.item()) / n,
            lam=self.lam,
        )


class LambdaSchedule:
    """λ starts at ``lam0`` and doubles at the halfway iteration.

    Mirrors Sec. 4.3: "the weight parameter λ is initialized to 1e-5
    and is doubled at the 250K iteration" of 500K total.
    """

    def __init__(self, lam0: float = 1e-5, total_steps: int = 500_000):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.lam0 = lam0
        self.total_steps = total_steps

    def at(self, step: int) -> float:
        return self.lam0 * (2.0 if step >= self.total_steps // 2 else 1.0)
