"""Frame VAE with scale hyperprior (Sec. 3.1).

``Encoder`` maps a frame to a ``latent_channels``-deep feature map
downsampled by ``2**num_down``; ``Decoder`` inverts it.  The combined
:class:`VAEHyperprior` module runs the full transform-coding forward
pass of Eq. 8: analysis transform, (relaxed) quantization, hyperprior
rate estimation and synthesis transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import VAEConfig
from ..entropy import FactorizedDensity, GaussianConditional
from ..nn import (GDN, Conv2d, ConvTranspose2d, Module, Sequential, SiLU,
                  Tensor, fastpath, no_grad)
from ..nn import functional as F
from .hyperprior import HyperDecoder, HyperEncoder
from .quantization import quantize_noise, quantize_round

__all__ = ["Encoder", "Decoder", "VAEHyperprior", "VAEOutput"]


def _activation(cfg: VAEConfig, channels: int, inverse: bool) -> Module:
    """Per-stage nonlinearity: SiLU (default) or (I)GDN (Ballé)."""
    if cfg.activation == "gdn":
        return GDN(channels, inverse=inverse)
    return SiLU()


class Encoder(Module):
    """Analysis transform ``E_x``: frames -> latents."""

    def __init__(self, cfg: VAEConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        k, p = cfg.kernel_size, cfg.kernel_size // 2
        chans = [cfg.in_channels] + [
            cfg.base_filters * 2 ** i for i in range(cfg.num_down)]
        layers = []
        for cin, cout in zip(chans[:-1], chans[1:]):
            layers += [Conv2d(cin, cout, k, stride=2, padding=p, rng=rng),
                       _activation(cfg, cout, inverse=False)]
        layers.append(Conv2d(chans[-1], cfg.latent_channels, 3, stride=1,
                             padding=1, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def _fast(self, x: np.ndarray) -> np.ndarray:
        return self.net._fast(x)


class Decoder(Module):
    """Synthesis transform ``D_x``: latents -> frames."""

    def __init__(self, cfg: VAEConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        k, p = cfg.kernel_size, cfg.kernel_size // 2
        chans = [cfg.base_filters * 2 ** i for i in range(cfg.num_down)]
        chans = chans[::-1]
        layers = [Conv2d(cfg.latent_channels, chans[0], 3, stride=1,
                         padding=1, rng=rng),
                  _activation(cfg, chans[0], inverse=True)]
        for cin, cout in zip(chans, chans[1:] + [chans[-1]]):
            layers += [ConvTranspose2d(cin, cout, k, stride=2, padding=p,
                                       output_padding=1, rng=rng),
                       _activation(cfg, cout, inverse=True)]
        layers.append(Conv2d(chans[-1], cfg.in_channels, 3, stride=1,
                             padding=1, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, y: Tensor) -> Tensor:
        return self.net(y)

    def _fast(self, y: np.ndarray) -> np.ndarray:
        return self.net._fast(y)


@dataclass
class VAEOutput:
    """Forward-pass bundle used by the RD loss and by the trainer."""

    x_hat: Tensor          # reconstruction
    y: Tensor              # continuous latent
    y_tilde: Tensor        # quantized/noisy latent fed to the decoder
    z_tilde: Tensor        # quantized/noisy hyper-latent
    mu: Tensor             # Gaussian means from the hyper-decoder
    sigma: Tensor          # Gaussian scales from the hyper-decoder
    bits_y: Tensor         # estimated bits for y (scalar tensor)
    bits_z: Tensor         # estimated bits for z (scalar tensor)

    @property
    def total_bits(self) -> Tensor:
        return self.bits_y + self.bits_z


class VAEHyperprior(Module):
    """Complete stage-1 model: ``E_x``, ``D_x``, ``E_h``, ``D_h``, priors."""

    def __init__(self, cfg: VAEConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.cfg = cfg
        self.encoder = Encoder(cfg, rng=rng)
        self.decoder = Decoder(cfg, rng=rng)
        self.hyper_encoder = HyperEncoder(cfg, rng=rng)
        self.hyper_decoder = HyperDecoder(cfg, rng=rng)
        self.z_prior = FactorizedDensity(cfg.hyper_filters, rng=rng)
        self.y_conditional = GaussianConditional()

    # ------------------------------------------------------------------
    def forward(self, x: Tensor, rng: Optional[np.random.Generator] = None
                ) -> VAEOutput:
        """Full training-time pass with noise-relaxed quantization.

        With ``self.training`` false (or ``rng`` omitted), hard rounding
        is used instead, which is the inference behaviour.
        """
        y = self.encoder(x)
        z = self.hyper_encoder(y)
        if self.training and rng is not None:
            y_tilde = quantize_noise(y, rng)
            z_tilde = quantize_noise(z, rng)
        else:
            y_tilde = quantize_round(y)
            z_tilde = quantize_round(z)
        mu, sigma = self.hyper_decoder(z_tilde)
        bits_y = self.y_conditional.bits(y_tilde, mu, sigma)
        bits_z = self.z_prior.bits(z_tilde)
        x_hat = self.decoder(y_tilde)
        return VAEOutput(x_hat=x_hat, y=y, y_tilde=y_tilde, z_tilde=z_tilde,
                         mu=mu, sigma=sigma, bits_y=bits_y, bits_z=bits_z)

    # ------------------------------------------------------------------
    # Inference codec path
    # ------------------------------------------------------------------
    def encode_latents(self, x: np.ndarray) -> np.ndarray:
        """Rounded latents ``Round(E_x(x))`` for frames ``(B,C,H,W)``."""
        x = np.asarray(x, dtype=np.float64)
        with no_grad():
            if fastpath.active():
                return np.rint(self.encoder._fast(x))
            y = self.encoder(Tensor(x))
        return np.rint(y.numpy())

    def decode_latents(self, y_int: np.ndarray) -> np.ndarray:
        """Frame reconstructions from (integer) latents."""
        y_int = np.asarray(y_int, dtype=np.float64)
        with no_grad():
            if fastpath.active():
                return self.decoder._fast(y_int)
            x_hat = self.decoder(Tensor(y_int))
        return x_hat.numpy()

    def compress(self, x: np.ndarray,
                 entropy_backend=None) -> Tuple[Dict, np.ndarray]:
        """Entropy-code frames to byte streams.

        Returns ``(streams, y_int)``: the dict of byte payloads and
        headers needed by :meth:`decompress`, plus the rounded latents
        (so callers — the keyframe pipeline — can reuse them as
        conditioning without a decode pass).  ``entropy_backend``
        selects the symbol coder for both streams (``None`` uses the
        process default); the choice rides in the stream headers so
        :meth:`decompress` self-selects.
        """
        from ..entropy.backend import get_backend
        x = np.asarray(x, dtype=np.float64)
        with no_grad():
            if fastpath.active():
                y = self.encoder._fast(x)
            else:
                y = self.encoder(Tensor(x)).numpy()
            z = self.hyper_encoder(Tensor(y)).numpy()
            z_int = np.rint(z)
            mu, sigma = self.hyper_decoder(Tensor(z_int))
            mu, sigma = mu.numpy(), sigma.numpy()
        y_int = np.rint(y)
        coder = get_backend(entropy_backend)
        z_stream, z_header = self.z_prior.compress(z_int, backend=coder)
        y_stream, y_header = self.y_conditional.compress(y_int, mu, sigma,
                                                         backend=coder)
        streams = {
            "y_stream": y_stream, "y_header": y_header,
            "z_stream": z_stream, "z_header": z_header,
            "y_shape": tuple(y.shape), "z_shape": tuple(z.shape),
            "entropy_backend": coder.name,
        }
        return streams, y_int

    def decompress_latents(self, streams: Dict) -> np.ndarray:
        """Recover rounded latents from byte streams (no frame decode)."""
        z_int = self.z_prior.decompress(
            streams["z_stream"], streams["z_shape"], streams["z_header"])
        with no_grad():
            mu, sigma = self.hyper_decoder(Tensor(z_int))
        y_int = self.y_conditional.decompress(
            streams["y_stream"], mu.numpy(), sigma.numpy(),
            streams["y_header"])
        return y_int.reshape(streams["y_shape"])

    def decompress(self, streams: Dict) -> np.ndarray:
        """Full decode: byte streams -> frame reconstructions."""
        return self.decode_latents(self.decompress_latents(streams))
