"""Hyperprior autoencoder producing the Gaussian parameters of Eq. 1.

The hyper-encoder ``E_h`` summarizes the latent magnitudes into a
hyper-latent ``z``; the hyper-decoder ``D_h`` maps the quantized ``z``
back to per-element ``(mu, sigma)`` for the Gaussian conditional model
(Ballé et al. 2018 / Minnen et al. 2018 [30], as adopted by the paper).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import VAEConfig
from ..nn import Conv2d, ConvTranspose2d, Module, ReLU, Sequential, Tensor
from ..nn import functional as F

__all__ = ["HyperEncoder", "HyperDecoder"]


class HyperEncoder(Module):
    """``z = E_h(|y|)`` — conv stack with ``hyper_down`` stride-2 stages."""

    def __init__(self, cfg: VAEConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        h = cfg.hyper_filters
        layers = [Conv2d(cfg.latent_channels, h, 3, stride=1, padding=1,
                         rng=rng), ReLU()]
        for _ in range(cfg.hyper_down):
            layers += [Conv2d(h, h, 3, stride=2, padding=1, rng=rng), ReLU()]
        layers.append(Conv2d(h, h, 3, stride=1, padding=1, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, y: Tensor) -> Tensor:
        return self.net(F.abs(y))


class HyperDecoder(Module):
    """``(mu, sigma) = D_h(ẑ)`` — mirrors :class:`HyperEncoder`.

    Outputs ``2 * latent_channels`` maps split into the mean and a raw
    scale passed through softplus (positivity); the Gaussian
    conditional applies the final ``SCALE_MIN`` bound.
    """

    def __init__(self, cfg: VAEConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        h = cfg.hyper_filters
        c = cfg.latent_channels
        layers = [Conv2d(h, h, 3, stride=1, padding=1, rng=rng), ReLU()]
        for _ in range(cfg.hyper_down):
            layers += [ConvTranspose2d(h, h, 3, stride=2, padding=1,
                                       output_padding=1, rng=rng), ReLU()]
        layers.append(Conv2d(h, 2 * c, 3, stride=1, padding=1, rng=rng))
        self.net = Sequential(*layers)
        self.latent_channels = c

    def forward(self, z_hat: Tensor) -> Tuple[Tensor, Tensor]:
        out = self.net(z_hat)
        c = self.latent_channels
        mu = out[:, :c]
        sigma = F.softplus(out[:, c:])
        return mu, sigma
