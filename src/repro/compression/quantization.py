"""Quantization relaxations and latent normalization (Sec. 3.1, 3.3).

Training uses additive ``U(-0.5, 0.5)`` noise as the differentiable
surrogate for rounding (Sec. 3.4); inference rounds.  The latent
min–max normalization to ``[-1, 1]`` feeds the diffusion stage — the
paper observes "learning degrades when the latent dynamic range is
misaligned with the noise scale".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Tensor, as_tensor
from ..nn import functional as F

__all__ = ["quantize_noise", "quantize_round", "quantize_ste",
           "minmax_normalize", "dequantize_minmax"]


def quantize_noise(y: Tensor, rng: np.random.Generator) -> Tensor:
    """Additive-uniform-noise quantization surrogate (training)."""
    y = as_tensor(y)
    noise = rng.uniform(-0.5, 0.5, size=y.shape)
    return y + Tensor(noise)


def quantize_round(y: Tensor) -> Tensor:
    """Hard rounding (inference); produces a constant tensor."""
    y = as_tensor(y)
    return Tensor(np.rint(y.numpy()))


def quantize_ste(y: Tensor) -> Tensor:
    """Straight-through rounding: forward rounds, backward is identity.

    Useful when fine-tuning the decoder against truly quantized
    latents.
    """
    y = as_tensor(y)
    delta = Tensor(np.rint(y.numpy()) - y.numpy())
    return y + delta


def minmax_normalize(y: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Map ``y`` onto ``[-1, 1]``; returns ``(normalized, lo, hi)``.

    ``lo``/``hi`` are the constants the decompressor needs to invert
    the map (they ride along in the compressed stream header).
    Degenerate (constant) inputs map to all zeros.
    """
    y = np.asarray(y, dtype=np.float64)
    lo, hi = float(y.min()), float(y.max())
    if hi - lo < 1e-12:
        return np.zeros_like(y), lo, hi
    out = (y - lo) / (hi - lo) * 2.0 - 1.0
    return out, lo, hi


def dequantize_minmax(y_norm: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Inverse of :func:`minmax_normalize`."""
    y_norm = np.asarray(y_norm, dtype=np.float64)
    if hi - lo < 1e-12:
        return np.full_like(y_norm, lo)
    return (y_norm + 1.0) * 0.5 * (hi - lo) + lo
