"""``repro.compression`` — stage-1 transform coding (Sec. 3.1, 3.4).

The frame VAE with a scale hyperprior: encoder/decoder transforms
(:mod:`repro.compression.vae`), the hyperprior autoencoder producing
``(mu, sigma)`` (:mod:`repro.compression.hyperprior`), quantization
relaxations (:mod:`repro.compression.quantization`) and the
rate–distortion objective of Eq. 8 (:mod:`repro.compression.rd_loss`).
"""

from .hyperprior import HyperDecoder, HyperEncoder
from .quantization import (dequantize_minmax, minmax_normalize,
                           quantize_noise, quantize_round, quantize_ste)
from .rd_loss import RDLoss, RDLossOutput
from .vae import Decoder, Encoder, VAEHyperprior, VAEOutput

__all__ = [
    "Encoder", "Decoder", "VAEHyperprior", "VAEOutput",
    "HyperEncoder", "HyperDecoder",
    "quantize_noise", "quantize_round", "quantize_ste",
    "minmax_normalize", "dequantize_minmax",
    "RDLoss", "RDLossOutput",
]
