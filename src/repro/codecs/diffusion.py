"""The paper's latent-diffusion compressor as a registered codec.

``get_codec("ours")`` wraps a :class:`~repro.pipeline.compressor.
LatentDiffusionCompressor`.  The codec payload is simply the
:class:`~repro.pipeline.blob.CompressedBlob` wire format, so streams
written by the legacy pipeline APIs decode through the codec and vice
versa.  An untrained tiny/small-preset compressor is constructed when
none is supplied (useful for smoke tests); production use wraps a
trained compressor or loads one with :meth:`LatentDiffusionCodec.
from_bundle`.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..compression import VAEHyperprior
from ..config import small, tiny
from ..diffusion import ConditionalDDPM
from ..pipeline.blob import CompressedBlob
from ..pipeline.compressor import (CompressionResult,
                                   LatentDiffusionCompressor)
from .base import Bound, Codec, CodecCapabilities, CodecResult
from .registry import register_codec

__all__ = ["LatentDiffusionCodec"]

_PRESETS = {"tiny": tiny, "small": small}


@register_codec("ours")
class LatentDiffusionCodec(Codec):
    """Keyframe VAE + conditional latent diffusion (Sec. 3)."""

    capabilities = CodecCapabilities(bound_kind="l2", needs_training=True,
                                    learned=True)

    def __init__(self, compressor: Optional[LatentDiffusionCompressor]
                 = None, preset: str = "tiny"):
        if compressor is None:
            # preset-built (untrained, seeded init): spec-portable
            self._spec_params = {"preset": preset}
            cfg = _PRESETS[preset]()
            ddpm = ConditionalDDPM(cfg.diffusion)
            compressor = LatentDiffusionCompressor(
                VAEHyperprior(cfg.vae), ddpm, cfg.pipeline)
        self._impl = compressor

    @classmethod
    def wrap(cls, obj) -> Optional["LatentDiffusionCodec"]:
        if isinstance(obj, LatentDiffusionCompressor):
            return cls(compressor=obj)
        return None

    @classmethod
    def from_bundle(cls, path: str) -> "LatentDiffusionCodec":
        """Load a trained model bundle (see ``repro.pipeline.bundle``).

        Artifact-format bundles come back *spec-portable* (the codec
        remembers the artifact path, so process-pool sweeps work);
        legacy pre-manifest ``.npz`` bundles load as wrapped
        compressors.
        """
        from ..pipeline.artifacts import is_artifact, load_artifact
        if is_artifact(path):
            codec = load_artifact(path)
            if not isinstance(codec, cls):
                raise ValueError(f"{path!r} is a {codec.name!r} "
                                 f"artifact, not an 'ours' bundle")
            return codec
        from ..pipeline.bundle import load_bundle
        return cls(compressor=load_bundle(path))

    # -- trained-state artifacts ----------------------------------------
    def artifact_state(self) -> dict:
        """Bundle-layout state (vae/ddpm/pca arrays + config JSON)."""
        from ..pipeline.bundle import compressor_state
        return compressor_state(self._impl)

    @classmethod
    def from_artifact_state(cls, state: dict) -> "LatentDiffusionCodec":
        """Construct directly from saved state — the config travels
        inside ``config_json``, so no throwaway preset model is built
        (the artifact-load fast path used by process-pool workers)."""
        from ..pipeline.bundle import compressor_from_state
        return cls(compressor=compressor_from_state(state))

    def load_artifact_state(self, state: dict) -> None:
        """Rebuild the wrapped compressor wholesale from saved state."""
        from ..pipeline.bundle import compressor_from_state
        self._impl = compressor_from_state(state)

    def artifact_params(self) -> dict:
        # the state embeds the full config (compressor_state), so no
        # constructor recipe is required; keep the preset if known
        params = getattr(self, "_spec_params", None)
        return dict(params) if params else {}

    # ------------------------------------------------------------------
    @property
    def compressor(self) -> LatentDiffusionCompressor:
        return self._impl

    @property
    def label(self) -> str:
        return "Ours"

    @property
    def window(self) -> int:
        return self._impl.config.window

    @property
    def min_frames(self) -> int:
        return self._impl.config.window

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, bound: Optional[float] = None,
                 *, seed: int = 0) -> CodecResult:
        t0 = time.perf_counter()
        res: CompressionResult = self._impl.compress(
            frames, error_bound=bound, noise_seed=seed)
        seconds = time.perf_counter() - t0
        return CodecResult(codec=self.name,
                           reconstruction=res.reconstruction,
                           accounting=res.accounting,
                           achieved_nrmse=res.achieved_nrmse,
                           seed=seed, encode_seconds=seconds, detail=res)

    def decompress(self, payload: bytes) -> np.ndarray:
        return self._impl.decompress(CompressedBlob.from_bytes(payload))

    def decompress_blob(self, blob: CompressedBlob) -> np.ndarray:
        """Decode an in-memory blob without re-serializing it."""
        return self._impl.decompress(blob)

    # ------------------------------------------------------------------
    def compress_bounded(self, frames: np.ndarray,
                         error_bound: Optional[float] = None,
                         nrmse_bound: Optional[float] = None,
                         seed: int = 0, *,
                         bound: Optional[Bound] = None) -> CodecResult:
        """Exact legacy bound semantics (delegates both kwargs).

        A :class:`Bound` maps onto the pipeline's own vocabulary:
        ``nrmse`` stays relative (the compressor normalizes per
        window), everything else becomes the absolute L2 ``tau``.
        """
        target = Bound.coalesce(bound=bound, error_bound=error_bound,
                                nrmse_bound=nrmse_bound)
        error_bound = nrmse_bound = None
        if target is not None:
            kwargs = target.legacy_kwargs(frames)
            error_bound = kwargs["error_bound"]
            nrmse_bound = kwargs["nrmse_bound"]
        t0 = time.perf_counter()
        res = self._impl.compress(frames, error_bound=error_bound,
                                  nrmse_bound=nrmse_bound,
                                  noise_seed=seed)
        seconds = time.perf_counter() - t0
        return CodecResult(codec=self.name,
                           reconstruction=res.reconstruction,
                           accounting=res.accounting,
                           achieved_nrmse=res.achieved_nrmse,
                           seed=seed, encode_seconds=seconds, detail=res)
