"""Learned codecs: CDC (eps/X), GCD and VAE-SR under the Codec contract.

The learned baselines historically had *no* decompressor: ``compress``
simulated the reconstruction in-process and returned a result object,
so nothing could be archived or decoded later.  The codec layer fixes
that by serializing everything the decode needs into a self-contained
payload:

``LCS1 | T H W | seed | n_streams | VAE stream bundles | frame norms |
bound payload``

``decompress`` replays the baseline's ``_decode`` path (entropy-decode
the per-frame/group latents, run the learned decoder with the stored
seed), denormalizes with the stored constants and applies the coded
error-bound correction — reproducing the compression-time
reconstruction exactly.

The native bound of every learned codec is the absolute L2 ``tau`` of
the PCA corrector (Sec. 3.5), i.e. ``bound_kind == "l2"``.
"""

from __future__ import annotations

import struct
import time
from typing import Dict, List, Optional

import numpy as np

from ..baselines import (CDCCompressor, GCDCompressor, VAESRCompressor)
from ..baselines.common import (HEADER_BYTES, denormalize_frames,
                                normalize_frames, stream_bytes)
from ..config import DiffusionConfig, VAEConfig
from ..metrics import CompressionAccounting, nrmse
from .base import Codec, CodecCapabilities, CodecResult
from .registry import register_codec

__all__ = ["LearnedCodec", "CDCEpsCodec", "CDCXCodec", "GCDCodec",
           "VAESRCodec"]

_MAGIC = b"LCS1"
_HDR = "<IIIq"  # T, H, W, seed

#: Default architectures sized like the test/tiny presets, so
#: ``get_codec("cdc-eps")`` yields a trainable codec out of the box.
DEFAULT_VAE1 = VAEConfig(in_channels=1, latent_channels=4, base_filters=8,
                         num_down=2, hyper_filters=4, kernel_size=3)
DEFAULT_VAE3 = VAEConfig(in_channels=3, latent_channels=4, base_filters=8,
                         num_down=2, hyper_filters=4, kernel_size=3)
DEFAULT_DIFF = DiffusionConfig(latent_channels=4, base_channels=8,
                               channel_mults=(1, 2), time_embed_dim=16,
                               num_frames=6, train_steps=8,
                               finetune_steps=2, num_groups=2)


# ----------------------------------------------------------------------
# VAE stream-bundle (de)serialization
# ----------------------------------------------------------------------
_STREAM_HDR = "<IIII IIII i i i"  # y_shape, z_shape, L, zmin, zmax


def _pack_streams(streams: Dict) -> bytes:
    parts = [struct.pack(
        _STREAM_HDR, *streams["y_shape"], *streams["z_shape"],
        int(streams["y_header"]["L"]),
        int(streams["z_header"]["zmin"]),
        int(streams["z_header"]["zmax"]))]
    for key in ("y_stream", "z_stream"):
        parts.append(struct.pack("<I", len(streams[key])))
        parts.append(streams[key])
    return b"".join(parts)


def _unpack_streams(data: bytes, pos: int):
    vals = struct.unpack_from(_STREAM_HDR, data, pos)
    pos += struct.calcsize(_STREAM_HDR)
    streams = {"y_shape": tuple(vals[:4]), "z_shape": tuple(vals[4:8]),
               "y_header": {"L": vals[8]},
               "z_header": {"zmin": vals[9], "zmax": vals[10]}}
    for key in ("y_stream", "z_stream"):
        n, = struct.unpack_from("<I", data, pos)
        pos += 4
        payload = data[pos:pos + n]
        if len(payload) != n:
            raise ValueError("truncated learned-codec stream")
        streams[key] = payload
        pos += n
    return streams, pos


class LearnedCodec(Codec):
    """Shared compress/decompress plumbing for the learned baselines."""

    capabilities = CodecCapabilities(bound_kind="l2", needs_training=True,
                                    learned=True)
    impl_cls = None

    def __init__(self, impl=None, **impl_kwargs):
        if impl is not None and impl_kwargs:
            raise ValueError("give either impl or constructor kwargs")
        if impl is None:
            # spec-portable: configs are plain dataclasses and weight
            # init is seeded, so from_spec rebuilds bit-identically
            # (valid until train()/fit_corrector() mutate the model)
            self._spec_params = dict(impl_kwargs)
            # construction recipe for artifact manifests; unlike
            # _spec_params this survives training (the artifact's
            # state arrays carry what training changed)
            self._init_params = dict(impl_kwargs)
        self._impl = impl if impl is not None else self.impl_cls(
            **impl_kwargs)

    @classmethod
    def wrap(cls, obj) -> Optional["LearnedCodec"]:
        if cls.impl_cls is not None and type(obj) is cls.impl_cls:
            return cls(impl=obj)
        return None

    # -- training passthrough ------------------------------------------
    def train(self, windows, **kwargs) -> None:
        """Train the underlying model (kwargs are family-specific)."""
        self._spec_params = None  # trained state is not spec-portable
        self._artifact = None     # ... and any saved artifact is stale
        self._impl.train(windows, **kwargs)

    def fit_corrector(self, windows, **kwargs) -> None:
        self._spec_params = None
        self._artifact = None
        self._impl.fit_corrector(windows, **kwargs)

    # -- trained-state artifacts ----------------------------------------
    def artifact_state(self) -> Dict[str, np.ndarray]:
        """Weights + corrector via the baseline's ``state_dict``."""
        return self._impl.state_dict()

    def load_artifact_state(self, state: Dict[str, np.ndarray]) -> None:
        self._impl.load_state(state)

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, bound: Optional[float] = None,
                 *, seed: int = 0) -> CodecResult:
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3:
            raise ValueError(f"expected (T, H, W), got {frames.shape}")
        t0 = time.perf_counter()
        norm, norms = normalize_frames(frames)
        streams = self._impl._encode(norm)
        recon_norm = self._impl._decode(streams, frames.shape[0], seed)
        recon = denormalize_frames(recon_norm, norms)

        bound_payload = b""
        if bound is not None:
            if self._impl.corrector is None:
                raise ValueError(
                    f"{self.name} has no fitted corrector; call "
                    f"fit_corrector() before bounded compression")
            res = self._impl.corrector.correct(frames, recon,
                                               float(bound))
            recon = res.corrected
            bound_payload = res.payload

        T, H, W = frames.shape
        parts = [_MAGIC, struct.pack(_HDR, T, H, W, seed),
                 struct.pack("<I", len(streams))]
        parts.extend(_pack_streams(s) for s in streams)
        parts.append(np.asarray(norms, dtype="<f4").tobytes())
        parts.append(struct.pack("<I", len(bound_payload)))
        parts.append(bound_payload)
        payload = b"".join(parts)
        seconds = time.perf_counter() - t0

        # keep byte parity with the legacy BaselineResult accounting:
        # coded streams + fixed header charge + normalization constants
        coded = sum(stream_bytes(s) for s in streams)
        acc = CompressionAccounting(
            original_bytes=frames.size * self._impl.original_dtype_bytes,
            latent_bytes=coded + HEADER_BYTES + norms.size * 4,
            guarantee_bytes=len(bound_payload))
        return CodecResult(codec=self.name, payload_bytes=payload,
                           reconstruction=recon, accounting=acc,
                           achieved_nrmse=nrmse(frames, recon),
                           seed=seed, encode_seconds=seconds)

    # ------------------------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        if payload[:4] != _MAGIC:
            raise ValueError(f"not a {self.name} stream (bad magic)")
        T, H, W, seed = struct.unpack_from(_HDR, payload, 4)
        pos = 4 + struct.calcsize(_HDR)
        n_streams, = struct.unpack_from("<I", payload, pos)
        pos += 4
        streams: List[Dict] = []
        for _ in range(n_streams):
            s, pos = _unpack_streams(payload, pos)
            streams.append(s)
        norms = np.frombuffer(payload, dtype="<f4", count=2 * T,
                              offset=pos).reshape(T, 2)
        pos += 8 * T
        nb, = struct.unpack_from("<I", payload, pos)
        pos += 4
        bound_payload = payload[pos:pos + nb]
        if len(bound_payload) != nb:
            raise ValueError("truncated learned-codec payload")

        recon_norm = self._impl._decode(streams, T, seed)
        recon = denormalize_frames(recon_norm, norms)
        if bound_payload:
            if self._impl.corrector is None:
                raise ValueError(
                    f"{self.name} stream carries an error-bound payload "
                    f"but no corrector is attached")
            recon = self._impl.corrector.apply(recon, bound_payload)
        return recon


# ----------------------------------------------------------------------
@register_codec("cdc-eps", vae_cfg=DEFAULT_VAE3, diff_cfg=DEFAULT_DIFF)
class CDCEpsCodec(LearnedCodec):
    """CDC with the eps (noise-prediction) parameterization."""

    impl_cls = CDCCompressor

    def __init__(self, impl=None, **impl_kwargs):
        if impl is None:
            impl_kwargs.setdefault("parameterization", "eps")
        super().__init__(impl=impl, **impl_kwargs)

    @classmethod
    def wrap(cls, obj) -> Optional["CDCEpsCodec"]:
        if (type(obj) is CDCCompressor
                and obj.parameterization == "eps"):
            return cls(impl=obj)
        return None


@register_codec("cdc-x", vae_cfg=DEFAULT_VAE3, diff_cfg=DEFAULT_DIFF)
class CDCXCodec(LearnedCodec):
    """CDC with the X (signal-prediction) parameterization."""

    impl_cls = CDCCompressor

    def __init__(self, impl=None, **impl_kwargs):
        if impl is None:
            impl_kwargs.setdefault("parameterization", "x")
        super().__init__(impl=impl, **impl_kwargs)

    @classmethod
    def wrap(cls, obj) -> Optional["CDCXCodec"]:
        if (type(obj) is CDCCompressor
                and obj.parameterization == "x"):
            return cls(impl=obj)
        return None


@register_codec("gcd", vae_cfg=DEFAULT_VAE1, diff_cfg=DEFAULT_DIFF)
class GCDCodec(LearnedCodec):
    """3-D block data-space diffusion (per-window latents)."""

    impl_cls = GCDCompressor

    @property
    def window(self) -> int:
        return self._impl.window

    @property
    def min_frames(self) -> int:
        return self._impl.window


@register_codec("vae-sr", vae_cfg=DEFAULT_VAE1)
class VAESRCodec(LearnedCodec):
    """Every-frame VAE + hyperprior coding with SR refinement."""

    impl_cls = VAESRCompressor
