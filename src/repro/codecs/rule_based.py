"""Rule-based codecs: the six error-bounded coder families.

Each class binds one baseline compressor family
(:mod:`repro.baselines`) to the unified :class:`~repro.codecs.base.
Codec` contract.  The *only* divergence these families ever had — the
``error_bound`` (pointwise) vs ``rmse_bound`` (TTHRESH) keyword and the
raw-``bytes`` return — is normalized here once: the shared
:class:`RuleBasedCodec` base maps the native ``bound`` onto the
underlying keyword declared by :attr:`RuleBasedCodec.bound_arg` and
wraps the stream into a :class:`~repro.codecs.base.CodecResult` with
honest end-to-end accounting (``latent_bytes`` is exactly
``len(payload)``).
"""

from __future__ import annotations

import time
from typing import Optional, Type

import numpy as np

from ..baselines import (DPCMCompressor, FAZLikeCompressor,
                         MGARDLikeCompressor, SZLikeCompressor,
                         TTHRESHLikeCompressor, ZFPLikeCompressor)
from ..metrics import CompressionAccounting, nrmse
from .base import Codec, CodecCapabilities, CodecResult
from .registry import register_codec

__all__ = ["RuleBasedCodec", "SZCodec", "ZFPCodec", "TTHRESHCodec",
           "MGARDCodec", "DPCMCodec", "FAZCodec"]


class RuleBasedCodec(Codec):
    """Shared adapter logic for the stateless rule-based coders."""

    #: native compressor class this codec drives
    impl_cls: Type = None
    #: keyword the native ``compress`` takes its bound under
    bound_arg: str = "error_bound"
    capabilities = CodecCapabilities(bound_kind="pointwise",
                                    requires_bound=True)

    def __init__(self, impl=None, *, original_dtype_bytes: int = 4,
                 **impl_kwargs):
        if impl is not None and impl_kwargs:
            raise ValueError("give either impl or constructor kwargs")
        if impl is None:
            self._spec_params = dict(impl_kwargs,
                                     original_dtype_bytes=original_dtype_bytes)
        self._impl = impl if impl is not None else self.impl_cls(
            **impl_kwargs)
        self.original_dtype_bytes = original_dtype_bytes

    @classmethod
    def wrap(cls, obj) -> Optional["RuleBasedCodec"]:
        """Adopt a native compressor instance (see ``as_codec``)."""
        if cls.impl_cls is not None and type(obj) is cls.impl_cls:
            return cls(impl=obj)
        return None

    # ------------------------------------------------------------------
    def compress(self, frames: np.ndarray, bound: Optional[float] = None,
                 *, seed: int = 0) -> CodecResult:
        frames = np.asarray(frames, dtype=np.float64)
        if bound is None:
            raise ValueError(
                f"{self.name} is an error-bounded coder and requires a "
                f"{self.capabilities.bound_kind} bound")
        t0 = time.perf_counter()
        payload = self._impl.compress(frames, **{self.bound_arg:
                                                 float(bound)})
        recon = self._impl.decompress(payload)
        seconds = time.perf_counter() - t0
        acc = CompressionAccounting(
            original_bytes=frames.size * self.original_dtype_bytes,
            latent_bytes=len(payload))
        return CodecResult(codec=self.name, payload_bytes=payload,
                           reconstruction=recon, accounting=acc,
                           achieved_nrmse=nrmse(frames, recon),
                           seed=seed, encode_seconds=seconds)

    def decompress(self, payload: bytes) -> np.ndarray:
        return self._impl.decompress(payload)


# ----------------------------------------------------------------------
@register_codec("szlike")
class SZCodec(RuleBasedCodec):
    """SZ3 analogue: interpolation-predictive, pointwise-bounded."""

    impl_cls = SZLikeCompressor


@register_codec("zfplike")
class ZFPCodec(RuleBasedCodec):
    """ZFP analogue: blockwise transform coding, pointwise-bounded."""

    impl_cls = ZFPLikeCompressor


@register_codec("tthresh")
class TTHRESHCodec(RuleBasedCodec):
    """TTHRESH analogue: HOSVD transform coding, RMSE-bounded."""

    impl_cls = TTHRESHLikeCompressor
    bound_arg = "rmse_bound"
    capabilities = CodecCapabilities(bound_kind="rmse",
                                    requires_bound=True)


@register_codec("mgard")
class MGARDCodec(RuleBasedCodec):
    """MGARD analogue: multilevel hierarchy, pointwise, progressive."""

    impl_cls = MGARDLikeCompressor
    capabilities = CodecCapabilities(bound_kind="pointwise",
                                    requires_bound=True,
                                    progressive=True)

    def decompress(self, payload: bytes,
                   max_level: Optional[int] = None) -> np.ndarray:
        """Full decode, or a progressive view via ``max_level``."""
        return self._impl.decompress(payload, max_level=max_level)


@register_codec("dpcm")
class DPCMCodec(RuleBasedCodec):
    """Temporal DPCM predictor, pointwise-bounded."""

    impl_cls = DPCMCompressor
    min_frames = 1


@register_codec("fazlike")
class FAZCodec(RuleBasedCodec):
    """FAZ analogue: auto-tuned best-of {wavelet, predictor}."""

    impl_cls = FAZLikeCompressor
