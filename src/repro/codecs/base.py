"""The unified codec contract every compressor in this repo satisfies.

Historically each baseline exposed a slightly different ad-hoc
``compress`` signature: pointwise coders took ``error_bound`` and
returned raw ``bytes``, TTHRESH took ``rmse_bound``, the learned
baselines took ``error_bound``/``nrmse_bound`` and returned a result
object without any serialized stream, and the latent-diffusion pipeline
took ``noise_seed`` and returned a :class:`~repro.pipeline.blob.
CompressedBlob`.  Benchmarks and the CLI hand-wired every one of them.

This module defines the single contract that replaces that divergence:

* :class:`Codec` — ``compress(frames, bound) -> CodecResult`` and
  ``decompress(payload) -> frames``, where ``payload`` is always a
  self-contained byte string and ``bound`` is expressed in the codec's
  *native* guarantee metric (declared by its capabilities);
* :class:`CodecCapabilities` — what kind of bound the codec guarantees
  (``pointwise`` / ``rmse`` / ``l2``), whether it needs training,
  whether decoding is deterministic;
* :meth:`Codec.compress_bounded` — the one place where caller-side
  bound vocabulary (a first-class :class:`~repro.bound.Bound`, or the
  legacy ``error_bound`` / ``nrmse_bound`` kwargs) is normalized onto
  each codec's native bound, so callers never special-case bound
  semantics again;
* a tiny *envelope* format that tags a payload with its codec name, so
  archives and the CLI can dispatch streams back to the right codec.

The conversion table itself lives in :mod:`repro.bound` — one place,
shared by every layer.  The legacy kwargs map onto it exactly
(``error_bound`` -> ``Bound.l2``, ``nrmse_bound`` -> ``Bound.nrmse``),
so streams produced either way are byte-identical.
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

import numpy as np

from ..bound import Bound
from ..metrics import CompressionAccounting

__all__ = ["Codec", "CodecCapabilities", "CodecResult", "Bound",
           "pack_envelope", "unpack_envelope", "is_envelope",
           "ENVELOPE_MAGIC"]

#: Bound kinds a codec may declare.
BOUND_KINDS = ("pointwise", "rmse", "l2")

ENVELOPE_MAGIC = b"CDX1"


@dataclass(frozen=True)
class CodecCapabilities:
    """Declared properties of a codec (used for dispatch, not hints)."""

    #: metric of the native guarantee: "pointwise" (max abs error),
    #: "rmse", or "l2" (absolute L2 norm, the pipeline's tau)
    bound_kind: str
    #: the codec holds model state that must be trained before use
    needs_training: bool = False
    #: ``decompress(payload)`` is bit-identical across calls
    deterministic: bool = True
    #: the codec cannot compress without a bound (rule-based coders
    #: quantize against the bound; there is no "lossless-ish" default)
    requires_bound: bool = False
    #: learning-based family (stores latents for every frame)
    learned: bool = False
    #: supports reduced-resolution/progressive decodes
    progressive: bool = False

    def __post_init__(self):
        if self.bound_kind not in BOUND_KINDS:
            raise ValueError(f"bound_kind must be one of {BOUND_KINDS}, "
                             f"got {self.bound_kind!r}")


@dataclass
class CodecResult:
    """Outcome of :meth:`Codec.compress` — uniform across all codecs.

    ``payload`` is the self-contained compressed stream.  Codecs whose
    native result already carries a serializable blob (``detail.blob``)
    may leave ``payload_bytes`` unset — serialization then happens
    lazily on first access, so blob-native callers (window-parallel
    batches, blob archives) never pay for bytes they discard.
    """

    codec: str                       # registry name of the producer
    reconstruction: np.ndarray       # the decompressor's exact output
    accounting: CompressionAccounting
    achieved_nrmse: float
    seed: int = 0
    encode_seconds: float = 0.0
    #: the codec-native result object (e.g. the pipeline's
    #: CompressionResult with its CompressedBlob), when one exists
    detail: Any = None
    #: eagerly-built stream; None defers to ``detail.blob.to_bytes()``
    payload_bytes: Optional[bytes] = None

    @property
    def payload(self) -> bytes:
        """Self-contained compressed stream (built lazily if needed)."""
        if self.payload_bytes is None:
            blob = self.blob
            if blob is None:
                raise ValueError(
                    f"{self.codec} result carries no payload")
            self.payload_bytes = blob.to_bytes()
        return self.payload_bytes

    @property
    def ratio(self) -> float:
        return self.accounting.ratio

    @property
    def blob(self):
        """Native :class:`CompressedBlob` if the codec produced one."""
        return getattr(self.detail, "blob", None)


class Codec(abc.ABC):
    """Abstract compressor contract (see module docstring).

    Subclasses set :attr:`capabilities` and implement
    :meth:`compress` / :meth:`decompress`.  ``compress`` must return a
    :class:`CodecResult` whose ``payload`` decodes — via
    :meth:`decompress` on the *same* codec instance — to exactly the
    ``reconstruction`` it reports.
    """

    #: registry name; assigned by :func:`repro.codecs.register_codec`
    codec_id: str = "unregistered"
    capabilities: CodecCapabilities = CodecCapabilities(bound_kind="l2")
    #: smallest frame count ``compress`` accepts
    min_frames: int = 1
    #: natural temporal batching unit (1 = frames are independent)
    window: int = 1
    #: path of the artifact this codec's trained state was saved to or
    #: loaded from (set by the artifact layer; makes trained codecs
    #: spec-portable — see :meth:`to_spec`)
    _artifact: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Registry name (stable identifier, used in envelopes)."""
        return self.codec_id

    @property
    def label(self) -> str:
        """Human-readable name (matches the paper's method names)."""
        impl = getattr(self, "_impl", None)
        return getattr(impl, "name", None) or self.codec_id

    @property
    def impl(self):
        """Underlying native compressor object, when one exists."""
        return getattr(self, "_impl", None)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compress(self, frames: np.ndarray, bound: Optional[float] = None,
                 *, seed: int = 0) -> CodecResult:
        """Compress a ``(T, H, W)`` stack under the *native* bound."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct frames from a :attr:`CodecResult.payload`."""

    # ------------------------------------------------------------------
    def native_bound(self, frames: np.ndarray,
                     error_bound: Optional[float] = None,
                     nrmse_bound: Optional[float] = None,
                     bound: Optional[Bound] = None) -> Optional[float]:
        """Map caller bound vocabulary onto this codec's native metric.

        ``bound`` is a first-class :class:`~repro.bound.Bound`;
        ``error_bound`` is the legacy absolute L2 ``tau`` and
        ``nrmse_bound`` the legacy NRMSE target (Eq. 12).  The
        conversion table lives in :mod:`repro.bound`.
        """
        target = Bound.coalesce(bound=bound, error_bound=error_bound,
                                nrmse_bound=nrmse_bound)
        if target is None:
            return None
        return target.native_for(self, frames)

    def compress_bounded(self, frames: np.ndarray,
                         error_bound: Optional[float] = None,
                         nrmse_bound: Optional[float] = None,
                         seed: int = 0, *,
                         bound: Optional[Bound] = None) -> CodecResult:
        """:meth:`compress` with a :class:`Bound` (or the legacy
        kwargs), normalized onto the native metric."""
        native = self.native_bound(frames, error_bound=error_bound,
                                   nrmse_bound=nrmse_bound, bound=bound)
        return self.compress(frames, native, seed=seed)

    # ------------------------------------------------------------------
    def to_spec(self) -> dict:
        """Portable ``{"codec": name, "params": kwargs}`` recipe.

        The spec is picklable and cheap to ship to process-pool
        workers, where :func:`repro.codecs.codec_from_spec` rebuilds an
        equivalent codec (bit-identical for stateless codecs and for
        untrained learned codecs, whose weight init is seeded by
        config).  A codec whose trained state lives in an artifact
        (saved via :meth:`save_artifact` or loaded via
        :meth:`load_artifact`) instead records the artifact path —
        workers rebuild the trained codec from ``spec + artifact``.
        Trained state that was never persisted, and codecs adopted
        around pre-built native objects, raise ``TypeError``.
        """
        params = getattr(self, "_spec_params", None)
        if params is not None:
            return {"codec": self.codec_id, "params": dict(params)}
        if self._artifact is not None:
            return {"codec": self.codec_id, "artifact": self._artifact}
        raise TypeError(
            f"{type(self).__name__} ({self.name!r}) holds wrapped "
            f"or trained state that a spec cannot rebuild; save the "
            f"trained model to an artifact (Codec.save_artifact / "
            f"ArtifactStore.put) to make it spec-portable, or "
            f"construct the codec from kwargs (get_codec)")

    @staticmethod
    def from_spec(spec: dict) -> "Codec":
        """Inverse of :meth:`to_spec` (dispatches via the registry)."""
        from .registry import codec_from_spec  # local: registry imports base
        return codec_from_spec(spec)

    # ------------------------------------------------------------------
    # Trained-state artifacts (uniform persistence contract).
    # ------------------------------------------------------------------
    def artifact_state(self) -> dict:
        """Trained state as ``{name: ndarray}`` (subclass hook).

        Implemented by every codec with the ``needs_training``
        capability; the default makes the contract explicit for
        model-free codecs.
        """
        raise TypeError(f"codec {self.name!r} has no trainable state "
                        f"to persist")

    def load_artifact_state(self, state: dict) -> None:
        """Restore :meth:`artifact_state` arrays in place."""
        raise TypeError(f"codec {self.name!r} has no trainable state "
                        f"to restore")

    def artifact_params(self) -> dict:
        """Constructor kwargs recorded in an artifact manifest.

        The untrained-rebuild recipe: ``get_codec(name, **params)``
        followed by :meth:`load_artifact_state` must reproduce this
        codec exactly.  Defaults to the construction kwargs (which,
        unlike ``_spec_params``, survive training); wrapped codecs
        without a recorded recipe raise.
        """
        params = getattr(self, "_spec_params", None)
        if params is None:
            params = getattr(self, "_init_params", None)
        if params is None:
            raise TypeError(
                f"{type(self).__name__} ({self.name!r}) wraps a "
                f"pre-built native object; no constructor recipe is "
                f"available for an artifact manifest")
        return dict(params)

    def save_artifact(self, path, *, training: Optional[dict] = None,
                      dataset: Optional[dict] = None):
        """Persist trained state (see :mod:`repro.pipeline.artifacts`).

        Returns the :class:`~repro.pipeline.artifacts.ArtifactManifest`
        and attaches the artifact path to this codec, making it
        spec-portable (:meth:`to_spec`).
        """
        from ..pipeline.artifacts import save_artifact
        return save_artifact(path, self, training=training,
                             dataset=dataset)

    @staticmethod
    def load_artifact(path) -> "Codec":
        """Rebuild a trained codec from an artifact file."""
        from ..pipeline.artifacts import load_artifact
        return load_artifact(path)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r} "
                f"({self.capabilities.bound_kind}-bounded)>")


# ----------------------------------------------------------------------
# Envelope: tags a payload with its codec so containers can dispatch.
# ----------------------------------------------------------------------
def pack_envelope(codec_name: str, payload: bytes) -> bytes:
    """Wrap ``payload`` in a self-describing codec envelope."""
    tag = codec_name.encode()
    if not 0 < len(tag) <= 255:
        raise ValueError(f"bad codec name {codec_name!r}")
    return b"".join([ENVELOPE_MAGIC, struct.pack("<B", len(tag)), tag,
                     struct.pack("<Q", len(payload)), payload])


def is_envelope(data: bytes) -> bool:
    return data[:4] == ENVELOPE_MAGIC


def peek_envelope(data: bytes) -> Optional[str]:
    """Codec name of an envelope without copying its payload.

    Container indexers call this on every member at pack time, so it
    must parse the header only — :func:`unpack_envelope` slices (and
    therefore copies) the payload.  Returns ``None`` for non-envelope
    bytes.
    """
    if not is_envelope(data) or len(data) < 5:
        return None
    tlen, = struct.unpack_from("<B", data, 4)
    if len(data) < 5 + tlen:
        return None
    return data[5:5 + tlen].decode()


def unpack_envelope(data: bytes) -> Tuple[str, bytes]:
    """Inverse of :func:`pack_envelope`; returns ``(name, payload)``."""
    if not is_envelope(data):
        raise ValueError("not a codec envelope (bad magic)")
    tlen, = struct.unpack_from("<B", data, 4)
    name = data[5:5 + tlen].decode()
    pos = 5 + tlen
    n, = struct.unpack_from("<Q", data, pos)
    pos += 8
    payload = data[pos:pos + n]
    if len(payload) != n:
        raise ValueError("truncated codec envelope")
    return name, payload
