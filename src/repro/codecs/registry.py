"""Decorator-based codec registry.

Every compressor family registers itself under a short stable name::

    @register_codec("szlike")
    class SZCodec(RuleBasedCodec):
        ...

and callers obtain ready instances through :func:`get_codec`::

    codec = get_codec("szlike")
    result = codec.compress(frames, bound)

The registry is the single source of truth the CLI (``repro codecs``,
``--codec NAME``), the execution engine, the benchmark drivers and the
contract tests iterate over — adding a new codec is one decorated class,
everything downstream picks it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Type

from .base import Codec

__all__ = ["register_codec", "get_codec", "list_codecs", "codec_specs",
           "as_codec", "codec_from_spec", "CodecSpec"]


@dataclass(frozen=True)
class CodecSpec:
    """One registry entry: class plus default construction kwargs."""

    name: str
    cls: Type[Codec]
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def build(self, **kwargs) -> Codec:
        merged = {**self.defaults, **kwargs}
        return self.cls(**merged)


_REGISTRY: Dict[str, CodecSpec] = {}


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_codec(name: str, **defaults) -> Callable[[Type[Codec]],
                                                      Type[Codec]]:
    """Class decorator: register ``cls`` under ``name``.

    ``defaults`` are constructor kwargs applied by :func:`get_codec`
    unless overridden by the caller.
    """
    key = _canonical(name)

    def deco(cls: Type[Codec]) -> Type[Codec]:
        if key in _REGISTRY:
            raise ValueError(f"codec {key!r} is already registered "
                             f"(by {_REGISTRY[key].cls.__name__})")
        if not issubclass(cls, Codec):
            raise TypeError(f"{cls.__name__} does not implement Codec")
        cls.codec_id = key
        _REGISTRY[key] = CodecSpec(name=key, cls=cls, defaults=defaults)
        return cls

    return deco


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate the codec registered under ``name``.

    ``kwargs`` override the registered defaults and are passed to the
    codec's constructor (e.g. model configs for learned codecs).
    """
    key = _canonical(name)
    spec = _REGISTRY.get(key)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown codec {name!r}; registered: {known}")
    return spec.build(**kwargs)


def list_codecs() -> List[str]:
    """Sorted names of every registered codec."""
    return sorted(_REGISTRY)


def codec_specs() -> Dict[str, CodecSpec]:
    """Snapshot of the registry (name -> spec)."""
    return dict(_REGISTRY)


def codec_from_spec(spec: Mapping[str, Any]) -> Codec:
    """Rebuild a codec from its :meth:`Codec.to_spec` recipe.

    The construction is deterministic (stateless codecs trivially;
    learned codecs seed their weight init from the config), so a spec
    shipped to a process-pool worker rebuilds a codec whose streams are
    bit-identical to the parent's.  Specs carrying an ``artifact``
    reference rebuild *trained* codecs: the untrained codec is
    constructed from the artifact's manifest and its persisted state
    is restored (see :mod:`repro.pipeline.artifacts`), so trained
    models sweep through process pools exactly like model-free codecs.
    """
    artifact = spec.get("artifact")
    if artifact is not None:
        from ..pipeline.artifacts import load_artifact
        codec = load_artifact(artifact)
        if codec.codec_id != spec["codec"]:
            raise ValueError(
                f"artifact {artifact!r} holds codec "
                f"{codec.codec_id!r}, but the spec names "
                f"{spec['codec']!r}")
        return codec
    return get_codec(spec["codec"], **dict(spec.get("params", {})))


def as_codec(obj) -> Codec:
    """Coerce ``obj`` to a :class:`Codec`.

    Accepts a codec instance (returned as-is), a registry name, or a
    native compressor object of any registered codec class (wrapped via
    the class's ``wrap`` hook) — e.g. a trained
    ``LatentDiffusionCompressor`` or a ``SZLikeCompressor``.
    """
    if isinstance(obj, Codec):
        return obj
    if isinstance(obj, str):
        return get_codec(obj)
    for spec in _REGISTRY.values():
        wrapped = spec.cls.wrap(obj) if hasattr(spec.cls, "wrap") else None
        if wrapped is not None:
            return wrapped
    raise TypeError(f"cannot interpret {type(obj).__name__} as a codec; "
                    f"pass a Codec, a registered name, or a native "
                    f"compressor of a registered codec")
