"""``repro.codecs`` — one contract, one registry, every compressor.

Every compressor family in this repo — the six rule-based analogues,
the three learned baselines and the paper's latent-diffusion pipeline —
is reachable through the same interface::

    >>> from repro.codecs import get_codec, list_codecs
    >>> list_codecs()
    ['cdc-eps', 'cdc-x', 'dpcm', 'fazlike', 'gcd', 'mgard', 'ours',
     'szlike', 'tthresh', 'vae-sr', 'zfplike']
    >>> codec = get_codec("szlike")
    >>> res = codec.compress(frames, bound=1e-3)      # doctest: +SKIP
    >>> codec.decompress(res.payload)                 # doctest: +SKIP

See :mod:`repro.codecs.base` for the contract (bound normalization,
result container, codec envelopes), :mod:`repro.codecs.registry` for
registration, and :mod:`repro.pipeline.engine` for running any codec
over batches of windows/variables in parallel.
"""

from .base import (Codec, CodecCapabilities, CodecResult, is_envelope,
                   pack_envelope, peek_envelope, unpack_envelope)
from .registry import (CodecSpec, as_codec, codec_from_spec, codec_specs,
                       get_codec, list_codecs, register_codec)

# Importing the implementation modules populates the registry.
from . import rule_based as _rule_based  # noqa: F401
from . import learned as _learned        # noqa: F401
from . import diffusion as _diffusion    # noqa: F401

from .diffusion import LatentDiffusionCodec
from .learned import (CDCEpsCodec, CDCXCodec, GCDCodec, LearnedCodec,
                      VAESRCodec)
from .rule_based import (DPCMCodec, FAZCodec, MGARDCodec, RuleBasedCodec,
                         SZCodec, TTHRESHCodec, ZFPCodec)

__all__ = [
    "Codec", "CodecCapabilities", "CodecResult", "CodecSpec",
    "register_codec", "get_codec", "list_codecs", "codec_specs",
    "as_codec", "codec_from_spec",
    "pack_envelope", "unpack_envelope", "is_envelope", "peek_envelope",
    "RuleBasedCodec", "SZCodec", "ZFPCodec", "TTHRESHCodec", "MGARDCodec",
    "DPCMCodec", "FAZCodec",
    "LearnedCodec", "CDCEpsCodec", "CDCXCodec", "GCDCodec", "VAESRCodec",
    "LatentDiffusionCodec",
]
